#include "analysis/ipa/sccp.hpp"

#include <algorithm>
#include <deque>

#include "analysis/absint/refine.hpp"

namespace asbr::analysis::ipa {

namespace {

/// Per-def updates tolerated before switching to interval widening.  The
/// dense engine widens at every widening-point join from the start; a small
/// delay here keeps SCCP at least as precise on short chains while the
/// threshold ladder still bounds the long ones.
constexpr std::uint16_t kWidenAfter = 12;

struct Engine {
    const Cfg& cfg;
    const DominatorTree& doms;
    const SsaForm& ssa;
    SccpResult& out;

    std::vector<std::uint16_t> raises;
    std::vector<EdgeRefinement> refinement;    ///< per block, cached
    std::vector<std::vector<std::size_t>> succIndexOf;  ///< [b][predSlot]
    std::deque<std::pair<std::size_t, std::size_t>> cfgWork;  ///< (b, succIdx)
    std::deque<std::uint32_t> ssaWork;
    std::vector<char> onSsaWork;
    RegState entry;
    std::size_t budget = 0;
    bool blown = false;

    Engine(const Cfg& c, const DominatorTree& d, const SsaForm& s,
           SccpResult& o)
        : cfg(c), doms(d), ssa(s), out(o) {}

    [[nodiscard]] AbsValue valOf(std::uint32_t def) const {
        return def == kNoDef ? AbsValue::top() : out.value[def];
    }
    /// Operand value for refinement state: bottom (not yet evaluated)
    /// degrades to top so the refinement stays a sound over-approximation.
    [[nodiscard]] AbsValue valOrTop(std::uint32_t def) const {
        const AbsValue v = valOf(def);
        return v.isBottom() ? AbsValue::top() : v;
    }

    void pushSsa(std::uint32_t def) {
        if (!onSsaWork[def]) {
            onSsaWork[def] = 1;
            ssaWork.push_back(def);
        }
    }

    /// Ascending update: join (or widen, past the per-def cap) the fresh
    /// value into the stored one; uses re-evaluate on change.
    void setValue(std::uint32_t def, const AbsValue& fresh) {
        AbsValue& cur = out.value[def];
        const AbsValue joined = cur.join(fresh);
        const AbsValue next =
            raises[def] > kWidenAfter ? cur.widen(joined) : joined;
        if (next == cur) return;
        cur = next;
        ++raises[def];
        pushSsa(def);
    }

    /// Abstract value a plain (non-φ) instruction def computes.
    [[nodiscard]] AbsValue evalDef(InstrIndex i) const {
        const Instruction& ins = cfg.program->code[i];
        const Op op = ins.op;
        if (op <= Op::kRemu)
            return absAluOp(op, valOf(ssa.srcDef[i][0]),
                            valOf(ssa.srcDef[i][1]));
        if (op >= Op::kAddiu && op <= Op::kSra)
            return absAluImmOp(op, valOf(ssa.srcDef[i][0]), ins.imm);
        if (isLoad(op)) return absLoadResult(op);
        if (op == Op::kJal || op == Op::kJalr)
            return AbsValue::constant(
                static_cast<std::int32_t>(cfg.pcOf(i) + kInstrBytes));
        return AbsValue::top();
    }

    /// A `sys` provably halting here (v0 must be Syscall::kExit)?
    [[nodiscard]] bool sysHalts(InstrIndex i) const {
        return valOf(ssa.srcDef[i][0]) ==
               AbsValue::constant(static_cast<std::int32_t>(Syscall::kExit));
    }

    void markEdge(std::size_t b, std::size_t succIdx) {
        if (!out.edgeExecutable[b][succIdx]) cfgWork.emplace_back(b, succIdx);
    }

    /// Decide which out-edges of an executable block can run, from the
    /// final instruction's current abstract operands.
    void flowOut(std::size_t b) {
        const BasicBlock& block = cfg.blocks[b];
        const Instruction& last = cfg.program->code[block.last];
        if (last.op == Op::kSys && sysHalts(block.last)) return;
        const EdgeRefinement& er = refinement[b];
        TriBool t = TriBool::kUnknown;
        if (er.isBranch)
            t = evalCondAbs(er.cond, valOf(ssa.srcDef[block.last][0]));
        for (std::size_t si = 0; si < block.succs.size(); ++si) {
            if (er.isBranch && t != TriBool::kUnknown) {
                const InstrIndex first = cfg.blocks[block.succs[si]].first;
                const bool isTarget = first == er.targetIdx;
                const bool isFall = first == er.fallthroughIdx;
                if (isTarget != isFall) {  // one-arm successor
                    if (t == TriBool::kTrue && !isTarget) continue;
                    if (t == TriBool::kFalse && !isFall) continue;
                }
            }
            markEdge(b, si);
        }
    }

    /// Evaluate every instruction of `b` from `from` on; stops at a
    /// provably-exiting sys, otherwise releases the out-edges.
    void visitBlockFrom(std::size_t b, InstrIndex from) {
        const BasicBlock& block = cfg.blocks[b];
        for (InstrIndex i = from; i <= block.last; ++i) {
            ++out.iterations;
            const Instruction& ins = cfg.program->code[i];
            if (ssa.outDef[i] != kNoDef) setValue(ssa.outDef[i], evalDef(i));
            if (ins.op == Op::kSys && sysHalts(i)) return;
        }
        flowOut(b);
    }

    /// φ value: join of refined operands along executable incoming edges
    /// (plus the reset state for entry-block φs — the virtual entry edge).
    [[nodiscard]] AbsValue evalPhiValue(const SsaPhi& phi) const {
        AbsValue v = AbsValue::bottom();
        if (phi.block == cfg.entryBlock)
            v = v.join(entry[phi.reg]);
        const auto& preds = cfg.blocks[phi.block].preds;
        for (std::size_t k = 0; k < preds.size(); ++k) {
            const std::size_t p = preds[k];
            const std::size_t si = succIndexOf[phi.block][k];
            if (!out.edgeExecutable[p][si]) continue;
            const std::uint32_t arg = phi.args[k];
            if (arg == kNoDef) continue;
            AbsValue av = out.value[arg];
            if (av.isBottom()) continue;
            const EdgeRefinement& er = refinement[p];
            if (er.isBranch) {
                RegState tmp;
                tmp.fill(AbsValue::top());
                tmp[reg::zero] = AbsValue::constant(0);
                tmp[er.condReg] = valOrTop(ssa.defAtExit[p][er.condReg]);
                if (er.hasCmp) {
                    tmp[er.cmpA] = valOrTop(ssa.defAtExit[p][er.cmpA]);
                    if (er.cmpBIsReg)
                        tmp[er.cmpB] = valOrTop(ssa.defAtExit[p][er.cmpB]);
                }
                tmp[phi.reg] = av;  // same def as defAtExit[p][phi.reg]
                if (!refineForEdge(cfg, er, phi.block, tmp))
                    continue;  // contribution provably infeasible
                av = tmp[phi.reg];
            }
            v = v.join(av);
        }
        return v;
    }

    void evalPhi(std::uint32_t phiId) {
        ++out.iterations;
        setValue(ssa.phis[phiId].def, evalPhiValue(ssa.phis[phiId]));
    }

    void run() {
        const std::size_t n = cfg.blocks.size();
        raises.assign(ssa.defs.size(), 0);
        onSsaWork.assign(ssa.defs.size(), 0);
        refinement.resize(n);
        succIndexOf.resize(n);
        for (std::size_t b = 0; b < n; ++b) {
            refinement[b] = edgeRefinement(cfg, b);
            const auto& preds = cfg.blocks[b].preds;
            succIndexOf[b].resize(preds.size());
            for (std::size_t k = 0; k < preds.size(); ++k) {
                const auto& ss = cfg.blocks[preds[k]].succs;
                succIndexOf[b][k] = static_cast<std::size_t>(
                    std::find(ss.begin(), ss.end(), b) - ss.begin());
            }
        }
        entry = entryRegState(cfg);
        for (int r = 0; r < kNumRegs; ++r)
            out.value[ssa.entryDef[static_cast<std::size_t>(r)]] =
                entry[static_cast<std::size_t>(r)];

        budget = 256 * cfg.numInstructions() + 2048;
        out.blockExecutable[cfg.entryBlock] = 1;
        for (const std::uint32_t phiId : ssa.phisOf[cfg.entryBlock])
            evalPhi(phiId);
        visitBlockFrom(cfg.entryBlock, cfg.blocks[cfg.entryBlock].first);

        while (!cfgWork.empty() || !ssaWork.empty()) {
            if (out.iterations > budget) {
                blown = true;
                break;
            }
            if (!cfgWork.empty()) {
                const auto [b, si] = cfgWork.front();
                cfgWork.pop_front();
                if (out.edgeExecutable[b][si]) continue;
                out.edgeExecutable[b][si] = 1;
                const std::size_t succ = cfg.blocks[b].succs[si];
                if (!out.blockExecutable[succ]) {
                    out.blockExecutable[succ] = 1;
                    for (const std::uint32_t phiId : ssa.phisOf[succ])
                        evalPhi(phiId);
                    visitBlockFrom(succ, cfg.blocks[succ].first);
                } else {
                    // A new incoming edge only re-feeds the φs.
                    for (const std::uint32_t phiId : ssa.phisOf[succ])
                        evalPhi(phiId);
                }
                continue;
            }
            const std::uint32_t d = ssaWork.front();
            ssaWork.pop_front();
            onSsaWork[d] = 0;
            for (const SsaUse& use : ssa.defs[d].uses) {
                if (use.atPhi) {
                    if (out.blockExecutable[ssa.phis[use.site].block])
                        evalPhi(use.site);
                    continue;
                }
                const InstrIndex i = use.site;
                const std::size_t b = cfg.blockOf[i];
                if (!out.blockExecutable[b]) continue;
                ++out.iterations;
                const Instruction& ins = cfg.program->code[i];
                if (ssa.outDef[i] != kNoDef)
                    setValue(ssa.outDef[i], evalDef(i));
                if (ins.op == Op::kSys) {
                    // A sys that stops halting releases the rest of its
                    // block; one that still halts changes nothing.
                    if (!sysHalts(i)) visitBlockFrom(b, i + 1);
                } else if (i == cfg.blocks[b].last) {
                    flowOut(b);  // branch direction may have widened
                }
            }
        }

        if (blown) {
            forceTop();
            return;
        }
        narrow();
    }

    /// Budget exhausted: every value in an executable region becomes top
    /// and executability is closed transitively — sound, verdicts all
    /// degrade to Dynamic.
    void forceTop() {
        out.converged = false;
        for (std::size_t d = 0; d < out.value.size(); ++d)
            out.value[d] = ssa.defs[d].reg == reg::zero
                               ? AbsValue::constant(0)
                               : AbsValue::top();
        std::vector<std::size_t> work{cfg.entryBlock};
        std::vector<char> seen(cfg.blocks.size(), 0);
        seen[cfg.entryBlock] = 1;
        while (!work.empty()) {
            const std::size_t b = work.back();
            work.pop_back();
            out.blockExecutable[b] = 1;
            const auto& succs = cfg.blocks[b].succs;
            for (std::size_t si = 0; si < succs.size(); ++si) {
                out.edgeExecutable[b][si] = 1;
                if (!seen[succs[si]]) {
                    seen[succs[si]] = 1;
                    work.push_back(succs[si]);
                }
            }
        }
    }

    /// Two sparse narrowing sweeps: recompute each executable def from its
    /// operands without widening and meet into the stored value.  Both
    /// sides over-approximate the concrete value set, so the intersection
    /// still does (same argument as the dense narrowing).
    void narrow() {
        for (int pass = 0; pass < 2; ++pass) {
            for (const std::size_t b : doms.rpo) {
                if (!out.blockExecutable[b]) continue;
                for (const std::uint32_t phiId : ssa.phisOf[b]) {
                    const AbsValue fresh = evalPhiValue(ssa.phis[phiId]);
                    const std::uint32_t d = ssa.phis[phiId].def;
                    const AbsValue met = out.value[d].meet(fresh);
                    if (!met.isBottom()) out.value[d] = met;
                }
                const BasicBlock& block = cfg.blocks[b];
                for (InstrIndex i = block.first; i <= block.last; ++i) {
                    if (ssa.outDef[i] == kNoDef) continue;
                    const std::uint32_t d = ssa.outDef[i];
                    const AbsValue met = out.value[d].meet(evalDef(i));
                    if (!met.isBottom()) out.value[d] = met;
                }
            }
        }
    }

    /// Meet `v` (the value of def `d`, register R, tested at a branch in
    /// block `b`) with every refinement from dominating one-sided branch
    /// edges: a single-pred block c whose predecessor is its idom p sits on
    /// *every* path from entry to b, so the branch condition p imposes on
    /// the edge p -> c holds whenever the branch at b runs.  Recovers the
    /// `beqz s0, ..; beqz s0, ..` double-test verdicts the dense engine
    /// gets from threading refined states through blocks.
    [[nodiscard]] AbsValue sharpenByDominators(std::size_t b, std::uint32_t d,
                                               AbsValue v) const {
        const std::uint8_t reg = ssa.defs[d].reg;
        std::size_t c = b;
        for (int steps = 0; steps < 64; ++steps) {
            const std::size_t p = doms.idom[c];
            if (p == kNoBlock || p == c) break;
            if (cfg.blocks[c].preds.size() == 1 &&
                cfg.blocks[c].preds[0] == p) {
                const EdgeRefinement& er = refinement[p];
                if (er.isBranch) {
                    RegState tmp;
                    tmp.fill(AbsValue::top());
                    tmp[reg::zero] = AbsValue::constant(0);
                    auto seed = [&](std::uint8_t r) {
                        tmp[r] = ssa.defAtExit[p][r] == d
                                     ? v
                                     : valOrTop(ssa.defAtExit[p][r]);
                    };
                    seed(er.condReg);
                    if (er.hasCmp) {
                        seed(er.cmpA);
                        if (er.cmpBIsReg) seed(er.cmpB);
                    }
                    seed(reg);
                    if (refineForEdge(cfg, er, c, tmp) &&
                        ssa.defAtExit[p][reg] == d && !tmp[reg].isBottom())
                        v = v.meet(tmp[reg]);
                }
            }
            c = p;
        }
        return v;
    }

    /// Derive per-branch verdicts from the final values.
    void deriveVerdicts() {
        for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
            if (!out.blockExecutable[b]) continue;
            const BasicBlock& block = cfg.blocks[b];
            for (InstrIndex i = block.first; i <= block.last; ++i) {
                const Instruction& ins = cfg.program->code[i];
                if (ins.op == Op::kSys && sysHalts(i)) break;
                if (!isCondBranch(ins.op)) continue;
                const std::uint32_t d = ssa.srcDef[i][0];
                AbsValue v = valOf(d);
                if (d != kNoDef && !v.isBottom())
                    v = sharpenByDominators(b, d, v);
                out.condAtBranch[i] = v;
                switch (evalCondAbs(branchCond(ins.op), v)) {
                    case TriBool::kTrue:
                        out.branchDir[i] = BranchDirection::kAlwaysTaken;
                        break;
                    case TriBool::kFalse:
                        out.branchDir[i] = BranchDirection::kNeverTaken;
                        break;
                    case TriBool::kUnknown:
                        out.branchDir[i] = BranchDirection::kDynamic;
                        break;
                }
            }
        }
    }
};

}  // namespace

SccpResult runSccp(const Cfg& cfg, const DominatorTree& doms,
                   const LoopForest& loops, const SsaForm& ssa) {
    (void)loops;  // widening is per-def here; kept for interface symmetry
    SccpResult res;
    const std::size_t n = cfg.blocks.size();
    res.value.assign(ssa.defs.size(), AbsValue::bottom());
    res.blockExecutable.assign(n, 0);
    res.edgeExecutable.resize(n);
    for (std::size_t b = 0; b < n; ++b)
        res.edgeExecutable[b].assign(cfg.blocks[b].succs.size(), 0);
    res.branchDir.assign(cfg.numInstructions(), BranchDirection::kUnreachable);
    res.condAtBranch.assign(cfg.numInstructions(), AbsValue::bottom());
    if (n == 0 || cfg.entryBlock == kNoBlock) return res;

    Engine engine(cfg, doms, ssa, res);
    engine.run();
    engine.deriveVerdicts();
    return res;
}

}  // namespace asbr::analysis::ipa

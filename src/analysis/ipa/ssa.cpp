#include "analysis/ipa/ssa.hpp"

#include <algorithm>

#include "util/ensure.hpp"

namespace asbr::analysis::ipa {

namespace {

/// Per-block use/def masks for register liveness: `use` has bit r set when
/// r is read before any in-block write, `def` when the block writes r.
struct UseDef {
    std::uint32_t use = 0;
    std::uint32_t def = 0;
};

UseDef blockUseDef(const Cfg& cfg, std::size_t b) {
    UseDef ud;
    const BasicBlock& block = cfg.blocks[b];
    for (InstrIndex i = block.first; i <= block.last; ++i) {
        const Instruction& ins = cfg.program->code[i];
        const SrcRegs srcs = srcRegs(ins);
        for (int s = 0; s < srcs.count; ++s) {
            const std::uint8_t r = srcs.regs[s];
            if (((ud.def >> r) & 1u) == 0) ud.use |= 1u << r;
        }
        if (const auto d = destReg(ins); d && *d != reg::zero)
            ud.def |= 1u << *d;
    }
    return ud;
}

}  // namespace

std::size_t SsaForm::numUses() const {
    std::size_t n = 0;
    for (const SsaDef& d : defs) n += d.uses.size();
    return n;
}

std::vector<std::vector<std::size_t>> dominanceFrontiers(
    const Cfg& cfg, const DominatorTree& doms) {
    const std::size_t n = cfg.blocks.size();
    std::vector<std::vector<std::size_t>> df(n);
    for (std::size_t b = 0; b < n; ++b) {
        // No join-node (preds >= 2) filter: a self-loop's head is in its own
        // frontier even with a single predecessor (b dominates its pred b
        // but not *strictly* itself), and the φ there is load-bearing.
        if (!doms.reachable(b)) continue;
        for (const std::size_t p : cfg.blocks[b].preds) {
            if (!doms.reachable(p)) continue;
            // Walk idoms from each predecessor up to b's idom; every block
            // on the way has b in its frontier.
            std::size_t runner = p;
            while (runner != doms.idom[b]) {
                auto& f = df[runner];
                if (std::find(f.begin(), f.end(), b) == f.end())
                    f.push_back(b);
                if (runner == doms.idom[runner]) break;  // entry self-loop
                runner = doms.idom[runner];
            }
        }
    }
    for (auto& f : df) std::sort(f.begin(), f.end());
    return df;
}

SsaForm buildSsa(const Cfg& cfg, const DominatorTree& doms) {
    SsaForm ssa;
    const std::size_t n = cfg.blocks.size();
    const std::size_t numIns = cfg.numInstructions();
    ssa.phisOf.resize(n);
    ssa.srcDef.assign(numIns, {kNoDef, kNoDef});
    ssa.outDef.assign(numIns, kNoDef);
    std::array<std::uint32_t, kNumRegs> noDefs{};
    noDefs.fill(kNoDef);
    ssa.defAtEntry.assign(n, noDefs);
    ssa.defAtExit.assign(n, noDefs);
    ssa.entryDef.fill(kNoDef);
    ssa.domChildren.resize(n);
    ssa.liveIn.assign(n, 0);
    if (n == 0 || cfg.entryBlock == kNoBlock) return ssa;

    ssa.frontier = dominanceFrontiers(cfg, doms);
    for (std::size_t b = 0; b < n; ++b) {
        if (!doms.reachable(b) || b == cfg.entryBlock) continue;
        ssa.domChildren[doms.idom[b]].push_back(b);
    }

    // ---- liveness (pruned φ placement needs live-in sets) ----------------
    std::vector<UseDef> ud(n);
    for (std::size_t b = 0; b < n; ++b) ud[b] = blockUseDef(cfg, b);
    std::vector<std::uint32_t> liveOut(n, 0);
    for (bool changed = true; changed;) {
        changed = false;
        // Reverse RPO converges in a couple of sweeps.
        for (auto it = doms.rpo.rbegin(); it != doms.rpo.rend(); ++it) {
            const std::size_t b = *it;
            std::uint32_t out = 0;
            for (const std::size_t s : cfg.blocks[b].succs) out |= ssa.liveIn[s];
            const std::uint32_t in = ud[b].use | (out & ~ud[b].def);
            if (out != liveOut[b] || in != ssa.liveIn[b]) {
                liveOut[b] = out;
                ssa.liveIn[b] = in;
                changed = true;
            }
        }
    }

    // ---- φ placement (per register, worklist over dominance frontiers) ---
    auto newDef = [&ssa](std::uint8_t r, std::size_t block) {
        const auto id = static_cast<std::uint32_t>(ssa.defs.size());
        SsaDef d;
        d.reg = r;
        d.block = block;
        ssa.defs.push_back(std::move(d));
        return id;
    };
    // Synthetic entry defs: the deterministic reset state defines every
    // register at the entry block.
    for (int r = 0; r < kNumRegs; ++r) {
        const std::uint32_t id =
            newDef(static_cast<std::uint8_t>(r), cfg.entryBlock);
        ssa.defs[id].isEntry = true;
        ssa.entryDef[static_cast<std::size_t>(r)] = id;
    }

    std::vector<std::vector<char>> hasPhi(
        kNumRegs, std::vector<char>(n, 0));
    for (int r = 1; r < kNumRegs; ++r) {  // reg 0 never gets φs
        std::vector<std::size_t> work;
        std::vector<char> onWork(n, 0);
        auto push = [&](std::size_t b) {
            if (!onWork[b] && doms.reachable(b)) {
                onWork[b] = 1;
                work.push_back(b);
            }
        };
        push(cfg.entryBlock);  // the synthetic entry def
        for (std::size_t b = 0; b < n; ++b)
            if ((ud[b].def >> r) & 1u) push(b);
        while (!work.empty()) {
            const std::size_t b = work.back();
            work.pop_back();
            for (const std::size_t y : ssa.frontier[b]) {
                if (hasPhi[static_cast<std::size_t>(r)][y]) continue;
                if (((ssa.liveIn[y] >> r) & 1u) == 0) continue;  // pruned
                hasPhi[static_cast<std::size_t>(r)][y] = 1;
                const auto phiId = static_cast<std::uint32_t>(ssa.phis.size());
                SsaPhi phi;
                phi.block = y;
                phi.reg = static_cast<std::uint8_t>(r);
                phi.args.assign(cfg.blocks[y].preds.size(), kNoDef);
                phi.def = newDef(static_cast<std::uint8_t>(r), y);
                ssa.defs[phi.def].isPhi = true;
                ssa.defs[phi.def].phi = phiId;
                ssa.phis.push_back(std::move(phi));
                ssa.phisOf[y].push_back(phiId);
                push(y);  // the φ is itself a def
            }
        }
    }

    // ---- renaming (iterative DFS over the dominator tree) ----------------
    std::array<std::vector<std::uint32_t>, kNumRegs> stack;
    for (int r = 0; r < kNumRegs; ++r)
        stack[static_cast<std::size_t>(r)].push_back(
            ssa.entryDef[static_cast<std::size_t>(r)]);

    struct Frame {
        std::size_t block;
        std::size_t child = 0;   ///< next dom child to visit
        std::vector<std::pair<std::uint8_t, std::uint32_t>> pushed;
    };
    std::vector<Frame> dfs;
    dfs.push_back({cfg.entryBlock, 0, {}});

    auto addUse = [&ssa](std::uint32_t def, bool atPhi, std::uint32_t site,
                         std::uint8_t slot) {
        ssa.defs[def].uses.push_back({atPhi, site, slot});
    };

    while (!dfs.empty()) {
        Frame& frame = dfs.back();
        const std::size_t b = frame.block;
        if (frame.child == 0) {
            // First visit: rename φs, instructions, then fill succ φ args.
            for (const std::uint32_t phiId : ssa.phisOf[b]) {
                const std::uint32_t d = ssa.phis[phiId].def;
                stack[ssa.phis[phiId].reg].push_back(d);
                frame.pushed.emplace_back(ssa.phis[phiId].reg, d);
            }
            for (int r = 0; r < kNumRegs; ++r)
                ssa.defAtEntry[b][static_cast<std::size_t>(r)] =
                    stack[static_cast<std::size_t>(r)].back();
            const BasicBlock& block = cfg.blocks[b];
            for (InstrIndex i = block.first; i <= block.last; ++i) {
                const Instruction& ins = cfg.program->code[i];
                const SrcRegs srcs = srcRegs(ins);
                for (int s = 0; s < srcs.count; ++s) {
                    const std::uint32_t d = stack[srcs.regs[s]].back();
                    ssa.srcDef[i][static_cast<std::size_t>(s)] = d;
                    addUse(d, /*atPhi=*/false, i,
                           static_cast<std::uint8_t>(s));
                }
                if (const auto dst = destReg(ins);
                    dst && *dst != reg::zero) {
                    const std::uint32_t d = newDef(*dst, b);
                    ssa.defs[d].instr = i;
                    ssa.outDef[i] = d;
                    stack[*dst].push_back(d);
                    frame.pushed.emplace_back(*dst, d);
                }
            }
            for (int r = 0; r < kNumRegs; ++r)
                ssa.defAtExit[b][static_cast<std::size_t>(r)] =
                    stack[static_cast<std::size_t>(r)].back();
            for (const std::size_t succ : block.succs) {
                // This block's position in the successor's pred list names
                // the φ-argument slot.
                const auto& preds = cfg.blocks[succ].preds;
                const auto pit = std::find(preds.begin(), preds.end(), b);
                ASBR_ENSURE(pit != preds.end(), "buildSsa: broken pred link");
                const auto slot =
                    static_cast<std::uint8_t>(pit - preds.begin());
                for (const std::uint32_t phiId : ssa.phisOf[succ]) {
                    SsaPhi& phi = ssa.phis[phiId];
                    const std::uint32_t d = stack[phi.reg].back();
                    phi.args[slot] = d;
                    addUse(d, /*atPhi=*/true, phiId, slot);
                }
            }
        }
        if (frame.child < ssa.domChildren[b].size()) {
            const std::size_t next = ssa.domChildren[b][frame.child++];
            dfs.push_back({next, 0, {}});
            continue;
        }
        for (auto it = frame.pushed.rbegin(); it != frame.pushed.rend(); ++it)
            stack[it->first].pop_back();
        dfs.pop_back();
    }
    return ssa;
}

}  // namespace asbr::analysis::ipa

// Sparse conditional constant propagation over the interval x sign domain.
//
// Classic Wegman–Zadeck structure on the SSA form (analysis/ipa/ssa): a
// CFG-edge worklist discovers executable blocks, an SSA-edge worklist
// re-evaluates only the uses of defs whose value rose, and φs join only the
// operands arriving along executable edges — so code behind a
// provably-one-sided branch contributes nothing, which is exactly where
// sparse beats the dense fixpoint (absint.cpp) on cost and matches it on
// precision.
//
// Three refinements close the precision gap the dense engine's per-edge
// state threading would otherwise win:
//   - φ operands are refined by the predecessor's branch condition (the
//     shared refineForEdge/compare-operand logic from absint/refine.hpp)
//     before joining, recovering the dense edge refinement at join points;
//   - branch verdicts additionally meet the tested def's value with every
//     refinement from *dominating* one-sided branch edges on the idom chain
//     (the `beqz s0, A; ...; beqz s0, B` double-test pattern a pure SSA
//     value cannot see);
//   - after the ascending fixpoint, two sparse narrowing sweeps re-evaluate
//     every def from its operands and meet the result into the stored value
//     (both sides over-approximate, so the intersection still does),
//     clawing back widening overshoot exactly like the dense engine.
//
// Termination: values only rise during the ascending phase, and a per-def
// update counter switches to interval widening past a small cap, so the
// threshold ladder bounds every chain.  A global evaluation budget forces
// the remaining state to top (converged = false) on pathological graphs.
#pragma once

#include <cstdint>
#include <vector>

#include "analysis/absint/absint.hpp"
#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/ipa/ssa.hpp"
#include "analysis/loops.hpp"

namespace asbr::analysis::ipa {

struct SccpResult {
    /// Final abstract value per SSA def (bottom: never evaluated, i.e. the
    /// def's block is unreachable).
    std::vector<AbsValue> value;
    /// Executable under the sparse abstract semantics.
    std::vector<char> blockExecutable;
    /// edgeExecutable[b][i], parallel to cfg.blocks[b].succs.
    std::vector<std::vector<char>> edgeExecutable;
    /// Per instruction; meaningful at conditional branches (kUnreachable
    /// elsewhere).  Includes the dominating-branch sharpening.
    std::vector<BranchDirection> branchDir;
    /// Value of the tested def at each conditional branch (after the
    /// dominating-branch meet); bottom elsewhere.
    std::vector<AbsValue> condAtBranch;

    std::size_t iterations = 0;  ///< instruction/φ evaluations to fixpoint
    bool converged = true;

    [[nodiscard]] BranchDirection directionAt(InstrIndex i) const {
        return branchDir[i];
    }
};

/// Run SCCP to fixpoint.  `doms`, `loops` and `ssa` must all come from
/// `cfg`.
[[nodiscard]] SccpResult runSccp(const Cfg& cfg, const DominatorTree& doms,
                                 const LoopForest& loops, const SsaForm& ssa);

}  // namespace asbr::analysis::ipa

// Value-set resolution of indirect jumps (`jalr`, non-return `jr`).
//
// For each indirect site in an executable block, the value set of the
// address register is recovered from the SCCP solution over the SSA form:
//   - a constant def is itself the (singleton) set — the function-pointer-
//     in-a-register pattern;
//   - a φ of resolvable defs is the union of its operands' sets (depth
//     limited), covering "r = f or r = g" diamonds;
//   - a `lw` whose address interval lies inside the data segment reads the
//     dispatch table directly from the program image, provided the table is
//     provably read-only: no store in any executable block may overlap the
//     interval, and a single store with an unbounded address poisons all
//     tables.  Every word in the interval must decode to a text address.
// Anything else stays unresolved (the register's value set is treated as
// top), and the conservative every-entry/every-return-point CFG edges
// remain — so a wrong guess can only cost precision, never soundness.
//
// The resulting IndirectMap feeds the refined buildCfg overload
// (analysis/cfg.hpp) and the WCET engine's callee inlining.
#pragma once

#include <cstddef>

#include "analysis/cfg.hpp"
#include "analysis/ipa/sccp.hpp"
#include "analysis/ipa/ssa.hpp"

namespace asbr::analysis::ipa {

struct IndirectResolution {
    /// Resolved sites only; unresolved ones simply have no entry.
    IndirectMap map;
    std::size_t resolvedCalls = 0;  ///< jalr sites with a proved target set
    std::size_t resolvedGotos = 0;  ///< non-return jr sites resolved
    std::size_t unresolvedSites = 0;
    std::size_t tableLoads = 0;  ///< sites resolved via a dispatch-table lw
};

/// Resolve every executable indirect site of `cfg` from the SCCP solution.
/// `ssa` and `sccp` must come from the same cfg.
[[nodiscard]] IndirectResolution resolveIndirects(const Cfg& cfg,
                                                  const SsaForm& ssa,
                                                  const SccpResult& sccp);

}  // namespace asbr::analysis::ipa

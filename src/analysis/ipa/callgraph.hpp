// Whole-program call graph with bottom-up per-function summaries.
//
// Functions are the entries the CFG discovered (program entry, jal targets,
// value-set-resolved jalr targets); each body is the intraprocedural walk
// from its entry — calls stepped over, returns ending the walk, resolved
// computed gotos followed.  Shared tails belong to every function that
// reaches them, which keeps all summaries sound over-approximations.
//
// Each summary carries
//   - the transitive clobber mask (registers the call may write, closed
//     over callees; ~0u as soon as an unresolved indirect is reachable),
//   - the return-value interval (join of v0's SCCP value at every
//     executable jr-ra exit),
//   - the callee set and call-site pcs,
// and, once the caller has run the WCET engine, the per-invocation cycle
// bound (WcetResult::functionCycles).  Consumers: the WCET callee
// inlining, the `asbr-verify callgraph` dump and the asbr.ipa_report.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/ipa/sccp.hpp"
#include "analysis/ipa/ssa.hpp"

namespace asbr::analysis::ipa {

struct FunctionSummary {
    InstrIndex entry = 0;
    std::uint32_t entryPc = 0;
    /// Registers possibly written by a call, callees included.
    std::uint32_t clobbered = 0;
    /// v0 at executable returns; bottom when the function provably never
    /// returns (no executable jr-ra), top past an unresolved call.
    AbsValue returnValue = AbsValue::bottom();
    std::vector<std::size_t> callees;      ///< function indices, sorted
    std::vector<std::uint32_t> callSitePcs;  ///< calls inside the body
    std::size_t blockCount = 0;            ///< body size (blocks)
    bool hasUnresolvedIndirect = false;
    bool reachableFromMain = false;
    /// Filled by the caller from WcetResult::functionCycles; 0 + false
    /// until then.
    std::uint64_t wcetCycles = 0;
    bool wcetBounded = false;
};

struct CallGraph {
    std::vector<FunctionSummary> functions;  ///< ascending entry pc
    std::map<InstrIndex, std::size_t> byEntry;
    std::size_t mainIndex = 0;
    /// Bottom-up (callees-first) order over reachableFromMain functions;
    /// back edges of recursive cycles are simply skipped.
    std::vector<std::size_t> bottomUp;
    bool recursive = false;

    [[nodiscard]] std::size_t numEdges() const {
        std::size_t n = 0;
        for (const FunctionSummary& f : functions) n += f.callees.size();
        return n;
    }
};

/// Build the call graph and summaries.  `ssa`/`sccp` must come from `cfg`;
/// `resolved` must be the map `cfg` was built with (empty is fine).
[[nodiscard]] CallGraph buildCallGraph(const Cfg& cfg, const SsaForm& ssa,
                                       const SccpResult& sccp,
                                       const IndirectMap& resolved);

/// Graphviz rendering: one node per function (entry pc, clobber count,
/// WCET bound when filled), one edge per caller->callee pair.
[[nodiscard]] std::string callGraphDot(const CallGraph& graph);

}  // namespace asbr::analysis::ipa

// SSA construction over the interprocedural CFG.
//
// Classic dominance-frontier algorithm (Cytron et al.) on top of the PR 4
// dominator tree: per-register definition sites, pruned φ placement (a φ is
// inserted at a dominance-frontier block only when the register is live-in
// there, so no dead φs clutter the def–use chains), and renaming along a
// depth-first walk of the dominator tree.  Registers are the only SSA
// variables — memory stays out of SSA form, matching the abstract domain
// (absint/domain.hpp) which does not model it either.
//
// Every architectural register receives a synthetic *entry definition*
// carrying the deterministic reset state, so uses before any write resolve
// to a real def (and feed the read-of-never-written lint) instead of being
// undefined.  Unreachable blocks are skipped entirely: their instructions
// keep kNoDef operands.
//
// The result is a pure data structure: per-instruction operand/def links,
// per-def use lists (the def–use chains SCCP's sparse worklist follows),
// per-block φ lists with one argument per predecessor edge, and reaching
// defs at block entry/exit (used by the φ-edge refinement and the
// dominating-branch verdict sharpening in analysis/ipa/sccp.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"

namespace asbr::analysis::ipa {

/// Sentinel def id ("no def" — operand of an unreachable instruction,
/// instruction without a destination, ...).
inline constexpr std::uint32_t kNoDef = 0xFFFF'FFFFu;

/// One use of an SSA def: either a source operand of an instruction or an
/// argument slot of a φ.
struct SsaUse {
    bool atPhi = false;
    std::uint32_t site = 0;  ///< instruction index, or φ id when atPhi
    std::uint8_t slot = 0;   ///< operand slot / φ-argument (pred) index
};

/// One SSA definition of a register.
struct SsaDef {
    std::uint8_t reg = 0;
    std::size_t block = kNoBlock;
    InstrIndex instr = 0;    ///< defining instruction (plain defs only)
    bool isPhi = false;
    bool isEntry = false;    ///< synthetic reset-state def at the entry block
    std::uint32_t phi = 0;   ///< φ id when isPhi
    std::vector<SsaUse> uses;
};

/// A φ node: one argument per predecessor edge of its block (parallel to
/// cfg.blocks[block].preds; kNoDef for preds that are unreachable).
struct SsaPhi {
    std::uint32_t def = kNoDef;
    std::size_t block = kNoBlock;
    std::uint8_t reg = 0;
    std::vector<std::uint32_t> args;
};

struct SsaForm {
    std::vector<SsaDef> defs;
    std::vector<SsaPhi> phis;
    std::vector<std::vector<std::uint32_t>> phisOf;  ///< block id -> φ ids
    /// Per instruction: the def consumed by each source operand, parallel
    /// to srcRegs(ins) (kNoDef when absent or unreachable).
    std::vector<std::array<std::uint32_t, 2>> srcDef;
    /// Per instruction: the def it creates (kNoDef when none).
    std::vector<std::uint32_t> outDef;
    /// Reaching def per register at block entry (after φs) and exit;
    /// kNoDef rows for unreachable blocks.
    std::vector<std::array<std::uint32_t, kNumRegs>> defAtEntry;
    std::vector<std::array<std::uint32_t, kNumRegs>> defAtExit;
    /// The 32 synthetic entry defs, indexed by register.
    std::array<std::uint32_t, kNumRegs> entryDef{};
    /// Dominator-tree children (reachable blocks only).
    std::vector<std::vector<std::size_t>> domChildren;
    /// Dominance frontier per block.
    std::vector<std::vector<std::size_t>> frontier;
    /// live-in register mask per block (bit r set: r read before written on
    /// some path from the block entry).
    std::vector<std::uint32_t> liveIn;

    [[nodiscard]] std::size_t numPhis() const { return phis.size(); }
    /// Total operand/φ-argument uses recorded across all defs.
    [[nodiscard]] std::size_t numUses() const;
};

/// Build pruned SSA form for `cfg`; `doms` must come from the same cfg.
[[nodiscard]] SsaForm buildSsa(const Cfg& cfg, const DominatorTree& doms);

/// Dominance frontiers per block (Cooper/Harvey/Kennedy's two-finger walk);
/// exposed for tests.
[[nodiscard]] std::vector<std::vector<std::size_t>> dominanceFrontiers(
    const Cfg& cfg, const DominatorTree& doms);

}  // namespace asbr::analysis::ipa

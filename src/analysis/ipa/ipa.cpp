#include "analysis/ipa/ipa.hpp"

#include <algorithm>

#include "analysis/absint/refine.hpp"

namespace asbr::analysis::ipa {

namespace {

/// Reduced product of two sound direction verdicts.  Contradicting proofs
/// (one engine says always, the other never) mean the branch can never
/// actually execute.
BranchDirection mergeDir(BranchDirection a, BranchDirection b) {
    using D = BranchDirection;
    if (a == D::kUnreachable || b == D::kUnreachable) return D::kUnreachable;
    if ((a == D::kAlwaysTaken && b == D::kNeverTaken) ||
        (a == D::kNeverTaken && b == D::kAlwaysTaken))
        return D::kUnreachable;
    if (a == D::kAlwaysTaken || b == D::kAlwaysTaken) return D::kAlwaysTaken;
    if (a == D::kNeverTaken || b == D::kNeverTaken) return D::kNeverTaken;
    return D::kDynamic;
}

bool decided(BranchDirection d) {
    return d == BranchDirection::kAlwaysTaken ||
           d == BranchDirection::kNeverTaken;
}

}  // namespace

IpaAnalysis analyzeProgram(const Program& program) {
    IpaAnalysis a;
    IndirectMap resolved;

    for (int round = 0;; ++round) {
        a.stats.rounds = static_cast<std::size_t>(round) + 1;
        a.cfg = buildCfg(program, resolved.empty() ? nullptr : &resolved);
        a.doms = computeDominators(a.cfg);
        a.loops = computeLoops(a.cfg, a.doms);
        a.ssa = buildSsa(a.cfg, a.doms);
        a.sccp = runSccp(a.cfg, a.doms, a.loops, a.ssa);
        if (round >= kMaxRounds) break;  // freeze: analysis matches `resolved`
        IndirectResolution res = resolveIndirects(a.cfg, a.ssa, a.sccp);
        const bool stable = res.map == resolved;
        a.resolution = std::move(res);
        if (stable) break;
        resolved = a.resolution.map;
    }

    // Dense fixpoint on the final graph, then the reduced product.
    a.values = analyzeValues(a.cfg, a.loops);
    a.denseDir = a.values.branchDir;
    const std::size_t n = a.cfg.blocks.size();
    for (InstrIndex i = 0; i < a.cfg.numInstructions(); ++i) {
        if (!isCondBranch(program.code[i].op)) continue;
        const BranchDirection dense = a.values.branchDir[i];
        const BranchDirection sparse = a.sccp.branchDir[i];
        a.values.branchDir[i] = mergeDir(dense, sparse);
        a.values.condAtBranch[i] =
            a.values.condAtBranch[i].meet(a.sccp.condAtBranch[i]);
        if (decided(dense)) ++a.stats.denseDecided;
        if (decided(sparse)) ++a.stats.sccpDecided;
        if (decided(a.values.branchDir[i])) ++a.stats.mergedDecided;
    }
    for (std::size_t b = 0; b < n; ++b) {
        a.values.blockReachable[b] =
            a.values.blockReachable[b] && a.sccp.blockExecutable[b];
        for (std::size_t si = 0; si < a.values.feasibleEdge[b].size(); ++si)
            a.values.feasibleEdge[b][si] =
                a.values.feasibleEdge[b][si] && a.sccp.edgeExecutable[b][si];
    }
    a.values.converged = a.values.converged && a.sccp.converged;

    // Rebuild the derived lint lists from the merged facts.
    a.values.unreachableBlocks.clear();
    a.values.deadArms.clear();
    for (std::size_t b = 0; b < n; ++b) {
        if (!a.values.blockReachable[b]) {
            a.values.unreachableBlocks.push_back(b);
            continue;
        }
        const EdgeRefinement er = edgeRefinement(a.cfg, b);
        if (!er.isBranch || er.targetIdx == er.fallthroughIdx) continue;
        const InstrIndex branch = a.cfg.blocks[b].last;
        if (a.values.branchDir[branch] == BranchDirection::kAlwaysTaken)
            a.values.deadArms.push_back({branch, /*takenArm=*/false});
        else if (a.values.branchDir[branch] == BranchDirection::kNeverTaken)
            a.values.deadArms.push_back({branch, /*takenArm=*/true});
    }

    a.callGraph = buildCallGraph(a.cfg, a.ssa, a.sccp, a.resolution.map);
    a.stats.ssaDefs = a.ssa.defs.size();
    a.stats.ssaPhis = a.ssa.numPhis();
    a.stats.ssaUses = a.ssa.numUses();
    a.stats.sccpIterations = a.sccp.iterations;
    a.stats.sccpConverged = a.sccp.converged;
    return a;
}

}  // namespace asbr::analysis::ipa

#include "analysis/dominators.hpp"

#include <algorithm>

namespace asbr::analysis {

bool DominatorTree::dominates(std::size_t a, std::size_t b) const {
    if (!reachable(a) || !reachable(b)) return false;
    // Walk b's dominator chain toward the entry; idom positions strictly
    // decrease in RPO, so the walk terminates at the entry (its own idom).
    while (true) {
        if (a == b) return true;
        const std::size_t up = idom[b];
        if (up == b) return false;  // reached the entry without meeting a
        b = up;
    }
}

namespace {

/// Nearest common ancestor of two finished nodes in the (partial) tree,
/// walking by RPO index as in Cooper/Harvey/Kennedy Figure 3.
std::size_t intersect(const std::vector<std::size_t>& idom,
                      const std::vector<std::size_t>& rpoIndex, std::size_t a,
                      std::size_t b) {
    while (a != b) {
        while (rpoIndex[a] > rpoIndex[b]) a = idom[a];
        while (rpoIndex[b] > rpoIndex[a]) b = idom[b];
    }
    return a;
}

}  // namespace

DominatorTree computeDominators(const Cfg& cfg) {
    DominatorTree tree;
    const std::size_t n = cfg.blocks.size();
    tree.idom.assign(n, kNoBlock);
    tree.rpoIndex.assign(n, kNoBlock);
    if (n == 0 || cfg.entryBlock == kNoBlock) return tree;

    // Iterative post-order DFS from the entry, then reverse.
    std::vector<char> seen(n, 0);
    std::vector<std::pair<std::size_t, std::size_t>> stack;  // (block, next succ)
    stack.emplace_back(cfg.entryBlock, 0);
    seen[cfg.entryBlock] = 1;
    std::vector<std::size_t> postorder;
    postorder.reserve(n);
    while (!stack.empty()) {
        auto& [block, next] = stack.back();
        const auto& succs = cfg.blocks[block].succs;
        if (next < succs.size()) {
            const std::size_t s = succs[next++];
            if (!seen[s]) {
                seen[s] = 1;
                stack.emplace_back(s, 0);
            }
        } else {
            postorder.push_back(block);
            stack.pop_back();
        }
    }
    tree.rpo.assign(postorder.rbegin(), postorder.rend());
    for (std::size_t i = 0; i < tree.rpo.size(); ++i)
        tree.rpoIndex[tree.rpo[i]] = i;

    tree.idom[cfg.entryBlock] = cfg.entryBlock;
    bool changed = true;
    while (changed) {
        changed = false;
        for (const std::size_t b : tree.rpo) {
            if (b == cfg.entryBlock) continue;
            std::size_t newIdom = kNoBlock;
            for (const std::size_t p : cfg.blocks[b].preds) {
                if (tree.idom[p] == kNoBlock) continue;  // not yet processed
                newIdom = newIdom == kNoBlock
                              ? p
                              : intersect(tree.idom, tree.rpoIndex, newIdom, p);
            }
            if (newIdom != kNoBlock && tree.idom[b] != newIdom) {
                tree.idom[b] = newIdom;
                changed = true;
            }
        }
    }
    return tree;
}

}  // namespace asbr::analysis

// Structured IPET-style WCET engine over the CFG.
//
// Implicit path enumeration without an ILP solver: the engine decomposes
// the interprocedural supergraph into functions (call edges replaced by a
// call -> fall-through step weighted with the callee's own WCET, computed
// bottom-up over the call graph), detects each function's natural loops on
// its intraprocedural subgraph, and solves the longest-path problem
// structurally — innermost loops first, each loop contracted to a supernode
// of weight
//
//     (N - 1) * C_iter + C_exit
//
// where N bounds the head executions per entry (analysis/timing/loop_bounds),
// C_iter is the longest head-to-latch path through the (already-contracted)
// acyclic body, and C_exit the longest path from the head to any body node.
// After all loops collapse the remaining graph is acyclic and ordinary
// topological longest-path finishes the function.  Per-block cycle weights
// come from the declarative cost model (analysis/timing/cost_model).
//
// Unsupported shapes fail loudly instead of lying: recursion, indirect
// calls/jumps, irreducible cycles and unbounded loops all yield
// `bounded == false` with a reason string.
//
// Besides the cycle bound the engine ranks every conditional branch by its
// static worst-case misprediction cost (execution bound x penalty) — the
// input to cost-aware ASBR selection (selectBranchesByStaticCost).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "analysis/absint/absint.hpp"
#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "analysis/timing/cost_model.hpp"
#include "analysis/timing/loop_bounds.hpp"
#include "mem/memory.hpp"
#include "util/metrics.hpp"

namespace asbr::analysis::timing {

/// One analyzed natural loop, reported per distinct head pc.
struct LoopRecord {
    std::uint32_t headPc = 0;
    int sourceLine = -1;
    std::size_t depth = 1;  ///< nesting depth within the owning function
    LoopBound bound;
    /// Body instruction pcs (sorted, deduplicated) — consumed by the
    /// dynamic loop-bound observer, not the report.
    std::vector<std::uint32_t> memberPcs;
};

/// Static misprediction-cost ranking entry for one conditional branch.
struct BranchCostRecord {
    std::uint32_t pc = 0;
    int sourceLine = -1;
    std::uint64_t execBound = 0;  ///< worst-case executions on any path
    std::uint64_t unitCost = 0;   ///< mispredict penalty; 0 when folded
    std::uint64_t totalCost = 0;  ///< execBound * unitCost (saturating)
    bool folded = false;
};

struct WcetResult {
    bool bounded = false;
    std::string reason;        ///< failure cause when !bounded
    std::uint64_t cycles = 0;  ///< bound incl. the fill/drain allowance
    std::vector<BranchCostRecord> branches;  ///< totalCost desc, then pc asc
    /// Per-function bound (entry pc -> cycles), ascending pc; the callee
    /// summaries the interprocedural report publishes.  Empty when
    /// !bounded.
    std::vector<std::pair<std::uint32_t, std::uint64_t>> functionCycles;
};

class WcetEngine {
public:
    /// `cfg` and `va` must outlive the engine (FoldLegalityVerifier owns
    /// both for the usual caller).  `resolved` (optional, must outlive the
    /// engine) carries value-set-resolved indirect sites: a resolved jalr
    /// becomes a direct call to each possible callee (the block is charged
    /// the *maximum* callee bound), a resolved jr a computed goto — instead
    /// of the blanket "indirect control flow" failure.
    WcetEngine(const Cfg& cfg, const ValueAnalysis& va, TimingCostModel model,
               const IndirectMap* resolved = nullptr);

    /// All loops across the program's functions, annotation and inference
    /// already applied, sorted by head pc.
    [[nodiscard]] const std::vector<LoopRecord>& loops() const {
        return records_;
    }

    /// Attach measured per-entry iteration maxima (head pc -> iterations)
    /// to loops that have no static bound.  Sound only for the observed
    /// input; such loops carry BoundSource::kProfile in the report.
    void applyObservedBounds(
        const std::map<std::uint32_t, std::uint64_t>& observed);

    /// Structured longest-path WCET with the given always-folding branch
    /// set (static fold table entries + ProvablySafe BIT residents).
    [[nodiscard]] WcetResult compute(
        const std::set<std::uint32_t>& foldedPcs) const;

    [[nodiscard]] const TimingCostModel& model() const { return model_; }

private:
    struct FunctionInfo {
        InstrIndex entryInstr = 0;
        std::vector<std::size_t> globalBlocks;  ///< local id -> cfg block id
        Cfg local;                              ///< intraprocedural subgraph
        DominatorTree doms;
        LoopForest forest;
        std::vector<LoopBound> loopBounds;  ///< parallel to forest.loops
        /// Direct calls: (local block id, callee function index).
        std::vector<std::pair<std::size_t, std::size_t>> calls;
        bool hasIndirect = false;    ///< jalr / unresolved jr in the body
        std::uint32_t regsWritten = 0;  ///< transitive callee-clobber mask
    };

    void buildFunction(std::size_t f);
    void rebuildRecords();
    /// Value-set resolution entry for instruction i, or nullptr.
    [[nodiscard]] const ResolvedIndirect* resolutionAt(InstrIndex i) const;
    [[nodiscard]] bool isResolvedCall(InstrIndex i) const;
    [[nodiscard]] bool callOrder(std::vector<std::size_t>& topo,
                                 std::string& reason) const;

    const Cfg& cfg_;
    const ValueAnalysis& va_;
    TimingCostModel model_;
    const IndirectMap* resolved_ = nullptr;
    std::vector<FunctionInfo> funcs_;
    std::map<InstrIndex, std::size_t> funcOfEntry_;
    std::size_t mainFunc_ = 0;
    std::vector<LoopRecord> records_;
};

/// Aggregate counters one static-timing run publishes (the `wcet.*`
/// namespace).  `asbr-verify wcet` fills this from the engine's loop table
/// and the two cycle bounds; a default-constructed snapshot publishes zeros
/// so `asbr-stats counters` can enumerate the names without running an
/// analysis.
struct WcetMetrics {
    std::uint64_t loopsTotal = 0;
    std::uint64_t loopsBoundedAnnotated = 0;
    std::uint64_t loopsBoundedInferred = 0;
    std::uint64_t loopsBoundedProfiled = 0;
    std::uint64_t loopsUnbounded = 0;
    std::uint64_t boundBaselineCycles = 0;
    std::uint64_t boundFoldedCycles = 0;

    /// Tally the loop-table counters from an engine's records.
    void countLoops(const std::vector<LoopRecord>& loops);
    void publish(MetricRegistry& registry) const;
};

/// Run the functional ISS over `memory` and record, per loop head pc, the
/// maximum number of head executions within one loop entry (an episode ends
/// when control reaches a pc outside the body at the same or a shallower
/// call depth).  Used as the kProfile bound source.
[[nodiscard]] std::map<std::uint32_t, std::uint64_t> observeLoopBounds(
    const Program& program, Memory& memory,
    const std::vector<LoopRecord>& loops,
    std::uint64_t maxInstructions = 500'000'000);

}  // namespace asbr::analysis::timing

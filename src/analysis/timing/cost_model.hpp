// Declarative static cycle-cost model for the 5-stage ep32 pipeline.
//
// Every constant mirrors a PipelineConfig / pipeline.cpp timing rule, made
// explicit so the WCET engine's per-block costs are an auditable worst case
// of what the cycle-accurate simulator can charge:
//
//   - 1 cycle per committed instruction (single-issue, in-order)
//   - mul/mulh occupy EX for mulLatency cycles  => mulLatency-1 extra
//   - div/divu/rem/remu occupy EX for divLatency => divLatency-1 extra
//   - every load/store may miss the D-cache     => missPenalty extra
//   - every I-cache line a block spans may miss on every execution
//   - a non-folded conditional branch may mispredict every time:
//     2 flushed stages + redirectBubbles
//   - jr/jalr always redirect in EX: same penalty as a mispredict
//   - j/jal redirect in IF (predecode): no penalty
//   - adjacent load-use dependences stall one cycle; a block-ending load is
//     charged one cycle unconditionally (its consumer may open the next block)
//   - a constant pipeline fill/drain allowance covers startup and exit
//
// A branch in `foldedPcs` is resolved by the ASBR customizer on every fetch
// (static fold table entry or a ProvablySafe BIT resident): it never enters
// the pipeline, so it costs nothing at all.
#pragma once

#include <cstdint>
#include <set>

#include "analysis/cfg.hpp"
#include "sim/pipeline.hpp"

namespace asbr::analysis::timing {

struct TimingCostModel {
    std::uint32_t mulStall = 3;           ///< mulLatency - 1
    std::uint32_t divStall = 11;          ///< divLatency - 1
    std::uint32_t mispredictPenalty = 3;  ///< 2 flushed stages + redirectBubbles
    std::uint32_t icacheMissPenalty = 8;
    std::uint32_t dcacheMissPenalty = 8;
    std::uint32_t icacheLineBytes = 32;
    std::uint32_t pipelineFillCycles = 8;  ///< one-off fill/drain allowance

    /// Derive the model from a pipeline configuration (the sound direction:
    /// constants come from the config the measured run will use).
    [[nodiscard]] static TimingCostModel fromPipeline(const PipelineConfig& config);
};

/// Worst-case cycles for one execution of block `b`, charging every rule
/// above.  Branches in `foldedPcs` cost nothing.
[[nodiscard]] std::uint64_t blockCost(const Cfg& cfg, std::size_t b,
                                      const TimingCostModel& model,
                                      const std::set<std::uint32_t>& foldedPcs);

}  // namespace asbr::analysis::timing

// Loop iteration bounds for the static timing engine.
//
// Three sources, in strict precedence order:
//
//   kAnnotation — a `.loopbound N` assembler directive placed immediately
//                 before the loop-head instruction.  Trusted verbatim.
//   kInferred   — derived from the interval abstract interpretation: if some
//                 register is written exactly once inside the loop body by
//                 `addiu r, r, c` (c != 0) on every iteration path, never
//                 wraps, and the fixpoint confines its value at the loop
//                 head to a finite interval [L, H], then the loop head runs
//                 at most (H - L) / |c| + 1 times per entry (consecutive
//                 head values are distinct, monotone, and at least |c|
//                 apart inside a window of width H - L).
//   kProfile    — a dynamically observed per-entry maximum from a concrete
//                 run (observeLoopBounds).  Sound only for the measured
//                 input; the WCET report flags these loops explicitly.
//
// A loop with none of the three is unbounded: the WCET engine refuses to
// produce a cycle bound and `asbr-verify --strict` lints it.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "analysis/absint/absint.hpp"
#include "analysis/cfg.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"

namespace asbr::analysis::timing {

enum class BoundSource : std::uint8_t {
    kAnnotation,
    kInferred,
    kProfile,
    kNone,
};

[[nodiscard]] const char* boundSourceName(BoundSource s);

struct LoopBound {
    std::uint64_t iterations = 0;  ///< max head executions per loop entry
    BoundSource source = BoundSource::kNone;

    [[nodiscard]] bool bounded() const { return source != BoundSource::kNone; }
};

/// Inferred bounds beyond this are treated as inference failures: they are
/// technically sound but useless (a near-full-range interval), and a huge
/// "bound" would mask a loop that genuinely needs an annotation.
inline constexpr std::uint64_t kMaxInferredIterations = 1u << 22;

/// The `.loopbound` annotation at the head of `localLoop`, if any.
/// `localToGlobal` maps the loop's (function-local) block ids to cfg ids.
[[nodiscard]] std::optional<std::uint64_t> annotatedLoopBound(
    const Cfg& cfg, const Loop& localLoop,
    const std::vector<std::size_t>& localToGlobal);

/// Interval-fixpoint inference over a function-local natural loop.
/// `localDoms` is the dominator tree of the owning function's local graph
/// (same ids as `localLoop`); `clobberMask` marks registers additionally
/// treated as rewritten inside the body (callee side effects).
[[nodiscard]] std::optional<std::uint64_t> inferLoopBound(
    const Cfg& cfg, const ValueAnalysis& va, const Loop& localLoop,
    const DominatorTree& localDoms,
    const std::vector<std::size_t>& localToGlobal, std::uint32_t clobberMask);

}  // namespace asbr::analysis::timing

#include "analysis/timing/cost_model.hpp"

namespace asbr::analysis::timing {

TimingCostModel TimingCostModel::fromPipeline(const PipelineConfig& config) {
    TimingCostModel m;
    m.mulStall = config.mulLatency - 1;
    m.divStall = config.divLatency - 1;
    m.mispredictPenalty = 2 + config.redirectBubbles;
    m.icacheMissPenalty = config.icache.missPenalty;
    m.dcacheMissPenalty = config.dcache.missPenalty;
    m.icacheLineBytes = config.icache.lineBytes;
    return m;
}

std::uint64_t blockCost(const Cfg& cfg, std::size_t b,
                        const TimingCostModel& model,
                        const std::set<std::uint32_t>& foldedPcs) {
    const BasicBlock& block = cfg.blocks[b];
    const auto& code = cfg.program->code;
    std::uint64_t cost = 0;
    for (InstrIndex i = block.first; i <= block.last; ++i) {
        const Instruction& ins = code[i];
        const Op op = ins.op;
        if (isCondBranch(op)) {
            if (foldedPcs.count(cfg.pcOf(i)) != 0) continue;  // never fetched
            cost += 1 + model.mispredictPenalty;
            continue;
        }
        cost += 1;
        if (op == Op::kMul || op == Op::kMulh) {
            cost += model.mulStall;
        } else if (op == Op::kDiv || op == Op::kDivu || op == Op::kRem ||
                   op == Op::kRemu) {
            cost += model.divStall;
        } else if (isLoad(op) || isStore(op)) {
            cost += model.dcacheMissPenalty;
        } else if (op == Op::kJr || op == Op::kJalr) {
            cost += model.mispredictPenalty;  // indirect: resolves in EX
        }
        if (isLoad(op)) {
            // Load-use interlock: charged when the next instruction consumes
            // the loaded register, or unconditionally for a block-ending
            // load (the consumer may be the next block's first instruction).
            if (i == block.last) {
                cost += 1;
            } else {
                const auto d = destReg(ins);
                const SrcRegs srcs = srcRegs(code[i + 1]);
                for (int s = 0; s < srcs.count; ++s)
                    if (d && srcs.regs[static_cast<std::size_t>(s)] == *d) {
                        cost += 1;
                        break;
                    }
            }
        }
    }
    // Worst case, every I-cache line the block spans misses on every
    // execution of the block.
    const std::uint32_t firstByte = cfg.pcOf(block.first);
    const std::uint32_t lastByte = cfg.pcOf(block.last) + kInstrBytes - 1;
    const std::uint64_t lines =
        lastByte / model.icacheLineBytes - firstByte / model.icacheLineBytes + 1;
    cost += lines * model.icacheMissPenalty;
    return cost;
}

}  // namespace asbr::analysis::timing

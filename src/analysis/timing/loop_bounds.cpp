#include "analysis/timing/loop_bounds.hpp"

#include <cstdlib>
#include <limits>

namespace asbr::analysis::timing {

const char* boundSourceName(BoundSource s) {
    switch (s) {
        case BoundSource::kAnnotation: return "annotation";
        case BoundSource::kInferred: return "inferred";
        case BoundSource::kProfile: return "profile";
        case BoundSource::kNone: return "none";
    }
    return "?";
}

std::optional<std::uint64_t> annotatedLoopBound(
    const Cfg& cfg, const Loop& localLoop,
    const std::vector<std::size_t>& localToGlobal) {
    const std::size_t headGlobal = localToGlobal[localLoop.head];
    const std::uint32_t headPc = cfg.pcOf(cfg.blocks[headGlobal].first);
    const auto it = cfg.program->loopBounds.find(headPc);
    if (it == cfg.program->loopBounds.end()) return std::nullopt;
    return static_cast<std::uint64_t>(it->second);
}

std::optional<std::uint64_t> inferLoopBound(
    const Cfg& cfg, const ValueAnalysis& va, const Loop& localLoop,
    const DominatorTree& localDoms,
    const std::vector<std::size_t>& localToGlobal, std::uint32_t clobberMask) {
    constexpr std::int64_t kMin = std::numeric_limits<std::int32_t>::min();
    constexpr std::int64_t kMax = std::numeric_limits<std::int32_t>::max();
    const std::size_t headGlobal = localToGlobal[localLoop.head];
    // A loop the abstract semantics never reaches runs zero iterations; one
    // head execution is a sound (if unachievable) bound for it.
    if (!va.reachable(headGlobal)) return 1;

    std::optional<std::uint64_t> best;
    for (int r = 1; r < kNumRegs; ++r) {
        if ((clobberMask >> r) & 1u) continue;
        // Exactly one write to r anywhere in the body, and it must be a
        // constant-step self-increment.
        std::size_t writerLocal = kNoBlock;
        InstrIndex writerIdx = 0;
        bool multiple = false;
        for (const std::size_t lb : localLoop.blocks) {
            const BasicBlock& block = cfg.blocks[localToGlobal[lb]];
            for (InstrIndex i = block.first; i <= block.last && !multiple; ++i) {
                const auto d = destReg(cfg.program->code[i]);
                if (!d || *d != r) continue;
                if (writerLocal != kNoBlock) multiple = true;
                writerLocal = lb;
                writerIdx = i;
            }
            if (multiple) break;
        }
        if (multiple || writerLocal == kNoBlock) continue;
        const Instruction& w = cfg.program->code[writerIdx];
        if (w.op != Op::kAddiu || w.rs != r || w.imm == 0) continue;
        // The increment must execute on every completed iteration: its block
        // dominates every latch (in the function-local graph, dominance by a
        // body block is exactly "on every head-to-latch path").
        bool dominatesAll = true;
        for (const std::size_t latch : localLoop.latches)
            dominatesAll = dominatesAll && localDoms.dominates(writerLocal, latch);
        if (!dominatesAll) continue;
        // No wrap-around at the increment: r is untouched between the block
        // entry and the write (single writer), so its value there is the
        // block-in interval.
        const std::size_t writerGlobal = localToGlobal[writerLocal];
        if (!va.reachable(writerGlobal)) continue;
        const AbsValue atWrite = va.blockIn[writerGlobal][r];
        if (atWrite.isBottom()) continue;
        const std::int64_t step = w.imm;
        if (atWrite.lo + step < kMin || atWrite.hi + step > kMax) continue;
        // Every head execution sees r inside the head's fixpoint interval;
        // consecutive head values move monotonically by at least |step|.
        const AbsValue atHead = va.blockIn[headGlobal][r];
        if (atHead.isBottom()) continue;
        const std::uint64_t width =
            static_cast<std::uint64_t>(atHead.hi - atHead.lo);
        const std::uint64_t iters =
            width / static_cast<std::uint64_t>(std::llabs(w.imm)) + 1;
        if (iters > kMaxInferredIterations) continue;
        if (!best || iters < *best) best = iters;
    }
    return best;
}

}  // namespace asbr::analysis::timing

#include "analysis/timing/wcet.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "sim/functional.hpp"
#include "util/ensure.hpp"

namespace asbr::analysis::timing {

namespace {

/// Cycle counts saturate well below uint64 so products never wrap.
constexpr std::uint64_t kSatCap =
    std::numeric_limits<std::uint64_t>::max() / 4;

std::uint64_t satAdd(std::uint64_t a, std::uint64_t b) {
    return a >= kSatCap - std::min(b, kSatCap) ? kSatCap
                                               : std::min(a + b, kSatCap);
}

std::uint64_t satMul(std::uint64_t a, std::uint64_t b) {
    if (a == 0 || b == 0) return 0;
    if (a > kSatCap / b) return kSatCap;
    return a * b;
}

std::size_t findRoot(std::vector<std::size_t>& parent, std::size_t x) {
    while (parent[x] != x) {
        parent[x] = parent[parent[x]];  // path halving
        x = parent[x];
    }
    return x;
}

std::string hexPc(std::uint32_t pc) {
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%x", pc);
    return buf;
}

}  // namespace

WcetEngine::WcetEngine(const Cfg& cfg, const ValueAnalysis& va,
                       TimingCostModel model, const IndirectMap* resolved)
    : cfg_(cfg), va_(va), model_(model), resolved_(resolved) {
    if (cfg_.blocks.empty() || cfg_.entryBlock == kNoBlock) return;
    // One function per distinct entry instruction; the program entry is
    // always among cfg.functionEntries.
    for (const InstrIndex e : cfg_.functionEntries) {
        if (funcOfEntry_.count(e) != 0) continue;
        funcOfEntry_.emplace(e, funcs_.size());
        funcs_.push_back(FunctionInfo{});
        funcs_.back().entryInstr = e;
    }
    const InstrIndex mainEntry = cfg_.blocks[cfg_.entryBlock].first;
    ASBR_ENSURE(funcOfEntry_.count(mainEntry) != 0,
                "WcetEngine: program entry is not a function entry");
    mainFunc_ = funcOfEntry_.at(mainEntry);
    for (std::size_t f = 0; f < funcs_.size(); ++f) buildFunction(f);

    // Transitive callee-clobber masks (monotone fixpoint; recursion simply
    // converges to the union).
    for (bool changed = true; changed;) {
        changed = false;
        for (FunctionInfo& fi : funcs_) {
            std::uint32_t mask = fi.regsWritten;
            for (const auto& [block, callee] : fi.calls)
                mask |= funcs_[callee].regsWritten;
            if (mask != fi.regsWritten) {
                fi.regsWritten = mask;
                changed = true;
            }
        }
    }

    // Loop bounds: annotation first, then interval inference with the
    // callee clobber effects of any call inside the body.
    for (FunctionInfo& fi : funcs_) {
        fi.loopBounds.resize(fi.forest.loops.size());
        for (std::size_t li = 0; li < fi.forest.loops.size(); ++li) {
            const Loop& loop = fi.forest.loops[li];
            std::uint32_t clobber = 0;
            for (const auto& [block, callee] : fi.calls)
                if (loop.contains(block)) clobber |= funcs_[callee].regsWritten;
            for (const std::size_t lb : loop.blocks) {
                const BasicBlock& b = cfg_.blocks[fi.globalBlocks[lb]];
                for (InstrIndex i = b.first; i <= b.last; ++i)
                    // A resolved jalr's clobber is the union of its callees'
                    // masks, already collected through fi.calls above.
                    if (cfg_.program->code[i].op == Op::kJalr &&
                        !isResolvedCall(i))
                        clobber = ~0u;
                if (cfg_.blocks[fi.globalBlocks[lb]].endsInUnresolvedIndirect)
                    clobber = ~0u;
            }
            if (const auto ann =
                    annotatedLoopBound(cfg_, loop, fi.globalBlocks)) {
                fi.loopBounds[li] = {*ann, BoundSource::kAnnotation};
            } else if (const auto inf =
                           inferLoopBound(cfg_, va_, loop, fi.doms,
                                          fi.globalBlocks, clobber)) {
                fi.loopBounds[li] = {*inf, BoundSource::kInferred};
            }
        }
    }
    rebuildRecords();
}

const ResolvedIndirect* WcetEngine::resolutionAt(InstrIndex i) const {
    if (!resolved_) return nullptr;
    const auto it = resolved_->find(i);
    return it == resolved_->end() ? nullptr : &it->second;
}

bool WcetEngine::isResolvedCall(InstrIndex i) const {
    const ResolvedIndirect* r = resolutionAt(i);
    return r != nullptr && r->isCall;
}

void WcetEngine::buildFunction(std::size_t f) {
    FunctionInfo& fi = funcs_[f];
    // A pc can carry several call edges (resolved multi-target jalr).
    std::map<InstrIndex, std::vector<InstrIndex>> callTarget;
    for (const CallSite& cs : cfg_.callSites)
        callTarget[cs.pc].push_back(cs.callee);

    const std::size_t entryBlock = cfg_.blockOf[fi.entryInstr];
    std::map<std::size_t, std::size_t> globalToLocal;
    std::vector<std::vector<std::size_t>> localSuccs;
    std::vector<std::size_t> work{entryBlock};
    globalToLocal.emplace(entryBlock, 0);
    fi.globalBlocks.push_back(entryBlock);
    localSuccs.emplace_back();

    // Breadth-first discovery over *intraprocedural* successors: calls step
    // to their return point, returns end the walk.
    for (std::size_t w = 0; w < work.size(); ++w) {
        const std::size_t g = work[w];
        const std::size_t local = globalToLocal.at(g);
        const BasicBlock& block = cfg_.blocks[g];
        const Instruction& last = cfg_.program->code[block.last];
        std::vector<std::size_t> succs;
        if (block.endsInUnresolvedIndirect) {
            fi.hasIndirect = true;
        } else if (last.op == Op::kJal || last.op == Op::kJalr) {
            if (last.op == Op::kJalr && !isResolvedCall(block.last)) {
                fi.hasIndirect = true;
            } else if (const auto it = callTarget.find(block.last);
                       it != callTarget.end()) {
                // jal, or value-set-resolved jalr: one call edge per
                // possible callee (compute() charges the block the maximum
                // callee bound).
                for (const InstrIndex callee : it->second)
                    fi.calls.emplace_back(local, funcOfEntry_.at(callee));
            } else {
                fi.hasIndirect = true;  // jal outside text
            }
            if (block.last + 1 < cfg_.numInstructions())
                succs.push_back(cfg_.blockOf[block.last + 1]);
        } else if (last.op == Op::kJr) {
            if (const ResolvedIndirect* r = resolutionAt(block.last);
                r && !r->isCall) {
                // Resolved computed goto: stays inside the function.
                for (const InstrIndex t : r->targets)
                    succs.push_back(cfg_.blockOf[t]);
            }
            // else: function exit, no intraprocedural successor.
        } else {
            succs = block.succs;
        }
        for (const std::size_t s : succs) {
            const auto [it, inserted] = globalToLocal.emplace(s, work.size());
            if (inserted) {
                work.push_back(s);
                fi.globalBlocks.push_back(s);
                localSuccs.emplace_back();
            }
            localSuccs[local].push_back(it->second);
        }
    }

    fi.local.program = cfg_.program;
    fi.local.entryBlock = 0;
    fi.local.blocks.resize(fi.globalBlocks.size());
    for (std::size_t l = 0; l < fi.globalBlocks.size(); ++l) {
        BasicBlock& lb = fi.local.blocks[l];
        const BasicBlock& gb = cfg_.blocks[fi.globalBlocks[l]];
        lb.first = gb.first;
        lb.last = gb.last;
        lb.succs = localSuccs[l];
        for (const std::size_t s : lb.succs)
            fi.local.blocks[s].preds.push_back(l);
    }
    fi.doms = computeDominators(fi.local);
    fi.forest = computeLoops(fi.local, fi.doms);

    for (const std::size_t g : fi.globalBlocks) {
        const BasicBlock& b = cfg_.blocks[g];
        for (InstrIndex i = b.first; i <= b.last; ++i)
            if (const auto d = destReg(cfg_.program->code[i]))
                fi.regsWritten |= 1u << *d;
    }
    if (fi.hasIndirect) fi.regsWritten = ~0u;
}

void WcetEngine::rebuildRecords() {
    std::map<std::uint32_t, LoopRecord> byHead;
    for (const FunctionInfo& fi : funcs_) {
        for (std::size_t li = 0; li < fi.forest.loops.size(); ++li) {
            const Loop& loop = fi.forest.loops[li];
            const std::size_t headGlobal = fi.globalBlocks[loop.head];
            const std::uint32_t headPc = cfg_.pcOf(cfg_.blocks[headGlobal].first);
            std::vector<std::uint32_t> pcs;
            for (const std::size_t lb : loop.blocks) {
                const BasicBlock& b = cfg_.blocks[fi.globalBlocks[lb]];
                for (InstrIndex i = b.first; i <= b.last; ++i)
                    pcs.push_back(cfg_.pcOf(i));
            }
            std::sort(pcs.begin(), pcs.end());
            const LoopBound& bound = fi.loopBounds[li];
            auto [it, inserted] = byHead.emplace(
                headPc, LoopRecord{headPc, cfg_.program->sourceLine(headPc),
                                   loop.depth, bound, std::move(pcs)});
            if (!inserted) {
                // The same head reached from several function entries
                // (shared code): merge conservatively — unbounded wins,
                // otherwise the larger bound.
                LoopRecord& r = it->second;
                if (!bound.bounded() || !r.bound.bounded()) {
                    if (!bound.bounded()) r.bound = LoopBound{};
                } else if (bound.iterations > r.bound.iterations) {
                    r.bound = bound;
                }
                r.depth = std::max(r.depth, loop.depth);
                std::vector<std::uint32_t> merged;
                std::set_union(r.memberPcs.begin(), r.memberPcs.end(),
                               pcs.begin(), pcs.end(),
                               std::back_inserter(merged));
                r.memberPcs = std::move(merged);
            }
        }
    }
    records_.clear();
    for (auto& [pc, record] : byHead) records_.push_back(std::move(record));
}

void WcetEngine::applyObservedBounds(
    const std::map<std::uint32_t, std::uint64_t>& observed) {
    for (FunctionInfo& fi : funcs_) {
        for (std::size_t li = 0; li < fi.forest.loops.size(); ++li) {
            if (fi.loopBounds[li].bounded()) continue;
            const std::size_t headGlobal =
                fi.globalBlocks[fi.forest.loops[li].head];
            const std::uint32_t headPc =
                cfg_.pcOf(cfg_.blocks[headGlobal].first);
            const auto it = observed.find(headPc);
            if (it == observed.end()) continue;
            // 0 means the head never executed under the measured input; one
            // head execution keeps the loop formula well-defined.
            fi.loopBounds[li] = {std::max<std::uint64_t>(it->second, 1),
                                 BoundSource::kProfile};
        }
    }
    rebuildRecords();
}

bool WcetEngine::callOrder(std::vector<std::size_t>& topo,
                           std::string& reason) const {
    // Iterative DFS from main; post-order emits callees before callers.
    enum : char { kWhite, kGrey, kBlack };
    std::vector<char> color(funcs_.size(), kWhite);
    std::vector<std::pair<std::size_t, std::size_t>> stack;  // (func, call idx)
    stack.emplace_back(mainFunc_, 0);
    color[mainFunc_] = kGrey;
    while (!stack.empty()) {
        auto& [f, i] = stack.back();
        if (i < funcs_[f].calls.size()) {
            const std::size_t callee = funcs_[f].calls[i++].second;
            if (color[callee] == kGrey) {
                reason = "recursive call graph (function at " +
                         hexPc(cfg_.pcOf(funcs_[callee].entryInstr)) + ")";
                return false;
            }
            if (color[callee] == kWhite) {
                color[callee] = kGrey;
                stack.emplace_back(callee, 0);
            }
            continue;
        }
        color[f] = kBlack;
        topo.push_back(f);
        stack.pop_back();
    }
    return true;
}

WcetResult WcetEngine::compute(
    const std::set<std::uint32_t>& foldedPcs) const {
    WcetResult result;
    if (funcs_.empty()) {
        result.reason = "empty program";
        return result;
    }
    std::vector<std::size_t> topo;
    if (!callOrder(topo, result.reason)) return result;

    std::vector<std::uint64_t> funcWcet(funcs_.size(), 0);
    std::vector<std::vector<std::uint64_t>> mults(funcs_.size());

    for (const std::size_t f : topo) {
        const FunctionInfo& fi = funcs_[f];
        if (fi.hasIndirect) {
            result.reason = "indirect control flow in function at " +
                            hexPc(cfg_.pcOf(fi.entryInstr));
            return result;
        }
        for (std::size_t li = 0; li < fi.forest.loops.size(); ++li) {
            if (fi.loopBounds[li].bounded()) continue;
            const std::size_t headGlobal =
                fi.globalBlocks[fi.forest.loops[li].head];
            result.reason =
                "unbounded loop at " +
                hexPc(cfg_.pcOf(cfg_.blocks[headGlobal].first)) +
                " (no annotation, inference or profile bound)";
            return result;
        }

        const std::size_t n = fi.globalBlocks.size();
        std::vector<std::uint64_t> weight(n);
        for (std::size_t l = 0; l < n; ++l)
            weight[l] = blockCost(cfg_, fi.globalBlocks[l], model_, foldedPcs);
        // A block holds at most one call site; several entries for the same
        // block are the alternative callees of a resolved jalr, and the
        // worst case takes the most expensive one — not their sum.
        std::map<std::size_t, std::uint64_t> calleeMax;
        for (const auto& [block, callee] : fi.calls) {
            auto [it, fresh] = calleeMax.emplace(block, funcWcet[callee]);
            if (!fresh) it->second = std::max(it->second, funcWcet[callee]);
        }
        for (const auto& [block, w] : calleeMax)
            weight[block] = satAdd(weight[block], w);

        // Worst-case executions of each block per function invocation: the
        // product of the bounds of every enclosing loop.
        std::vector<std::uint64_t>& mult = mults[f];
        mult.assign(n, 1);
        for (std::size_t l = 0; l < n; ++l)
            for (std::size_t li = fi.forest.innermost[l]; li != kNoBlock;
                 li = fi.forest.loops[li].parent)
                mult[l] = satMul(mult[l], fi.loopBounds[li].iterations);

        // Structured longest path: contract loops innermost-first.
        std::vector<std::size_t> parent(n);
        std::iota(parent.begin(), parent.end(), 0);
        std::vector<std::vector<std::size_t>> groupNodes(n);
        for (std::size_t l = 0; l < n; ++l) groupNodes[l] = {l};

        auto repSuccs = [&](std::size_t root) {
            std::set<std::size_t> out;
            for (const std::size_t orig : groupNodes[root])
                for (const std::size_t s : fi.local.blocks[orig].succs) {
                    const std::size_t r = findRoot(parent, s);
                    if (r != root) out.insert(r);
                }
            return out;
        };

        // Longest node-weighted path over the acyclic rep graph restricted
        // to `nodes`, edges into `skipTarget` removed (back edges), from
        // `start`.  Returns false when a cycle remains.
        std::map<std::size_t, std::uint64_t> dist;
        auto longestPath = [&](const std::set<std::size_t>& nodes,
                               std::size_t start, std::size_t skipTarget) {
            dist.clear();
            std::map<std::size_t, std::vector<std::size_t>> adj;
            std::map<std::size_t, std::size_t> indeg;
            for (const std::size_t u : nodes) indeg[u] = 0;
            for (const std::size_t u : nodes)
                for (const std::size_t v : repSuccs(u))
                    if (nodes.count(v) != 0 && v != skipTarget) {
                        adj[u].push_back(v);
                        ++indeg[v];
                    }
            std::vector<std::size_t> queue;
            for (const std::size_t u : nodes)
                if (indeg[u] == 0) queue.push_back(u);
            dist[start] = weight[start];
            std::size_t processed = 0;
            for (std::size_t q = 0; q < queue.size(); ++q) {
                const std::size_t u = queue[q];
                ++processed;
                const auto du = dist.find(u);
                for (const std::size_t v : adj[u]) {
                    if (du != dist.end()) {
                        const std::uint64_t cand = satAdd(du->second, weight[v]);
                        auto [it, fresh] = dist.emplace(v, cand);
                        if (!fresh && cand > it->second) it->second = cand;
                    }
                    if (--indeg[v] == 0) queue.push_back(v);
                }
            }
            return processed == nodes.size();
        };

        std::vector<std::size_t> loopOrder(fi.forest.loops.size());
        std::iota(loopOrder.begin(), loopOrder.end(), 0);
        std::stable_sort(loopOrder.begin(), loopOrder.end(),
                         [&](std::size_t a, std::size_t b) {
                             return fi.forest.loops[a].depth >
                                    fi.forest.loops[b].depth;
                         });
        bool irreducible = false;
        for (const std::size_t li : loopOrder) {
            const Loop& loop = fi.forest.loops[li];
            const std::size_t h = findRoot(parent, loop.head);
            std::set<std::size_t> members;
            for (const std::size_t b : loop.blocks)
                members.insert(findRoot(parent, b));
            if (!longestPath(members, h, h)) {
                irreducible = true;
                break;
            }
            std::uint64_t iterCost = weight[h];
            for (const std::size_t latch : loop.latches) {
                const auto it = dist.find(findRoot(parent, latch));
                if (it != dist.end()) iterCost = std::max(iterCost, it->second);
            }
            std::uint64_t exitCost = weight[h];
            for (const std::size_t m : members) {
                const auto it = dist.find(m);
                if (it != dist.end()) exitCost = std::max(exitCost, it->second);
            }
            const std::uint64_t iterations = fi.loopBounds[li].iterations;
            const std::uint64_t total = satAdd(
                satMul(iterations > 0 ? iterations - 1 : 0, iterCost),
                exitCost);
            for (const std::size_t m : members) {
                if (m == h) continue;
                parent[m] = h;
                auto& src = groupNodes[m];
                groupNodes[h].insert(groupNodes[h].end(), src.begin(),
                                     src.end());
                src.clear();
            }
            weight[h] = total;
        }
        if (irreducible) {
            result.reason = "irreducible cycle in function at " +
                            hexPc(cfg_.pcOf(fi.entryInstr));
            return result;
        }
        std::set<std::size_t> tops;
        for (std::size_t l = 0; l < n; ++l) tops.insert(findRoot(parent, l));
        if (!longestPath(tops, findRoot(parent, 0), kNoBlock)) {
            result.reason = "irreducible control flow in function at " +
                            hexPc(cfg_.pcOf(fi.entryInstr));
            return result;
        }
        std::uint64_t best = 0;
        for (const auto& [node, d] : dist) best = std::max(best, d);
        funcWcet[f] = best;
    }

    // Worst-case invocation counts, top-down over the call graph.
    std::vector<std::uint64_t> funcExec(funcs_.size(), 0);
    funcExec[mainFunc_] = 1;
    for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
        const std::size_t f = *it;
        for (const auto& [block, callee] : funcs_[f].calls)
            funcExec[callee] = satAdd(
                funcExec[callee], satMul(funcExec[f], mults[f][block]));
    }

    // Per-branch static misprediction-cost ranking.
    std::map<std::uint32_t, BranchCostRecord> byPc;
    for (const std::size_t f : topo) {
        const FunctionInfo& fi = funcs_[f];
        for (std::size_t l = 0; l < fi.globalBlocks.size(); ++l) {
            const BasicBlock& block = cfg_.blocks[fi.globalBlocks[l]];
            if (!isCondBranch(cfg_.program->code[block.last].op)) continue;
            const std::uint32_t pc = cfg_.pcOf(block.last);
            const std::uint64_t execBound =
                satMul(funcExec[f], mults[f][l]);
            auto [it, inserted] = byPc.emplace(pc, BranchCostRecord{});
            BranchCostRecord& r = it->second;
            if (inserted) {
                r.pc = pc;
                r.sourceLine = cfg_.program->sourceLine(pc);
            }
            r.execBound = std::max(r.execBound, execBound);
        }
    }
    result.branches.reserve(byPc.size());
    for (auto& [pc, r] : byPc) {
        r.folded = foldedPcs.count(pc) != 0;
        r.unitCost = r.folded ? 0 : model_.mispredictPenalty;
        r.totalCost = satMul(r.execBound, r.unitCost);
        result.branches.push_back(r);
    }
    std::sort(result.branches.begin(), result.branches.end(),
              [](const BranchCostRecord& a, const BranchCostRecord& b) {
                  if (a.totalCost != b.totalCost)
                      return a.totalCost > b.totalCost;
                  return a.pc < b.pc;
              });

    result.bounded = true;
    result.cycles = satAdd(funcWcet[mainFunc_], model_.pipelineFillCycles);
    for (const std::size_t f : topo)
        result.functionCycles.emplace_back(cfg_.pcOf(funcs_[f].entryInstr),
                                           funcWcet[f]);
    std::sort(result.functionCycles.begin(), result.functionCycles.end());
    return result;
}

std::map<std::uint32_t, std::uint64_t> observeLoopBounds(
    const Program& program, Memory& memory,
    const std::vector<LoopRecord>& loops, std::uint64_t maxInstructions) {
    std::map<std::uint32_t, std::uint64_t> result;
    std::map<std::uint32_t, std::vector<std::size_t>> headIndex;
    for (std::size_t i = 0; i < loops.size(); ++i) {
        result[loops[i].headPc] = 0;
        headIndex[loops[i].headPc].push_back(i);
    }
    struct Episode {
        bool active = false;
        int entryDepth = 0;
        std::uint64_t count = 0;
    };
    std::vector<Episode> state(loops.size());
    std::vector<std::size_t> activeList;
    int depth = 0;

    FunctionalSim sim(program, memory);
    sim.setTraceHook([&](const Instruction& ins, const StepResult& step) {
        const std::uint32_t pc = step.pc;
        if (const auto hit = headIndex.find(pc); hit != headIndex.end()) {
            for (const std::size_t i : hit->second) {
                Episode& e = state[i];
                if (!e.active) {
                    e.active = true;
                    e.entryDepth = depth;
                    e.count = 1;
                    activeList.push_back(i);
                } else {
                    ++e.count;
                }
            }
        }
        for (std::size_t a = 0; a < activeList.size();) {
            const std::size_t i = activeList[a];
            Episode& e = state[i];
            const bool member = std::binary_search(
                loops[i].memberPcs.begin(), loops[i].memberPcs.end(), pc);
            if (!member && depth <= e.entryDepth) {
                auto& mx = result[loops[i].headPc];
                mx = std::max(mx, e.count);
                e.active = false;
                activeList[a] = activeList.back();
                activeList.pop_back();
            } else {
                ++a;
            }
        }
        if (ins.op == Op::kJal || ins.op == Op::kJalr) ++depth;
        else if (ins.op == Op::kJr) depth = std::max(0, depth - 1);
    });
    sim.run(maxInstructions);
    for (std::size_t i = 0; i < loops.size(); ++i) {
        if (!state[i].active) continue;
        auto& mx = result[loops[i].headPc];
        mx = std::max(mx, state[i].count);
    }
    return result;
}

void WcetMetrics::countLoops(const std::vector<LoopRecord>& loops) {
    loopsTotal = loops.size();
    for (const LoopRecord& loop : loops) {
        switch (loop.bound.source) {
            case BoundSource::kAnnotation: ++loopsBoundedAnnotated; break;
            case BoundSource::kInferred: ++loopsBoundedInferred; break;
            case BoundSource::kProfile: ++loopsBoundedProfiled; break;
            case BoundSource::kNone: ++loopsUnbounded; break;
        }
    }
}

void WcetMetrics::publish(MetricRegistry& registry) const {
    registry.counter("wcet.loops_total", "natural loops analyzed")
        .set(loopsTotal);
    registry
        .counter("wcet.loops_bounded_annotated",
                 "loops bounded by a .loopbound directive")
        .set(loopsBoundedAnnotated);
    registry
        .counter("wcet.loops_bounded_inferred",
                 "loops bounded by interval inference")
        .set(loopsBoundedInferred);
    registry
        .counter("wcet.loops_bounded_profiled",
                 "loops bounded only by a measured run")
        .set(loopsBoundedProfiled);
    registry
        .counter("wcet.loops_unbounded",
                 "loops with no iteration bound from any source")
        .set(loopsUnbounded);
    registry
        .counter("wcet.bound_baseline_cycles",
                 "static cycle bound without folding (0 when unbounded)")
        .set(boundBaselineCycles);
    registry
        .counter("wcet.bound_folded_cycles",
                 "static cycle bound with the fold set active (0 when "
                 "unbounded)")
        .set(boundFoldedCycles);
}

}  // namespace asbr::analysis::timing

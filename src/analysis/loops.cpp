#include "analysis/loops.hpp"

#include <algorithm>
#include <map>

namespace asbr::analysis {

bool Loop::contains(std::size_t block) const {
    return std::binary_search(blocks.begin(), blocks.end(), block);
}

bool LoopForest::inLoopHeadedAt(std::size_t head, std::size_t block) const {
    for (const Loop& loop : loops)
        if (loop.head == head) return loop.contains(block);
    return false;
}

namespace {

/// Body of the natural loop with head `head` and latch set `latches`:
/// everything that reaches a latch backwards without crossing the head.
std::vector<std::size_t> loopBody(const Cfg& cfg, std::size_t head,
                                  const std::vector<std::size_t>& latches) {
    std::vector<char> inBody(cfg.blocks.size(), 0);
    inBody[head] = 1;
    std::vector<std::size_t> stack;
    for (const std::size_t latch : latches)
        if (!inBody[latch]) {
            inBody[latch] = 1;
            stack.push_back(latch);
        }
    while (!stack.empty()) {
        const std::size_t b = stack.back();
        stack.pop_back();
        for (const std::size_t p : cfg.blocks[b].preds)
            if (!inBody[p]) {
                inBody[p] = 1;
                stack.push_back(p);
            }
    }
    std::vector<std::size_t> body;
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b)
        if (inBody[b]) body.push_back(b);
    return body;
}

/// Mark targets of retreating edges of one fixed DFS from the entry.
void markWideningPoints(const Cfg& cfg, std::vector<char>& widening) {
    const std::size_t n = cfg.blocks.size();
    if (cfg.entryBlock == kNoBlock) return;
    enum : char { kWhite = 0, kGrey = 1, kBlack = 2 };
    std::vector<char> color(n, kWhite);
    std::vector<std::pair<std::size_t, std::size_t>> stack;
    stack.emplace_back(cfg.entryBlock, 0);
    color[cfg.entryBlock] = kGrey;
    while (!stack.empty()) {
        auto& [block, next] = stack.back();
        const auto& succs = cfg.blocks[block].succs;
        if (next < succs.size()) {
            const std::size_t s = succs[next++];
            if (color[s] == kWhite) {
                color[s] = kGrey;
                stack.emplace_back(s, 0);
            } else if (color[s] == kGrey) {
                widening[s] = 1;  // retreating edge: s is on the DFS stack
            }
        } else {
            color[block] = kBlack;
            stack.pop_back();
        }
    }
}

}  // namespace

LoopForest computeLoops(const Cfg& cfg, const DominatorTree& doms) {
    LoopForest forest;
    const std::size_t n = cfg.blocks.size();
    forest.innermost.assign(n, kNoBlock);
    forest.depthOf.assign(n, 0);
    forest.wideningPoint.assign(n, 0);
    if (n == 0) return forest;
    markWideningPoints(cfg, forest.wideningPoint);

    // One natural loop per head: merge the back edges sharing a target.
    std::map<std::size_t, std::vector<std::size_t>> latchesByHead;
    for (std::size_t b = 0; b < n; ++b) {
        if (!doms.reachable(b)) continue;
        for (const std::size_t s : cfg.blocks[b].succs)
            if (doms.dominates(s, b)) latchesByHead[s].push_back(b);
    }
    for (auto& [head, latches] : latchesByHead) {
        Loop loop;
        loop.head = head;
        loop.latches = std::move(latches);
        loop.blocks = loopBody(cfg, head, loop.latches);
        forest.loops.push_back(std::move(loop));
    }

    // Outermost-first: a loop strictly containing another has a larger body
    // (ties broken by head id for determinism).
    std::sort(forest.loops.begin(), forest.loops.end(),
              [](const Loop& a, const Loop& b) {
                  if (a.blocks.size() != b.blocks.size())
                      return a.blocks.size() > b.blocks.size();
                  return a.head < b.head;
              });

    // Nesting: the parent of loop i is the smallest-bodied earlier loop that
    // contains its head; depth follows the parent chain.
    for (std::size_t i = 0; i < forest.loops.size(); ++i) {
        Loop& loop = forest.loops[i];
        // Later entries are smaller bodies, so the first containing loop
        // found scanning backwards is the closest enclosing one.
        for (std::size_t j = i; j-- > 0;) {
            if (forest.loops[j].contains(loop.head)) {
                loop.parent = j;
                break;
            }
        }
        loop.depth =
            loop.parent == kNoBlock ? 1 : forest.loops[loop.parent].depth + 1;
        for (const std::size_t b : loop.blocks) {
            forest.depthOf[b] = std::max(forest.depthOf[b], loop.depth);
            // Innermost = deepest loop covering the block; loops are visited
            // outermost-first, so the last writer wins only when deeper.
            if (forest.innermost[b] == kNoBlock ||
                forest.loops[forest.innermost[b]].depth <= loop.depth)
                forest.innermost[b] = i;
        }
    }
    return forest;
}

}  // namespace asbr::analysis

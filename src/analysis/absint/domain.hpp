// Interval x sign abstract domain over 32-bit register values.
//
// Each abstract value is the reduced product of
//   - an integer interval [lo, hi] with int64 bounds (so +-2^31 arithmetic
//     never overflows the representation), and
//   - a sign set (subset of {negative, zero, positive}).
// The two components refine each other on every construction (`normalize`):
// a sign set without `negative` lifts lo to 0, an interval entirely above
// zero drops `negative` and `zero`, and so on.  Bottom (no concrete value)
// is canonically represented by an empty interval AND an empty sign set.
//
// Transfer functions mirror `sim/exec.cpp` exactly — same wrapping addu,
// same trap-free div/rem definitions, same shift masking — because every
// verdict derived from this domain is checked against the functional ISS.
// Anything not modeled precisely falls back to a sound over-approximation
// (at worst top = any int32).
//
// Widening (for loop heads) jumps unstable bounds to the next threshold in
// a small sign-preserving ladder (-1/0/1 and the power-of-two-ish magnitudes
// common in the codecs) before giving up to the int32 extremes, so loop
// fixpoints terminate quickly without destroying the sign information the
// branch verdicts need.
#pragma once

#include <cstdint>
#include <string>

#include "isa/isa.hpp"

namespace asbr::analysis {

/// Sign-set bits.
enum : unsigned {
    kSignNeg = 1u,   ///< some value < 0
    kSignZero = 2u,  ///< value 0
    kSignPos = 4u,   ///< some value > 0
    kSignAll = kSignNeg | kSignZero | kSignPos,
};

struct AbsValue {
    std::int64_t lo = 0;
    std::int64_t hi = -1;     ///< lo > hi: empty interval (bottom)
    unsigned signs = 0;       ///< subset of kSignAll; 0: bottom

    [[nodiscard]] static AbsValue bottom() { return {}; }
    [[nodiscard]] static AbsValue top();
    [[nodiscard]] static AbsValue constant(std::int32_t v);
    [[nodiscard]] static AbsValue range(std::int64_t lo, std::int64_t hi);

    [[nodiscard]] bool isBottom() const { return lo > hi || signs == 0; }
    [[nodiscard]] bool isTop() const;
    [[nodiscard]] bool isConstant() const { return !isBottom() && lo == hi; }
    /// True when every concrete value of `other` is also described by *this.
    [[nodiscard]] bool contains(const AbsValue& other) const;
    [[nodiscard]] bool containsValue(std::int32_t v) const;
    [[nodiscard]] bool operator==(const AbsValue& other) const;

    /// Least upper bound (set union, over-approximated).
    [[nodiscard]] AbsValue join(const AbsValue& other) const;
    /// Greatest lower bound (set intersection, exact for this domain).
    [[nodiscard]] AbsValue meet(const AbsValue& other) const;
    /// Classic threshold widening: *this is the old state, `next` the new.
    [[nodiscard]] AbsValue widen(const AbsValue& next) const;

    /// "x.lo"/"[-3, 7]{-0+}" rendering for diagnostics and the DOT dump.
    [[nodiscard]] std::string str() const;
};

/// Three-valued truth of a zero-comparison over an abstract value.
enum class TriBool : std::uint8_t { kFalse, kTrue, kUnknown };

/// Evaluate `cond` over all concrete values of `v`: kTrue when the
/// condition holds for every value, kFalse when for none, else kUnknown.
/// Bottom values return kUnknown (the caller filters unreachable states).
[[nodiscard]] TriBool evalCondAbs(Cond c, const AbsValue& v);

/// The subset of `v` satisfying `cond` (used to refine branch successors);
/// bottom when no value satisfies it.
[[nodiscard]] AbsValue refineByCond(Cond c, const AbsValue& v);

/// Transfer of an R-type ALU op (exec.cpp `aluOp` semantics).
[[nodiscard]] AbsValue absAluOp(Op op, const AbsValue& a, const AbsValue& b);

/// Transfer of an I-type ALU op (exec.cpp `aluImmOp` semantics).
[[nodiscard]] AbsValue absAluImmOp(Op op, const AbsValue& a, std::int32_t imm);

/// Abstract result of a load opcode: the full range of the loaded width
/// (memory contents are not modeled).
[[nodiscard]] AbsValue absLoadResult(Op op);

}  // namespace asbr::analysis

// Forward abstract interpreter over the interprocedural CFG.
//
// Runs the interval x sign domain (absint/domain.hpp) to a fixpoint over
// `Cfg`, widening at the retreating-edge targets recorded by the loop pass
// (analysis/loops.hpp) so the ascending phase terminates on real workloads,
// then applying a short bounded narrowing phase (x := x meet F(x) in RPO)
// to claw back precision the widening jumps gave away.
//
// The entry state is precise, not top: both simulators reset to the same
// deterministic machine state (all registers 0, sp = kStackTop,
// gp = dataBase + 0x8000 — see sim/functional.cpp and sim/pipeline.cpp), so
// assuming it abstractly is sound.  Branch outgoing edges refine the tested
// register by the branch condition; a refinement to bottom proves the edge
// infeasible.  A `sys` whose v0 is provably Syscall::kExit halts the path.
//
// Outputs, all derived from the final fixpoint:
//  - a static direction verdict per conditional branch (AlwaysTaken /
//    NeverTaken / Dynamic / Unreachable) — the fold classes selection and
//    the ASBR unit consume;
//  - a feasible-edge mask used to re-run the PR 1 reaching-producer
//    analysis with infeasible edges pruned (sharper back-edge meets);
//  - lints: abstractly-unreachable blocks and provably-dead branch arms.
//
// If the iteration budget is ever exhausted (pathological irreducible
// graphs), remaining states are forced to top and `converged` is cleared;
// every verdict degrades to Dynamic, so downstream stays sound.
#pragma once

#include <array>
#include <cstddef>
#include <vector>

#include "analysis/absint/domain.hpp"
#include "analysis/cfg.hpp"
#include "analysis/loops.hpp"

namespace asbr::analysis {

/// Abstract machine state: one value per architectural register.
using RegState = std::array<AbsValue, kNumRegs>;

/// Static direction verdict for one conditional branch.
enum class BranchDirection : std::uint8_t {
    kAlwaysTaken,   ///< condition provably true whenever the branch executes
    kNeverTaken,    ///< condition provably false whenever the branch executes
    kDynamic,       ///< both directions possible (or analysis gave up)
    kUnreachable,   ///< the branch can never execute
};

[[nodiscard]] const char* branchDirectionName(BranchDirection d);

/// A provably-dead branch arm: the branch can execute, but one of its two
/// outgoing edges never can.
struct DeadArmLint {
    InstrIndex branch = 0;  ///< instruction index of the branch
    bool takenArm = false;  ///< true: the taken edge is dead; false: fall-through
};

struct ValueAnalysis {
    /// Abstract state at each block entry (bottom state: all registers
    /// bottom) — only meaningful for reachable blocks.
    std::vector<RegState> blockIn;
    /// Reachable under the *abstract* semantics (subset of graph
    /// reachability: infeasible edges and proven exits prune paths).
    std::vector<char> blockReachable;
    /// feasibleEdge[b][i]: can control ever flow along cfg.blocks[b].succs[i]?
    /// Parallel to each block's successor list.
    std::vector<std::vector<char>> feasibleEdge;
    /// Per instruction index; meaningful only at conditional branches
    /// (kUnreachable elsewhere).
    std::vector<BranchDirection> branchDir;
    /// Abstract value of the tested register at each conditional branch
    /// (bottom elsewhere); feeds diagnostics and the analysis report.
    std::vector<AbsValue> condAtBranch;

    /// Lints.
    std::vector<std::size_t> unreachableBlocks;  ///< sorted block ids
    std::vector<DeadArmLint> deadArms;           ///< sorted by branch index

    bool converged = true;     ///< false: iteration budget hit, states forced top
    std::size_t iterations = 0;  ///< block transfers executed to fixpoint

    [[nodiscard]] bool reachable(std::size_t block) const {
        return blockReachable[block] != 0;
    }
    [[nodiscard]] BranchDirection directionAt(InstrIndex idx) const {
        return branchDir[idx];
    }
};

/// Run the abstract interpreter to fixpoint.  `loops` must come from the
/// same `cfg` (its widening points gate where widening applies).
[[nodiscard]] ValueAnalysis analyzeValues(const Cfg& cfg,
                                          const LoopForest& loops);

}  // namespace asbr::analysis

// Shared abstract transfer functions and branch-edge refinement.
//
// The dense fixpoint (absint.cpp) and the sparse SCCP engine
// (analysis/ipa/sccp.cpp) must agree *exactly* on instruction semantics and
// on how a conditional branch refines the tested register (and, through the
// slt-family compare idiom, its operands) along each outgoing edge — any
// divergence would make their verdicts incomparable and the reduced product
// the verifier consumes unsound.  This header is the single home of that
// logic; both engines call into it.
#pragma once

#include "analysis/absint/absint.hpp"
#include "analysis/cfg.hpp"

namespace asbr::analysis {

/// The deterministic machine state both simulators reset to
/// (sim/functional.cpp, sim/pipeline.cpp): all registers zero except the
/// stack and global pointers.
[[nodiscard]] RegState entryRegState(const Cfg& cfg);

/// Abstract effect of one instruction.  Returns false when execution
/// provably halts here (a `sys` whose v0 must be Syscall::kExit).
bool absTransferInstruction(const Cfg& cfg, InstrIndex idx,
                            const Instruction& ins, RegState& s);

/// Walk a whole block from its entry state.  Returns false when the block
/// provably halts before its end.
bool absTransferBlock(const Cfg& cfg, std::size_t b, RegState& s);

/// How a block's terminating conditional branch refines its successors.
struct EdgeRefinement {
    bool isBranch = false;      ///< block ends in a conditional branch
    std::uint8_t condReg = 0;
    Cond cond = Cond::kEqz;
    InstrIndex targetIdx = 0;   ///< taken-successor instruction index
    InstrIndex fallthroughIdx = 0;
    // Compare origin: the tested register is a slt/slti/sltu/sltiu flag
    // computed in the same block, with neither the flag nor the compared
    // operands redefined between the compare and the branch.  mcc lowers
    // every relational test (`i < n`) to such a flag feeding beqz/bnez, so
    // refining only the 0/1 flag would lose the operand bound that keeps
    // loop-counter intervals finite.
    bool hasCmp = false;
    Op cmpOp = Op::kSlt;
    std::uint8_t cmpA = 0;      ///< left operand register
    bool cmpBIsReg = false;
    std::uint8_t cmpB = 0;      ///< right operand register (R-type compares)
    std::int32_t cmpImm = 0;    ///< right operand immediate (I-type compares)
};

[[nodiscard]] EdgeRefinement edgeRefinement(const Cfg& cfg, std::size_t b);

/// Out-state along the edge b -> succ, refined by the branch condition when
/// the edge is exclusively the taken or the fall-through arm.  Returns false
/// when the edge is infeasible (refinement emptied the tested register).
bool refineForEdge(const Cfg& cfg, const EdgeRefinement& er, std::size_t succ,
                   RegState& out);

}  // namespace asbr::analysis

#include "analysis/absint/absint.hpp"

#include <algorithm>
#include <deque>
#include <limits>

namespace asbr::analysis {

const char* branchDirectionName(BranchDirection d) {
    switch (d) {
        case BranchDirection::kAlwaysTaken: return "always_taken";
        case BranchDirection::kNeverTaken: return "never_taken";
        case BranchDirection::kDynamic: return "dynamic";
        case BranchDirection::kUnreachable: return "unreachable";
    }
    return "?";
}

namespace {

RegState bottomState() { return RegState{}; }  // AbsValue default is bottom

RegState topState() {
    RegState s;
    s.fill(AbsValue::top());
    s[reg::zero] = AbsValue::constant(0);
    return s;
}

/// The deterministic machine state both simulators reset to
/// (sim/functional.cpp, sim/pipeline.cpp): all registers zero except the
/// stack and global pointers.
RegState entryState(const Cfg& cfg) {
    RegState s;
    s.fill(AbsValue::constant(0));
    s[reg::sp] = AbsValue::constant(static_cast<std::int32_t>(kStackTop));
    s[reg::gp] = AbsValue::constant(
        static_cast<std::int32_t>(cfg.program->dataBase + 0x8000));
    return s;
}

void setReg(RegState& s, std::uint8_t rd, const AbsValue& v) {
    if (rd == reg::zero) return;  // architecturally discarded
    s[rd] = v;
}

/// Abstract effect of one instruction.  Returns false when execution
/// provably halts here (a `sys` whose v0 must be Syscall::kExit).
bool transferInstruction(const Cfg& cfg, InstrIndex idx,
                         const Instruction& ins, RegState& s) {
    const Op op = ins.op;
    if (op <= Op::kRemu) {
        setReg(s, ins.rd, absAluOp(op, s[ins.rs], s[ins.rt]));
    } else if (op >= Op::kAddiu && op <= Op::kSra) {
        setReg(s, ins.rd, absAluImmOp(op, s[ins.rs], ins.imm));
    } else if (isLoad(op)) {
        setReg(s, ins.rd, absLoadResult(op));
    } else if (op == Op::kJal) {
        setReg(s, reg::ra,
               AbsValue::constant(
                   static_cast<std::int32_t>(cfg.pcOf(idx) + kInstrBytes)));
    } else if (op == Op::kJalr) {
        setReg(s, ins.rd,
               AbsValue::constant(
                   static_cast<std::int32_t>(cfg.pcOf(idx) + kInstrBytes)));
    } else if (op == Op::kSys) {
        // exec.cpp's syscalls write no registers; kExit stops the machine.
        if (s[reg::v0] ==
            AbsValue::constant(static_cast<std::int32_t>(Syscall::kExit)))
            return false;
    }
    // Stores, branches, j, jr, nop: no register effect.
    return true;
}

/// Walk a whole block from its entry state.  Returns false when the block
/// provably halts before its end.
bool transferBlock(const Cfg& cfg, std::size_t b, RegState& s) {
    const BasicBlock& block = cfg.blocks[b];
    for (InstrIndex i = block.first; i <= block.last; ++i)
        if (!transferInstruction(cfg, i, cfg.program->code[i], s))
            return false;
    return true;
}

struct EdgeRefinement {
    bool isBranch = false;      ///< block ends in a conditional branch
    std::uint8_t condReg = 0;
    Cond cond = Cond::kEqz;
    InstrIndex targetIdx = 0;   ///< taken-successor instruction index
    InstrIndex fallthroughIdx = 0;
    // Compare origin: the tested register is a slt/slti/sltu/sltiu flag
    // computed in the same block, with neither the flag nor the compared
    // operands redefined between the compare and the branch.  mcc lowers
    // every relational test (`i < n`) to such a flag feeding beqz/bnez, so
    // refining only the 0/1 flag would lose the operand bound that keeps
    // loop-counter intervals finite.
    bool hasCmp = false;
    Op cmpOp = Op::kSlt;
    std::uint8_t cmpA = 0;      ///< left operand register
    bool cmpBIsReg = false;
    std::uint8_t cmpB = 0;      ///< right operand register (R-type compares)
    std::int32_t cmpImm = 0;    ///< right operand immediate (I-type compares)
};

EdgeRefinement edgeRefinement(const Cfg& cfg, std::size_t b) {
    EdgeRefinement er;
    const BasicBlock& block = cfg.blocks[b];
    const Instruction& last = cfg.program->code[block.last];
    if (!isCondBranch(last.op)) return er;
    er.isBranch = true;
    er.condReg = last.rs;
    er.cond = branchCond(last.op);
    er.targetIdx = static_cast<InstrIndex>(
        static_cast<std::int64_t>(block.last) + 1 + last.imm);
    er.fallthroughIdx = block.last + 1;
    if (er.condReg == reg::zero) return er;
    // Nearest in-block definition of the tested register.
    for (InstrIndex i = block.last; i-- > block.first;) {
        const Instruction& ins = cfg.program->code[i];
        const auto d = destReg(ins);
        if (!d || *d != er.condReg) continue;
        const bool rCmp = ins.op == Op::kSlt || ins.op == Op::kSltu;
        const bool iCmp = ins.op == Op::kSlti || ins.op == Op::kSltiu;
        if (!rCmp && !iCmp) break;  // defined by something else
        // Operand values must survive unchanged to the block end: the
        // compare overwrote condReg itself, and nothing between the
        // compare and the branch may redefine an operand.
        if (ins.rs == er.condReg || (rCmp && ins.rt == er.condReg)) break;
        bool clobbered = false;
        for (InstrIndex k = i + 1; k < block.last && !clobbered; ++k) {
            const auto kd = destReg(cfg.program->code[k]);
            clobbered = kd && (*kd == ins.rs || (rCmp && *kd == ins.rt));
        }
        if (clobbered) break;
        er.hasCmp = true;
        er.cmpOp = ins.op;
        er.cmpA = ins.rs;
        er.cmpBIsReg = rCmp;
        er.cmpB = ins.rt;
        er.cmpImm = ins.imm;
        break;
    }
    return er;
}

/// Refine the compare operands along an edge that fixes the truth of the
/// originating slt-family compare.  Returns false when the refinement
/// proves the edge infeasible.
bool refineCmpOperands(const EdgeRefinement& er, bool cmpTrue, RegState& out) {
    const AbsValue a = out[er.cmpA];
    const AbsValue b = er.cmpBIsReg ? out[er.cmpB]
                                    : AbsValue::constant(er.cmpImm);
    if (a.isBottom() || b.isBottom()) return true;  // nothing reliable to do
    constexpr std::int64_t kMin = std::numeric_limits<std::int32_t>::min();
    constexpr std::int64_t kMax = std::numeric_limits<std::int32_t>::max();
    const bool isUnsigned = er.cmpOp == Op::kSltu || er.cmpOp == Op::kSltiu;
    AbsValue newA = a, newB = b;
    if (isUnsigned && !er.cmpBIsReg && er.cmpImm == 1) {
        // `sltiu x, 1` is the canonical "x == 0" idiom (exec.cpp compares
        // unsigned, so only x == 0 is below 1): exact for any x.
        newA = cmpTrue ? a.meet(AbsValue::constant(0))
                       : refineByCond(Cond::kNez, a);
    } else if (isUnsigned && a.lo < 0) {
        return true;  // unsigned order diverges from signed: stay sound
    } else if (isUnsigned && er.cmpBIsReg && b.lo < 0) {
        return true;
    } else if (isUnsigned && !er.cmpBIsReg && er.cmpImm < 0) {
        return true;  // sign-extended immediate compares as a huge unsigned
    } else if (cmpTrue) {  // a < b
        newA = a.meet(AbsValue::range(kMin, b.hi - 1));
        newB = b.meet(AbsValue::range(a.lo + 1, kMax));
    } else {  // a >= b
        newA = a.meet(AbsValue::range(b.lo, kMax));
        newB = b.meet(AbsValue::range(kMin, a.hi));
    }
    if (newA.isBottom() || (er.cmpBIsReg && newB.isBottom())) return false;
    if (er.cmpA != reg::zero) out[er.cmpA] = newA;
    if (er.cmpBIsReg && er.cmpB != reg::zero) out[er.cmpB] = newB;
    return true;
}

/// Out-state along the edge b -> succ, refined by the branch condition when
/// the edge is exclusively the taken or the fall-through arm.  Returns false
/// when the edge is infeasible (refinement emptied the tested register).
bool refineForEdge(const Cfg& cfg, const EdgeRefinement& er, std::size_t succ,
                   RegState& out) {
    if (!er.isBranch) return true;
    const InstrIndex succFirst = cfg.blocks[succ].first;
    const bool isTarget = succFirst == er.targetIdx;
    const bool isFallthrough = succFirst == er.fallthroughIdx;
    if (isTarget == isFallthrough) return true;  // both arms (imm 0) or neither
    const Cond c = isTarget ? er.cond : negateCond(er.cond);
    const AbsValue refined = refineByCond(c, out[er.condReg]);
    if (refined.isBottom()) return false;
    out[er.condReg] = refined;
    if (er.hasCmp) {
        // A slt-family flag is concretely 0 or 1; when the edge condition
        // separates those two values it fixes the compare's truth and the
        // operands can be refined too.
        const bool on1 = evalCond(c, 1);
        const bool on0 = evalCond(c, 0);
        if (on1 != on0 && !refineCmpOperands(er, /*cmpTrue=*/on1, out))
            return false;
    }
    return true;
}

}  // namespace

ValueAnalysis analyzeValues(const Cfg& cfg, const LoopForest& loops) {
    ValueAnalysis va;
    const std::size_t n = cfg.blocks.size();
    const std::size_t numIns = cfg.numInstructions();
    va.blockIn.assign(n, bottomState());
    va.blockReachable.assign(n, 0);
    va.feasibleEdge.resize(n);
    for (std::size_t b = 0; b < n; ++b)
        va.feasibleEdge[b].assign(cfg.blocks[b].succs.size(), 0);
    va.branchDir.assign(numIns, BranchDirection::kUnreachable);
    va.condAtBranch.assign(numIns, AbsValue::bottom());
    if (n == 0 || cfg.entryBlock == kNoBlock) return va;

    // --- Ascending phase: worklist fixpoint with widening. -----------------
    std::deque<std::size_t> worklist;
    std::vector<char> inList(n, 0);
    auto enqueue = [&](std::size_t b) {
        if (!inList[b]) {
            inList[b] = 1;
            worklist.push_back(b);
        }
    };
    va.blockIn[cfg.entryBlock] = entryState(cfg);
    va.blockReachable[cfg.entryBlock] = 1;
    enqueue(cfg.entryBlock);

    // Generous budget; real workloads converge orders of magnitude sooner.
    // Past it, states jump straight to top: still sound, verdicts degrade
    // to Dynamic, and the loop drains because top is a fixpoint.
    const std::size_t budget = 64 * n + 256;
    bool forceTop = false;

    while (!worklist.empty()) {
        const std::size_t b = worklist.front();
        worklist.pop_front();
        inList[b] = 0;
        ++va.iterations;
        if (va.iterations > budget && !forceTop) {
            forceTop = true;
            va.converged = false;
        }

        RegState out = va.blockIn[b];
        if (!transferBlock(cfg, b, out)) continue;  // provably halts
        const EdgeRefinement er = edgeRefinement(cfg, b);
        for (const std::size_t succ : cfg.blocks[b].succs) {
            RegState edgeOut = out;
            if (!refineForEdge(cfg, er, succ, edgeOut)) continue;
            if (!va.blockReachable[succ]) {
                va.blockReachable[succ] = 1;
                va.blockIn[succ] = forceTop ? topState() : edgeOut;
                enqueue(succ);
                continue;
            }
            RegState next;
            bool changed = false;
            const bool widenHere = loops.isWideningPoint(succ);
            for (int r = 0; r < kNumRegs; ++r) {
                const AbsValue joined = va.blockIn[succ][r].join(edgeOut[r]);
                next[r] = forceTop ? (r == reg::zero ? AbsValue::constant(0)
                                                     : AbsValue::top())
                          : widenHere ? va.blockIn[succ][r].widen(joined)
                                      : joined;
                changed = changed || !(next[r] == va.blockIn[succ][r]);
            }
            if (changed) {
                va.blockIn[succ] = next;
                enqueue(succ);
            }
        }
    }

    // --- Bounded narrowing: x := x meet F(x), two RPO sweeps. --------------
    // Both operands over-approximate the concrete state set, so their
    // (exact) intersection still does; skipped when the budget was blown.
    if (va.converged) {
        const DominatorTree doms = computeDominators(cfg);
        for (int pass = 0; pass < 2; ++pass) {
            for (const std::size_t b : doms.rpo) {
                if (!va.blockReachable[b]) continue;
                RegState newIn = bottomState();
                if (b == cfg.entryBlock) newIn = entryState(cfg);
                for (const std::size_t p : cfg.blocks[b].preds) {
                    if (!va.blockReachable[p]) continue;
                    RegState out = va.blockIn[p];
                    if (!transferBlock(cfg, p, out)) continue;
                    if (!refineForEdge(cfg, edgeRefinement(cfg, p), b, out))
                        continue;
                    for (int r = 0; r < kNumRegs; ++r)
                        newIn[r] = newIn[r].join(out[r]);
                }
                for (int r = 0; r < kNumRegs; ++r)
                    va.blockIn[b][r] = va.blockIn[b][r].meet(newIn[r]);
            }
        }
    }

    // --- Derive verdicts, edge feasibility and lints from the fixpoint. ----
    for (std::size_t b = 0; b < n; ++b) {
        if (!va.blockReachable[b]) {
            va.unreachableBlocks.push_back(b);
            continue;
        }
        const BasicBlock& block = cfg.blocks[b];
        RegState s = va.blockIn[b];
        bool halted = false;
        for (InstrIndex i = block.first; i <= block.last && !halted; ++i) {
            const Instruction& ins = cfg.program->code[i];
            if (isCondBranch(ins.op)) {
                va.condAtBranch[i] = s[ins.rs];
                switch (evalCondAbs(branchCond(ins.op), s[ins.rs])) {
                    case TriBool::kTrue:
                        va.branchDir[i] = BranchDirection::kAlwaysTaken;
                        break;
                    case TriBool::kFalse:
                        va.branchDir[i] = BranchDirection::kNeverTaken;
                        break;
                    case TriBool::kUnknown:
                        va.branchDir[i] = BranchDirection::kDynamic;
                        break;
                }
            }
            halted = !transferInstruction(cfg, i, ins, s);
        }
        if (halted) continue;  // out-edges stay infeasible
        const EdgeRefinement er = edgeRefinement(cfg, b);
        for (std::size_t i = 0; i < block.succs.size(); ++i) {
            RegState edgeOut = s;
            va.feasibleEdge[b][i] =
                refineForEdge(cfg, er, block.succs[i], edgeOut) ? 1 : 0;
        }
        // Dead-arm lint: the branch executes but one arm provably never
        // does.  Needs distinct target and fall-through successors.
        if (er.isBranch && er.targetIdx != er.fallthroughIdx) {
            const InstrIndex branch = block.last;
            if (va.branchDir[branch] == BranchDirection::kAlwaysTaken)
                va.deadArms.push_back({branch, /*takenArm=*/false});
            else if (va.branchDir[branch] == BranchDirection::kNeverTaken)
                va.deadArms.push_back({branch, /*takenArm=*/true});
        }
    }
    return va;
}

}  // namespace asbr::analysis

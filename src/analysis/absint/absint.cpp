#include "analysis/absint/absint.hpp"

#include <algorithm>
#include <deque>
#include <limits>

#include "analysis/absint/refine.hpp"

namespace asbr::analysis {

const char* branchDirectionName(BranchDirection d) {
    switch (d) {
        case BranchDirection::kAlwaysTaken: return "always_taken";
        case BranchDirection::kNeverTaken: return "never_taken";
        case BranchDirection::kDynamic: return "dynamic";
        case BranchDirection::kUnreachable: return "unreachable";
    }
    return "?";
}

namespace {

RegState bottomState() { return RegState{}; }  // AbsValue default is bottom

RegState topState() {
    RegState s;
    s.fill(AbsValue::top());
    s[reg::zero] = AbsValue::constant(0);
    return s;
}

}  // namespace

ValueAnalysis analyzeValues(const Cfg& cfg, const LoopForest& loops) {
    ValueAnalysis va;
    const std::size_t n = cfg.blocks.size();
    const std::size_t numIns = cfg.numInstructions();
    va.blockIn.assign(n, bottomState());
    va.blockReachable.assign(n, 0);
    va.feasibleEdge.resize(n);
    for (std::size_t b = 0; b < n; ++b)
        va.feasibleEdge[b].assign(cfg.blocks[b].succs.size(), 0);
    va.branchDir.assign(numIns, BranchDirection::kUnreachable);
    va.condAtBranch.assign(numIns, AbsValue::bottom());
    if (n == 0 || cfg.entryBlock == kNoBlock) return va;

    // --- Ascending phase: worklist fixpoint with widening. -----------------
    std::deque<std::size_t> worklist;
    std::vector<char> inList(n, 0);
    auto enqueue = [&](std::size_t b) {
        if (!inList[b]) {
            inList[b] = 1;
            worklist.push_back(b);
        }
    };
    va.blockIn[cfg.entryBlock] = entryRegState(cfg);
    va.blockReachable[cfg.entryBlock] = 1;
    enqueue(cfg.entryBlock);

    // Generous budget; real workloads converge orders of magnitude sooner.
    // Past it, states jump straight to top: still sound, verdicts degrade
    // to Dynamic, and the loop drains because top is a fixpoint.
    const std::size_t budget = 64 * n + 256;
    bool forceTop = false;

    while (!worklist.empty()) {
        const std::size_t b = worklist.front();
        worklist.pop_front();
        inList[b] = 0;
        ++va.iterations;
        if (va.iterations > budget && !forceTop) {
            forceTop = true;
            va.converged = false;
        }

        RegState out = va.blockIn[b];
        if (!absTransferBlock(cfg, b, out)) continue;  // provably halts
        const EdgeRefinement er = edgeRefinement(cfg, b);
        for (const std::size_t succ : cfg.blocks[b].succs) {
            RegState edgeOut = out;
            if (!refineForEdge(cfg, er, succ, edgeOut)) continue;
            if (!va.blockReachable[succ]) {
                va.blockReachable[succ] = 1;
                va.blockIn[succ] = forceTop ? topState() : edgeOut;
                enqueue(succ);
                continue;
            }
            RegState next;
            bool changed = false;
            const bool widenHere = loops.isWideningPoint(succ);
            for (int r = 0; r < kNumRegs; ++r) {
                const AbsValue joined = va.blockIn[succ][r].join(edgeOut[r]);
                next[r] = forceTop ? (r == reg::zero ? AbsValue::constant(0)
                                                     : AbsValue::top())
                          : widenHere ? va.blockIn[succ][r].widen(joined)
                                      : joined;
                changed = changed || !(next[r] == va.blockIn[succ][r]);
            }
            if (changed) {
                va.blockIn[succ] = next;
                enqueue(succ);
            }
        }
    }

    // --- Bounded narrowing: x := x meet F(x), two RPO sweeps. --------------
    // Both operands over-approximate the concrete state set, so their
    // (exact) intersection still does; skipped when the budget was blown.
    if (va.converged) {
        const DominatorTree doms = computeDominators(cfg);
        for (int pass = 0; pass < 2; ++pass) {
            for (const std::size_t b : doms.rpo) {
                if (!va.blockReachable[b]) continue;
                RegState newIn = bottomState();
                if (b == cfg.entryBlock) newIn = entryRegState(cfg);
                for (const std::size_t p : cfg.blocks[b].preds) {
                    if (!va.blockReachable[p]) continue;
                    RegState out = va.blockIn[p];
                    if (!absTransferBlock(cfg, p, out)) continue;
                    if (!refineForEdge(cfg, edgeRefinement(cfg, p), b, out))
                        continue;
                    for (int r = 0; r < kNumRegs; ++r)
                        newIn[r] = newIn[r].join(out[r]);
                }
                for (int r = 0; r < kNumRegs; ++r)
                    va.blockIn[b][r] = va.blockIn[b][r].meet(newIn[r]);
            }
        }
    }

    // --- Derive verdicts, edge feasibility and lints from the fixpoint. ----
    for (std::size_t b = 0; b < n; ++b) {
        if (!va.blockReachable[b]) {
            va.unreachableBlocks.push_back(b);
            continue;
        }
        const BasicBlock& block = cfg.blocks[b];
        RegState s = va.blockIn[b];
        bool halted = false;
        for (InstrIndex i = block.first; i <= block.last && !halted; ++i) {
            const Instruction& ins = cfg.program->code[i];
            if (isCondBranch(ins.op)) {
                va.condAtBranch[i] = s[ins.rs];
                switch (evalCondAbs(branchCond(ins.op), s[ins.rs])) {
                    case TriBool::kTrue:
                        va.branchDir[i] = BranchDirection::kAlwaysTaken;
                        break;
                    case TriBool::kFalse:
                        va.branchDir[i] = BranchDirection::kNeverTaken;
                        break;
                    case TriBool::kUnknown:
                        va.branchDir[i] = BranchDirection::kDynamic;
                        break;
                }
            }
            halted = !absTransferInstruction(cfg, i, ins, s);
        }
        if (halted) continue;  // out-edges stay infeasible
        const EdgeRefinement er = edgeRefinement(cfg, b);
        for (std::size_t i = 0; i < block.succs.size(); ++i) {
            RegState edgeOut = s;
            va.feasibleEdge[b][i] =
                refineForEdge(cfg, er, block.succs[i], edgeOut) ? 1 : 0;
        }
        // Dead-arm lint: the branch executes but one arm provably never
        // does.  Needs distinct target and fall-through successors.
        if (er.isBranch && er.targetIdx != er.fallthroughIdx) {
            const InstrIndex branch = block.last;
            if (va.branchDir[branch] == BranchDirection::kAlwaysTaken)
                va.deadArms.push_back({branch, /*takenArm=*/false});
            else if (va.branchDir[branch] == BranchDirection::kNeverTaken)
                va.deadArms.push_back({branch, /*takenArm=*/true});
        }
    }
    return va;
}

}  // namespace asbr::analysis

#include "analysis/absint/domain.hpp"

#include <algorithm>
#include <limits>

namespace asbr::analysis {

namespace {

constexpr std::int64_t kI32Min = std::numeric_limits<std::int32_t>::min();
constexpr std::int64_t kI32Max = std::numeric_limits<std::int32_t>::max();

unsigned signsOfRange(std::int64_t lo, std::int64_t hi) {
    unsigned s = 0;
    if (lo < 0) s |= kSignNeg;
    if (lo <= 0 && hi >= 0) s |= kSignZero;
    if (hi > 0) s |= kSignPos;
    return s;
}

/// Mutual reduction of the two components; canonicalizes bottom.
AbsValue normalize(std::int64_t lo, std::int64_t hi, unsigned signs) {
    lo = std::max(lo, kI32Min);
    hi = std::min(hi, kI32Max);
    signs &= signsOfRange(lo, hi);
    if ((signs & kSignNeg) == 0) lo = std::max<std::int64_t>(lo, 0);
    if ((signs & kSignPos) == 0) hi = std::min<std::int64_t>(hi, 0);
    if ((signs & kSignZero) == 0) {
        if (lo == 0) lo = 1;
        if (hi == 0) hi = -1;
    }
    if (lo > hi || signs == 0) return AbsValue::bottom();
    return AbsValue{lo, hi, signs};
}

/// Smallest value of the form 2^k - 1 that is >= x (x must be >= 0).
std::int64_t maskAbove(std::int64_t x) {
    std::int64_t m = 0;
    while (m < x) m = m * 2 + 1;
    return std::min(m, kI32Max);
}

/// Threshold ladder for widening: sign boundaries plus the bit-width
/// magnitudes the codec workloads index and mask with.
constexpr std::int64_t kThresholds[] = {
    kI32Min, -65536, -256, -1, 0, 1, 16, 256, 4096, 65536, kI32Max,
};

std::int64_t widenLowTo(std::int64_t v) {
    std::int64_t best = kI32Min;
    for (const std::int64_t t : kThresholds)
        if (t <= v) best = std::max(best, t);
    return best;
}

std::int64_t widenHighTo(std::int64_t v) {
    std::int64_t best = kI32Max;
    for (const std::int64_t t : kThresholds)
        if (t >= v) best = std::min(best, t);
    return best;
}

/// Exact reimplementation of exec.cpp's aluOp for the constant x constant
/// fast path (exec.cpp keeps its version file-local).
std::int32_t concreteAlu(Op op, std::int32_t a, std::int32_t b) {
    const auto ua = static_cast<std::uint32_t>(a);
    const auto ub = static_cast<std::uint32_t>(b);
    switch (op) {
        case Op::kAddu: return static_cast<std::int32_t>(ua + ub);
        case Op::kSubu: return static_cast<std::int32_t>(ua - ub);
        case Op::kAnd: return a & b;
        case Op::kOr: return a | b;
        case Op::kXor: return a ^ b;
        case Op::kNor: return ~(a | b);
        case Op::kSlt: return a < b ? 1 : 0;
        case Op::kSltu: return ua < ub ? 1 : 0;
        case Op::kSllv: return static_cast<std::int32_t>(ua << (ub & 31u));
        case Op::kSrlv: return static_cast<std::int32_t>(ua >> (ub & 31u));
        case Op::kSrav: return a >> (ub & 31u);
        case Op::kMul:
            return static_cast<std::int32_t>(static_cast<std::int64_t>(a) *
                                             static_cast<std::int64_t>(b));
        case Op::kMulh:
            return static_cast<std::int32_t>(
                (static_cast<std::int64_t>(a) * static_cast<std::int64_t>(b)) >>
                32);
        case Op::kDiv:
            if (b == 0) return 0;
            if (a == std::numeric_limits<std::int32_t>::min() && b == -1)
                return a;
            return a / b;
        case Op::kDivu: return ub == 0 ? 0 : static_cast<std::int32_t>(ua / ub);
        case Op::kRem:
            if (b == 0) return a;
            if (a == std::numeric_limits<std::int32_t>::min() && b == -1)
                return 0;
            return a % b;
        case Op::kRemu: return ub == 0 ? a : static_cast<std::int32_t>(ua % ub);
        default: return 0;
    }
}

std::int32_t concreteAluImm(Op op, std::int32_t a, std::int32_t imm) {
    switch (op) {
        case Op::kAddiu:
            return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) +
                                             static_cast<std::uint32_t>(imm));
        case Op::kAndi: return a & imm;
        case Op::kOri: return a | imm;
        case Op::kXori: return a ^ imm;
        case Op::kSlti: return a < imm ? 1 : 0;
        case Op::kSltiu:
            return static_cast<std::uint32_t>(a) <
                           static_cast<std::uint32_t>(imm)
                       ? 1
                       : 0;
        case Op::kLui:
            return static_cast<std::int32_t>(static_cast<std::uint32_t>(imm)
                                             << 16);
        case Op::kSll:
            return static_cast<std::int32_t>(static_cast<std::uint32_t>(a)
                                             << (imm & 31));
        case Op::kSrl:
            return static_cast<std::int32_t>(static_cast<std::uint32_t>(a) >>
                                             (imm & 31));
        case Op::kSra: return a >> (imm & 31);
        default: return 0;
    }
}

/// Abstract 0/1 comparison result from possibility flags.
AbsValue boolResult(bool canFalse, bool canTrue) {
    if (canTrue && !canFalse) return AbsValue::constant(1);
    if (canFalse && !canTrue) return AbsValue::constant(0);
    return AbsValue::range(0, 1);
}

AbsValue absAdd(const AbsValue& a, const AbsValue& b) {
    const std::int64_t lo = a.lo + b.lo;
    const std::int64_t hi = a.hi + b.hi;
    if (lo < kI32Min || hi > kI32Max) return AbsValue::top();  // may wrap
    return AbsValue::range(lo, hi);
}

AbsValue absSub(const AbsValue& a, const AbsValue& b) {
    const std::int64_t lo = a.lo - b.hi;
    const std::int64_t hi = a.hi - b.lo;
    if (lo < kI32Min || hi > kI32Max) return AbsValue::top();
    return AbsValue::range(lo, hi);
}

AbsValue absSlt(const AbsValue& a, const AbsValue& b) {
    return boolResult(/*canFalse=*/a.hi >= b.lo, /*canTrue=*/a.lo < b.hi);
}

/// Signed division by a non-zero constant (trunc division is monotone).
AbsValue absDivByConst(const AbsValue& a, std::int32_t c) {
    if (c == 0) return AbsValue::constant(0);
    if (c == -1) {
        if (a.containsValue(std::numeric_limits<std::int32_t>::min()))
            return AbsValue::top();  // INT_MIN / -1 wraps
        return AbsValue::range(-a.hi, -a.lo);
    }
    const auto lo32 = static_cast<std::int32_t>(a.lo);
    const auto hi32 = static_cast<std::int32_t>(a.hi);
    if (c > 0) return AbsValue::range(lo32 / c, hi32 / c);
    return AbsValue::range(hi32 / c, lo32 / c);
}

/// Signed remainder with divisor magnitudes in [mlo, mhi], mlo >= 1.
/// The result keeps the dividend's sign and |rem| <= min(|a|, mhi - 1).
AbsValue absRemByMagnitude(const AbsValue& a, std::int64_t mhi) {
    const std::int64_t bound = mhi - 1;
    std::int64_t lo = a.lo >= 0 ? 0 : std::max(a.lo, -bound);
    std::int64_t hi = a.hi <= 0 ? 0 : std::min(a.hi, bound);
    return AbsValue::range(lo, hi);
}

}  // namespace

AbsValue AbsValue::top() { return AbsValue{kI32Min, kI32Max, kSignAll}; }

AbsValue AbsValue::constant(std::int32_t v) {
    const unsigned s = v < 0 ? kSignNeg : (v == 0 ? kSignZero : kSignPos);
    return AbsValue{v, v, s};
}

AbsValue AbsValue::range(std::int64_t lo, std::int64_t hi) {
    return normalize(lo, hi, kSignAll);
}

bool AbsValue::isTop() const {
    return lo == kI32Min && hi == kI32Max && signs == kSignAll;
}

bool AbsValue::contains(const AbsValue& other) const {
    if (other.isBottom()) return true;
    if (isBottom()) return false;
    return lo <= other.lo && hi >= other.hi && (other.signs & ~signs) == 0;
}

bool AbsValue::containsValue(std::int32_t v) const {
    if (isBottom() || v < lo || v > hi) return false;
    const unsigned s = v < 0 ? kSignNeg : (v == 0 ? kSignZero : kSignPos);
    return (signs & s) != 0;
}

bool AbsValue::operator==(const AbsValue& other) const {
    if (isBottom() && other.isBottom()) return true;
    return lo == other.lo && hi == other.hi && signs == other.signs;
}

AbsValue AbsValue::join(const AbsValue& other) const {
    if (isBottom()) return other;
    if (other.isBottom()) return *this;
    return normalize(std::min(lo, other.lo), std::max(hi, other.hi),
                     signs | other.signs);
}

AbsValue AbsValue::meet(const AbsValue& other) const {
    if (isBottom() || other.isBottom()) return bottom();
    return normalize(std::max(lo, other.lo), std::min(hi, other.hi),
                     signs & other.signs);
}

AbsValue AbsValue::widen(const AbsValue& next) const {
    if (isBottom()) return next;
    if (next.isBottom()) return *this;
    const std::int64_t wlo = next.lo >= lo ? lo : widenLowTo(next.lo);
    const std::int64_t whi = next.hi <= hi ? hi : widenHighTo(next.hi);
    return normalize(wlo, whi, signs | next.signs);
}

std::string AbsValue::str() const {
    if (isBottom()) return "_|_";
    if (isConstant()) return std::to_string(lo);
    std::string s = "[";
    s += std::to_string(lo);
    s += ",";
    s += std::to_string(hi);
    s += "]{";
    if (signs & kSignNeg) s += '-';
    if (signs & kSignZero) s += '0';
    if (signs & kSignPos) s += '+';
    return s + "}";
}

TriBool evalCondAbs(Cond c, const AbsValue& v) {
    if (v.isBottom()) return TriBool::kUnknown;
    const bool mayNeg = (v.signs & kSignNeg) != 0;
    const bool mayZero = (v.signs & kSignZero) != 0;
    const bool mayPos = (v.signs & kSignPos) != 0;
    bool canTrue = false;
    bool canFalse = false;
    switch (c) {
        case Cond::kEqz: canTrue = mayZero; canFalse = mayNeg || mayPos; break;
        case Cond::kNez: canTrue = mayNeg || mayPos; canFalse = mayZero; break;
        case Cond::kLez: canTrue = mayNeg || mayZero; canFalse = mayPos; break;
        case Cond::kGtz: canTrue = mayPos; canFalse = mayNeg || mayZero; break;
        case Cond::kLtz: canTrue = mayNeg; canFalse = mayZero || mayPos; break;
        case Cond::kGez: canTrue = mayZero || mayPos; canFalse = mayNeg; break;
    }
    if (canTrue && !canFalse) return TriBool::kTrue;
    if (canFalse && !canTrue) return TriBool::kFalse;
    return TriBool::kUnknown;
}

AbsValue refineByCond(Cond c, const AbsValue& v) {
    switch (c) {
        case Cond::kEqz: return v.meet(AbsValue::constant(0));
        case Cond::kNez:
            return v.meet(AbsValue{kI32Min, kI32Max, kSignNeg | kSignPos});
        case Cond::kLez: return v.meet(AbsValue::range(kI32Min, 0));
        case Cond::kGtz: return v.meet(AbsValue::range(1, kI32Max));
        case Cond::kLtz: return v.meet(AbsValue::range(kI32Min, -1));
        case Cond::kGez: return v.meet(AbsValue::range(0, kI32Max));
    }
    return v;
}

AbsValue absAluOp(Op op, const AbsValue& a, const AbsValue& b) {
    if (a.isBottom() || b.isBottom()) return AbsValue::bottom();
    if (a.isConstant() && b.isConstant())
        return AbsValue::constant(concreteAlu(op,
                                              static_cast<std::int32_t>(a.lo),
                                              static_cast<std::int32_t>(b.lo)));
    switch (op) {
        case Op::kAddu: return absAdd(a, b);
        case Op::kSubu: return absSub(a, b);
        case Op::kAnd:
            if (a.lo >= 0 && b.lo >= 0)
                return AbsValue::range(0, std::min(a.hi, b.hi));
            if (a.lo >= 0) return AbsValue::range(0, a.hi);
            if (b.lo >= 0) return AbsValue::range(0, b.hi);
            return AbsValue::top();
        case Op::kOr:
            if (a.lo >= 0 && b.lo >= 0)
                return AbsValue::range(std::max(a.lo, b.lo),
                                       maskAbove(std::max(a.hi, b.hi)));
            return AbsValue::top();
        case Op::kXor:
            if (a.lo >= 0 && b.lo >= 0)
                return AbsValue::range(0, maskAbove(std::max(a.hi, b.hi)));
            return AbsValue::top();
        case Op::kNor:
            // ~(a|b) of non-negative operands is strictly negative.
            if (a.lo >= 0 && b.lo >= 0) return AbsValue::range(kI32Min, -1);
            return AbsValue::top();
        case Op::kSlt: return absSlt(a, b);
        case Op::kSltu:
            // Unsigned order coincides with signed order on non-negatives.
            if (a.lo >= 0 && b.lo >= 0) return absSlt(a, b);
            return AbsValue::range(0, 1);
        case Op::kSllv:
            if (b.isConstant())
                return absAluImmOp(Op::kSll, a,
                                   static_cast<std::int32_t>(b.lo));
            return AbsValue::top();
        case Op::kSrlv:
            if (b.isConstant())
                return absAluImmOp(Op::kSrl, a,
                                   static_cast<std::int32_t>(b.lo));
            return AbsValue::top();
        case Op::kSrav: {
            if (b.isConstant())
                return absAluImmOp(Op::kSra, a,
                                   static_cast<std::int32_t>(b.lo));
            // Arithmetic shifts move values toward 0/-1 but never across zero.
            const std::int64_t lo = a.lo < 0 ? a.lo : 0;
            const std::int64_t hi = a.hi >= 0 ? a.hi : -1;
            return AbsValue::range(lo, hi);
        }
        case Op::kMul: {
            const std::int64_t p[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo,
                                       a.hi * b.hi};
            const auto [mn, mx] = std::minmax_element(std::begin(p),
                                                      std::end(p));
            if (*mn < kI32Min || *mx > kI32Max) return AbsValue::top();
            return AbsValue::range(*mn, *mx);
        }
        case Op::kMulh: {
            // (a*b) >> 32 over int64 products is exact and monotone in a*b.
            const std::int64_t p[4] = {a.lo * b.lo, a.lo * b.hi, a.hi * b.lo,
                                       a.hi * b.hi};
            const auto [mn, mx] = std::minmax_element(std::begin(p),
                                                      std::end(p));
            return AbsValue::range(*mn >> 32, *mx >> 32);
        }
        case Op::kDiv:
            if (b.isConstant())
                return absDivByConst(a, static_cast<std::int32_t>(b.lo));
            if (b.lo > 0)
                return absDivByConst(a, static_cast<std::int32_t>(b.lo))
                    .join(absDivByConst(a, static_cast<std::int32_t>(b.hi)));
            return AbsValue::top();
        case Op::kDivu:
            if (a.lo >= 0 && b.isConstant() && b.lo >= 0)
                return absDivByConst(a, static_cast<std::int32_t>(b.lo));
            if (a.lo >= 0) return AbsValue::range(0, a.hi);  // b=0 gives 0
            return AbsValue::top();
        case Op::kRem:
            if (b.isConstant()) {
                const auto c = static_cast<std::int32_t>(b.lo);
                if (c == 0) return a;  // rem-by-zero is the identity
                const std::int64_t mag =
                    c == std::numeric_limits<std::int32_t>::min()
                        ? -static_cast<std::int64_t>(c)
                        : std::abs(static_cast<std::int64_t>(c));
                if (mag == 1) return AbsValue::constant(0);
                return absRemByMagnitude(a, mag);
            }
            if (b.lo > 0) return absRemByMagnitude(a, b.hi);
            return AbsValue::top();
        case Op::kRemu:
            if (b.isConstant() && b.lo == 0) return a;
            if (a.lo >= 0 && b.lo > 0)
                return absRemByMagnitude(a, b.hi);
            if (a.lo >= 0) return AbsValue::range(0, a.hi);  // b=0 gives a
            return AbsValue::top();
        default: return AbsValue::top();
    }
}

AbsValue absAluImmOp(Op op, const AbsValue& a, std::int32_t imm) {
    if (a.isBottom()) return AbsValue::bottom();
    if (a.isConstant())
        return AbsValue::constant(
            concreteAluImm(op, static_cast<std::int32_t>(a.lo), imm));
    switch (op) {
        case Op::kAddiu: return absAdd(a, AbsValue::constant(imm));
        case Op::kAndi:
            if (imm >= 0)
                return a.lo >= 0
                           ? AbsValue::range(0, std::min<std::int64_t>(a.hi,
                                                                       imm))
                           : AbsValue::range(0, imm);
            if (a.lo >= 0) return AbsValue::range(0, a.hi);
            return AbsValue::top();
        case Op::kOri:
            if (imm >= 0 && a.lo >= 0)
                return AbsValue::range(std::max<std::int64_t>(a.lo, imm),
                                       maskAbove(std::max<std::int64_t>(a.hi,
                                                                        imm)));
            // OR with a negative mask sets the sign bit and only sets bits,
            // so (unsigned-monotone on negatives) the result is in [imm, -1].
            if (imm < 0) return AbsValue::range(imm, -1);
            return AbsValue::top();
        case Op::kXori:
            if (imm >= 0 && a.lo >= 0)
                return AbsValue::range(0, maskAbove(std::max<std::int64_t>(
                                              a.hi, imm)));
            return AbsValue::top();
        case Op::kSlti: return absSlt(a, AbsValue::constant(imm));
        case Op::kSltiu:
            if (a.lo >= 0 && imm >= 0) return absSlt(a, AbsValue::constant(imm));
            return AbsValue::range(0, 1);
        case Op::kLui:
            return AbsValue::constant(static_cast<std::int32_t>(
                static_cast<std::uint32_t>(imm) << 16));
        case Op::kSll: {
            const int s = imm & 31;
            const std::int64_t lo = a.lo << s;
            const std::int64_t hi = a.hi << s;
            if (lo < kI32Min || hi > kI32Max) return AbsValue::top();
            return AbsValue::range(lo, hi);
        }
        case Op::kSrl: {
            const int s = imm & 31;
            if (s == 0) return a;
            if (a.lo >= 0) return AbsValue::range(a.lo >> s, a.hi >> s);
            if (a.hi < 0)  // all negative: unsigned-monotone
                return AbsValue::range(
                    static_cast<std::uint32_t>(a.lo) >> s,
                    static_cast<std::uint32_t>(a.hi) >> s);
            return AbsValue::range(0, 0xFFFF'FFFFu >> s);
        }
        case Op::kSra: return AbsValue::range(a.lo >> (imm & 31),
                                              a.hi >> (imm & 31));
        default: return AbsValue::top();
    }
}

AbsValue absLoadResult(Op op) {
    switch (op) {
        case Op::kLb: return AbsValue::range(-128, 127);
        case Op::kLbu: return AbsValue::range(0, 255);
        case Op::kLh: return AbsValue::range(-32768, 32767);
        case Op::kLhu: return AbsValue::range(0, 65535);
        default: return AbsValue::top();  // kLw
    }
}

}  // namespace asbr::analysis

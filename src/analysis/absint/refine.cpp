#include "analysis/absint/refine.hpp"

#include <limits>

namespace asbr::analysis {

namespace {

void setReg(RegState& s, std::uint8_t rd, const AbsValue& v) {
    if (rd == reg::zero) return;  // architecturally discarded
    s[rd] = v;
}

/// Refine the compare operands along an edge that fixes the truth of the
/// originating slt-family compare.  Returns false when the refinement
/// proves the edge infeasible.
bool refineCmpOperands(const EdgeRefinement& er, bool cmpTrue, RegState& out) {
    const AbsValue a = out[er.cmpA];
    const AbsValue b = er.cmpBIsReg ? out[er.cmpB]
                                    : AbsValue::constant(er.cmpImm);
    if (a.isBottom() || b.isBottom()) return true;  // nothing reliable to do
    constexpr std::int64_t kMin = std::numeric_limits<std::int32_t>::min();
    constexpr std::int64_t kMax = std::numeric_limits<std::int32_t>::max();
    const bool isUnsigned = er.cmpOp == Op::kSltu || er.cmpOp == Op::kSltiu;
    AbsValue newA = a, newB = b;
    if (isUnsigned && !er.cmpBIsReg && er.cmpImm == 1) {
        // `sltiu x, 1` is the canonical "x == 0" idiom (exec.cpp compares
        // unsigned, so only x == 0 is below 1): exact for any x.
        newA = cmpTrue ? a.meet(AbsValue::constant(0))
                       : refineByCond(Cond::kNez, a);
    } else if (isUnsigned && a.lo < 0) {
        return true;  // unsigned order diverges from signed: stay sound
    } else if (isUnsigned && er.cmpBIsReg && b.lo < 0) {
        return true;
    } else if (isUnsigned && !er.cmpBIsReg && er.cmpImm < 0) {
        return true;  // sign-extended immediate compares as a huge unsigned
    } else if (cmpTrue) {  // a < b
        newA = a.meet(AbsValue::range(kMin, b.hi - 1));
        newB = b.meet(AbsValue::range(a.lo + 1, kMax));
    } else {  // a >= b
        newA = a.meet(AbsValue::range(b.lo, kMax));
        newB = b.meet(AbsValue::range(kMin, a.hi));
    }
    if (newA.isBottom() || (er.cmpBIsReg && newB.isBottom())) return false;
    if (er.cmpA != reg::zero) out[er.cmpA] = newA;
    if (er.cmpBIsReg && er.cmpB != reg::zero) out[er.cmpB] = newB;
    return true;
}

}  // namespace

RegState entryRegState(const Cfg& cfg) {
    RegState s;
    s.fill(AbsValue::constant(0));
    s[reg::sp] = AbsValue::constant(static_cast<std::int32_t>(kStackTop));
    s[reg::gp] = AbsValue::constant(
        static_cast<std::int32_t>(cfg.program->dataBase + 0x8000));
    return s;
}

bool absTransferInstruction(const Cfg& cfg, InstrIndex idx,
                            const Instruction& ins, RegState& s) {
    const Op op = ins.op;
    if (op <= Op::kRemu) {
        setReg(s, ins.rd, absAluOp(op, s[ins.rs], s[ins.rt]));
    } else if (op >= Op::kAddiu && op <= Op::kSra) {
        setReg(s, ins.rd, absAluImmOp(op, s[ins.rs], ins.imm));
    } else if (isLoad(op)) {
        setReg(s, ins.rd, absLoadResult(op));
    } else if (op == Op::kJal) {
        setReg(s, reg::ra,
               AbsValue::constant(
                   static_cast<std::int32_t>(cfg.pcOf(idx) + kInstrBytes)));
    } else if (op == Op::kJalr) {
        setReg(s, ins.rd,
               AbsValue::constant(
                   static_cast<std::int32_t>(cfg.pcOf(idx) + kInstrBytes)));
    } else if (op == Op::kSys) {
        // exec.cpp's syscalls write no registers; kExit stops the machine.
        if (s[reg::v0] ==
            AbsValue::constant(static_cast<std::int32_t>(Syscall::kExit)))
            return false;
    }
    // Stores, branches, j, jr, nop: no register effect.
    return true;
}

bool absTransferBlock(const Cfg& cfg, std::size_t b, RegState& s) {
    const BasicBlock& block = cfg.blocks[b];
    for (InstrIndex i = block.first; i <= block.last; ++i)
        if (!absTransferInstruction(cfg, i, cfg.program->code[i], s))
            return false;
    return true;
}

EdgeRefinement edgeRefinement(const Cfg& cfg, std::size_t b) {
    EdgeRefinement er;
    const BasicBlock& block = cfg.blocks[b];
    const Instruction& last = cfg.program->code[block.last];
    if (!isCondBranch(last.op)) return er;
    er.isBranch = true;
    er.condReg = last.rs;
    er.cond = branchCond(last.op);
    er.targetIdx = static_cast<InstrIndex>(
        static_cast<std::int64_t>(block.last) + 1 + last.imm);
    er.fallthroughIdx = block.last + 1;
    if (er.condReg == reg::zero) return er;
    // Nearest in-block definition of the tested register.
    for (InstrIndex i = block.last; i-- > block.first;) {
        const Instruction& ins = cfg.program->code[i];
        const auto d = destReg(ins);
        if (!d || *d != er.condReg) continue;
        const bool rCmp = ins.op == Op::kSlt || ins.op == Op::kSltu;
        const bool iCmp = ins.op == Op::kSlti || ins.op == Op::kSltiu;
        if (!rCmp && !iCmp) break;  // defined by something else
        // Operand values must survive unchanged to the block end: the
        // compare overwrote condReg itself, and nothing between the
        // compare and the branch may redefine an operand.
        if (ins.rs == er.condReg || (rCmp && ins.rt == er.condReg)) break;
        bool clobbered = false;
        for (InstrIndex k = i + 1; k < block.last && !clobbered; ++k) {
            const auto kd = destReg(cfg.program->code[k]);
            clobbered = kd && (*kd == ins.rs || (rCmp && *kd == ins.rt));
        }
        if (clobbered) break;
        er.hasCmp = true;
        er.cmpOp = ins.op;
        er.cmpA = ins.rs;
        er.cmpBIsReg = rCmp;
        er.cmpB = ins.rt;
        er.cmpImm = ins.imm;
        break;
    }
    return er;
}

bool refineForEdge(const Cfg& cfg, const EdgeRefinement& er, std::size_t succ,
                   RegState& out) {
    if (!er.isBranch) return true;
    const InstrIndex succFirst = cfg.blocks[succ].first;
    const bool isTarget = succFirst == er.targetIdx;
    const bool isFallthrough = succFirst == er.fallthroughIdx;
    if (isTarget == isFallthrough) return true;  // both arms (imm 0) or neither
    const Cond c = isTarget ? er.cond : negateCond(er.cond);
    const AbsValue refined = refineByCond(c, out[er.condReg]);
    if (refined.isBottom()) return false;
    out[er.condReg] = refined;
    if (er.hasCmp) {
        // A slt-family flag is concretely 0 or 1; when the edge condition
        // separates those two values it fixes the compare's truth and the
        // operands can be refined too.
        const bool on1 = evalCond(c, 1);
        const bool on0 = evalCond(c, 0);
        if (on1 != on0 && !refineCmpOperands(er, /*cmpTrue=*/on1, out))
            return false;
    }
    return true;
}

}  // namespace asbr::analysis

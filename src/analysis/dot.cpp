#include "analysis/dot.hpp"

#include <algorithm>
#include <string>

#include "isa/disasm.hpp"

namespace asbr::analysis {

namespace {

/// Fill shade by loop depth: white outside loops, darkening per level.
const char* depthFill(std::size_t depth) {
    static const char* const kShades[] = {"white", "#e8f0fe", "#c6dafc",
                                          "#a8c7fa", "#8ab4f8"};
    return kShades[std::min<std::size_t>(depth, 4)];
}

const char* verdictColor(FoldLegality v) {
    switch (v) {
        case FoldLegality::kProvablySafe: return "forestgreen";
        case FoldLegality::kSafeOnProfiledPaths: return "darkorange";
        case FoldLegality::kIllegal: return "red3";
    }
    return "black";
}

std::string escape(const std::string& s) {
    std::string out;
    for (const char c : s) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

}  // namespace

void dumpCfgDot(std::ostream& os, const FoldLegalityVerifier& verifier,
                const VerifyConfig& config) {
    const Cfg& cfg = verifier.cfg();
    const LoopForest& loops = verifier.loops();
    const ValueAnalysis& va = verifier.values();
    const Program& program = *cfg.program;

    os << "digraph cfg {\n"
       << "  node [shape=box, fontname=\"monospace\", fontsize=10];\n"
       << "  edge [fontname=\"monospace\", fontsize=9];\n";
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        const BasicBlock& block = cfg.blocks[b];
        const Instruction& last = program.code[block.last];
        std::string label = "B";
        label += std::to_string(b);
        label += "\\n0x";
        {
            char buf[16];
            std::snprintf(buf, sizeof buf, "%x", cfg.pcOf(block.first));
            label += buf;
            std::snprintf(buf, sizeof buf, "%x", cfg.pcOf(block.last));
            label += "..0x";
            label += buf;
        }
        if (loops.depthOf[b] > 0)
            label += "\\nloop depth " + std::to_string(loops.depthOf[b]);

        std::string color = "black";
        std::string style = "filled";
        int peripheries = 1;
        if (!va.reachable(b)) {
            color = "gray50";
            style = "filled,dashed";
        } else if (isCondBranch(last.op)) {
            const BranchVerdict bv =
                verifier.verdictFor(cfg.pcOf(block.last), config);
            label += "\\n" + escape(disassemble(last)) + "\\n" +
                     branchDirectionName(bv.direction) + " / " +
                     foldLegalityName(bv.verdict);
            color = verdictColor(bv.verdict);
            if (bv.staticallyDecided()) peripheries = 2;
        }
        os << "  b" << b << " [label=\"" << label << "\", color=" << color
           << ", fillcolor=\"" << depthFill(loops.depthOf[b]) << "\", style=\""
           << style << "\", peripheries=" << peripheries << "];\n";
    }
    for (std::size_t b = 0; b < cfg.blocks.size(); ++b) {
        const BasicBlock& block = cfg.blocks[b];
        const Instruction& last = program.code[block.last];
        const bool branches = isCondBranch(last.op);
        const InstrIndex target =
            branches ? static_cast<InstrIndex>(
                           static_cast<std::int64_t>(block.last) + 1 + last.imm)
                     : 0;
        for (std::size_t i = 0; i < block.succs.size(); ++i) {
            const std::size_t s = block.succs[i];
            os << "  b" << b << " -> b" << s;
            std::string attrs;
            if (branches) {
                const InstrIndex succFirst = cfg.blocks[s].first;
                if (succFirst == target && succFirst != block.last + 1)
                    attrs = "label=\"T\"";
                else if (succFirst == block.last + 1 && succFirst != target)
                    attrs = "label=\"F\"";
            }
            if (va.reachable(b) && va.feasibleEdge[b][i] == 0) {
                if (!attrs.empty()) attrs += ", ";
                attrs += "style=dashed, color=red3";
            }
            if (!attrs.empty()) os << " [" << attrs << "]";
            os << ";\n";
        }
    }
    os << "}\n";
}

}  // namespace asbr::analysis

// Reaching-producer dataflow analysis — the static analogue of the BDT
// validity counter.
//
// For every program point and architectural register the analysis computes
// the *minimum over all CFG paths from the program entry* of the distance,
// in executed instructions, between the last writer of the register and the
// point — exactly the quantity the profiler measures dynamically
// (`profile/profiler.cpp`: branch index minus last-def index).  A branch is
// statically fold-legal at threshold T when the distance of its condition
// register at the branch is >= T on every path: the producer has then
// always cleared the BDT update stage by the time the branch fetches, so
// the validity counter is provably zero.
//
// Lattice: per register a saturating distance in [1, kFarAway], meet = min,
// kFarAway doubling as "no producer on any path" (machine-reset registers
// and r0, which swallows writes).  The transfer of one instruction
// increments every distance (saturating) and resets its destination
// register to 1, mirroring the dynamic index arithmetic.  Distances only
// decrease across meets and are bounded below, so the fixpoint terminates.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "analysis/cfg.hpp"

namespace asbr::analysis {

/// Saturating def-to-use distance in instructions.
using Dist = std::uint8_t;

/// Saturation value: "at least this far" / "no producer on any path".
inline constexpr Dist kFarAway = 255;

/// Per-register distances at one program point.
using RegDistances = std::array<Dist, kNumRegs>;

/// Transfer of one instruction: age every register, then reset the
/// destination (writes to r0 are architecturally discarded and do not
/// count as production — see exec.cpp).
void applyTransfer(const Instruction& ins, RegDistances& d);

struct ReachingProducers {
    /// Distances at the entry of each block (meet over predecessor exits).
    std::vector<RegDistances> blockIn;
    /// Blocks reachable from the program entry; unreachable blocks keep the
    /// all-kFarAway state (they never execute, so any fold is trivially
    /// legal there).
    std::vector<char> blockReachable;

    [[nodiscard]] bool reachable(std::size_t block) const {
        return blockReachable[block] != 0;
    }
};

/// Run the min-distance fixpoint over the CFG.
[[nodiscard]] ReachingProducers computeReachingProducers(const Cfg& cfg);

/// feasibleEdge[b][i] gates cfg.blocks[b].succs[i]; an empty mask means
/// "all edges feasible" (identical to the overload above).
using EdgeMask = std::vector<std::vector<char>>;

/// Same fixpoint, but edges proven infeasible by the value analysis
/// (analysis/absint) are pruned.  Pruning can only *raise* minimum
/// distances, so every verdict derived from the result stays a sound
/// under-approximation of the dynamic distance — it simply stops charging
/// branches for producers that sit on paths that can never execute (the
/// loop-carried back-edge case PR 1 had to reject conservatively).
[[nodiscard]] ReachingProducers computeReachingProducers(
    const Cfg& cfg, const EdgeMask& feasibleEdge);

/// Distance seen by the instruction at index `idx` reading `reg`: the
/// block-entry state advanced over the block prefix.
[[nodiscard]] Dist distanceAt(const Cfg& cfg, const ReachingProducers& rp,
                              InstrIndex idx, std::uint8_t reg);

}  // namespace asbr::analysis

#include "analysis/verify.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/timing/wcet.hpp"
#include "asbr/extract.hpp"
#include "isa/disasm.hpp"

namespace asbr::analysis {

const char* foldLegalityName(FoldLegality v) {
    switch (v) {
        case FoldLegality::kProvablySafe: return "ProvablySafe";
        case FoldLegality::kSafeOnProfiledPaths: return "SafeOnProfiledPaths";
        case FoldLegality::kIllegal: return "Illegal";
    }
    return "?";
}

std::size_t VerifyReport::count(FoldLegality v) const {
    return static_cast<std::size_t>(
        std::count_if(branches.begin(), branches.end(),
                      [v](const BranchVerdict& b) { return b.verdict == v; }));
}

bool VerifyReport::ok() const {
    return conflicts.empty() && inconsistencies.empty() &&
           count(FoldLegality::kIllegal) == 0;
}

const char* staticLintKindName(StaticLint::Kind k) {
    switch (k) {
        case StaticLint::Kind::kUnreachableBlock: return "unreachable-block";
        case StaticLint::Kind::kDeadBranchArm: return "dead-branch-arm";
        case StaticLint::Kind::kRefinementWin: return "refinement-win";
        case StaticLint::Kind::kUnboundedLoop: return "unbounded-loop";
        case StaticLint::Kind::kDanglingLoopBound: return "dangling-loopbound";
        case StaticLint::Kind::kDeadStore: return "dead-store";
        case StaticLint::Kind::kNeverWrittenRead: return "never-written-read";
        case StaticLint::Kind::kCorrelatedBranch: return "correlated-branch";
    }
    return "?";
}

bool isErrorLint(StaticLint::Kind k) {
    switch (k) {
        case StaticLint::Kind::kUnreachableBlock:
        case StaticLint::Kind::kDeadBranchArm:
        case StaticLint::Kind::kUnboundedLoop:
        case StaticLint::Kind::kDanglingLoopBound:
            return true;
        case StaticLint::Kind::kRefinementWin:
        case StaticLint::Kind::kDeadStore:
        case StaticLint::Kind::kNeverWrittenRead:
        case StaticLint::Kind::kCorrelatedBranch:
            return false;
    }
    return true;
}

std::string formatLint(const StaticLint& lint) {
    std::ostringstream os;
    os << staticLintKindName(lint.kind) << " pc=0x" << std::hex << lint.pc
       << std::dec << " line=" << lint.sourceLine << ": " << lint.message;
    return os.str();
}

FoldLegalityVerifier::FoldLegalityVerifier(const Program& program)
    : program_(program), ipa_(ipa::analyzeProgram(program)),
      rpUnrefined_(computeReachingProducers(ipa_.cfg)),
      rp_(computeReachingProducers(ipa_.cfg, ipa_.values.feasibleEdge)) {}

BranchVerdict FoldLegalityVerifier::verdictFor(
    std::uint32_t pc, const VerifyConfig& config,
    const ObservedMinDistances* observed) const {
    ASBR_ENSURE(config.threshold >= 2 && config.threshold <= 4,
                "threshold must be 2, 3 or 4");
    ASBR_ENSURE(program_.inText(pc), "verdictFor: pc outside text");
    const Instruction& ins = program_.at(pc);
    ASBR_ENSURE(isCondBranch(ins.op), "verdictFor: not a conditional branch");

    BranchVerdict v;
    v.pc = pc;
    v.sourceLine = program_.sourceLine(pc);
    v.extractable = isExtractableBranch(program_, pc);

    const InstrIndex idx = ipa_.cfg.indexOf(pc);
    v.reachable = rp_.reachable(ipa_.cfg.blockOf[idx]);
    v.staticMinDistance = distanceAt(ipa_.cfg, rp_, idx, ins.rs);
    v.unrefinedMinDistance = distanceAt(ipa_.cfg, rpUnrefined_, idx, ins.rs);
    v.direction = ipa_.values.directionAt(idx);

    if (!v.extractable) {
        v.verdict = FoldLegality::kIllegal;
        v.reason = "branch target or fall-through leaves the text segment";
        return v;
    }
    if (v.staticMinDistance >= config.threshold) {
        v.verdict = FoldLegality::kProvablySafe;
        return v;
    }

    std::ostringstream why;
    why << "shortest static def-to-branch path for "
        << regName(ins.rs) << " is " << int{v.staticMinDistance}
        << " < threshold " << config.threshold;
    if (observed) {
        const auto it = observed->find(pc);
        if (it != observed->end() && it->second >= config.threshold) {
            v.verdict = FoldLegality::kSafeOnProfiledPaths;
            why << "; every profiled execution observed >= " << it->second;
            v.reason = why.str();
            return v;
        }
        if (it != observed->end())
            why << "; the profile observed " << it->second << " too";
        else
            why << "; the branch never executed under the profile";
    } else {
        why << "; no dynamic evidence supplied";
    }
    v.verdict = FoldLegality::kIllegal;
    v.reason = why.str();
    return v;
}

namespace {

void checkGeometry(std::span<const std::uint32_t> pcs,
                   const VerifyConfig& config, VerifyReport& report) {
    ASBR_ENSURE(config.geometry.sets >= 1 && config.geometry.ways >= 1,
                "BIT geometry needs at least one set and one way");
    if (pcs.size() > config.geometry.capacity()) {
        std::ostringstream os;
        os << pcs.size() << " entries exceed the BIT capacity of "
           << config.geometry.capacity();
        report.conflicts.push_back(os.str());
    }
    // Duplicate PCs would silently shadow each other in the associative
    // lookup; index-set overflow cannot be loaded at all.
    std::map<std::uint32_t, std::size_t> seen;
    std::map<std::size_t, std::vector<std::uint32_t>> bySet;
    for (const std::uint32_t pc : pcs) {
        if (++seen[pc] == 2) {
            std::ostringstream os;
            os << "duplicate BIT entry for branch pc 0x" << std::hex << pc;
            report.conflicts.push_back(os.str());
        }
        bySet[config.geometry.indexOf(pc)].push_back(pc);
    }
    for (const auto& [set, members] : bySet) {
        if (members.size() <= config.geometry.ways) continue;
        std::ostringstream os;
        os << members.size() << " branches collide in BIT set " << set
           << " (" << config.geometry.ways << " ways):" << std::hex;
        for (const std::uint32_t pc : members) os << " 0x" << pc;
        report.conflicts.push_back(os.str());
    }
}

}  // namespace

VerifyReport FoldLegalityVerifier::verify(
    std::span<const std::uint32_t> pcs, const VerifyConfig& config,
    const ObservedMinDistances* observed) const {
    VerifyReport report;
    report.branches.reserve(pcs.size());
    for (const std::uint32_t pc : pcs)
        report.branches.push_back(verdictFor(pc, config, observed));
    checkGeometry(pcs, config, report);
    return report;
}

VerifyReport FoldLegalityVerifier::verifyBank(
    std::span<const BranchInfo> entries, const VerifyConfig& config,
    const ObservedMinDistances* observed) const {
    std::vector<std::uint32_t> pcs;
    pcs.reserve(entries.size());
    for (const BranchInfo& e : entries) pcs.push_back(e.pc);
    VerifyReport report = verify(pcs, config, observed);

    // BTA/BTI/BFI consistency: every supplied entry must match what
    // extractBranchInfo derives from the program image — a mismatch means
    // the fold would inject the wrong instruction or redirect to the wrong
    // address.
    for (const BranchInfo& e : entries) {
        std::ostringstream os;
        os << "BIT entry 0x" << std::hex << e.pc << std::dec << ": ";
        if (!isExtractableBranch(program_, e.pc)) {
            os << "not an extractable conditional branch";
            report.inconsistencies.push_back(os.str());
            continue;
        }
        const BranchInfo want = extractBranchInfo(program_, e.pc);
        if (e.conditionReg != want.conditionReg || e.cond != want.cond) {
            os << "direction index mismatch (have " << regName(e.conditionReg)
               << "/" << condName(e.cond) << ", program says "
               << regName(want.conditionReg) << "/" << condName(want.cond)
               << ")";
            report.inconsistencies.push_back(os.str());
        } else if (e.bta != want.bta) {
            os << "BTA mismatch (have 0x" << std::hex << e.bta
               << ", program says 0x" << want.bta << ")";
            report.inconsistencies.push_back(os.str());
        } else if (!(e.bti == want.bti)) {
            os << "BTI mismatch (have '" << disassemble(e.bti)
               << "', program says '" << disassemble(want.bti) << "')";
            report.inconsistencies.push_back(os.str());
        } else if (!(e.bfi == want.bfi)) {
            os << "BFI mismatch (have '" << disassemble(e.bfi)
               << "', program says '" << disassemble(want.bfi) << "')";
            report.inconsistencies.push_back(os.str());
        }
    }
    return report;
}

std::vector<StaticLint> FoldLegalityVerifier::lints(
    const VerifyConfig& config) const {
    std::vector<StaticLint> out;
    for (const std::size_t b : ipa_.values.unreachableBlocks) {
        StaticLint lint;
        lint.kind = StaticLint::Kind::kUnreachableBlock;
        lint.pc = ipa_.cfg.pcOf(ipa_.cfg.blocks[b].first);
        lint.sourceLine = program_.sourceLine(lint.pc);
        std::ostringstream os;
        os << "block B" << b << " (0x" << std::hex
           << ipa_.cfg.pcOf(ipa_.cfg.blocks[b].first) << "..0x"
           << ipa_.cfg.pcOf(ipa_.cfg.blocks[b].last) << std::dec
           << ") can never execute";
        lint.message = os.str();
        out.push_back(std::move(lint));
    }
    for (const DeadArmLint& arm : ipa_.values.deadArms) {
        StaticLint lint;
        lint.kind = StaticLint::Kind::kDeadBranchArm;
        lint.pc = ipa_.cfg.pcOf(arm.branch);
        lint.sourceLine = program_.sourceLine(lint.pc);
        const Instruction& ins = program_.code[arm.branch];
        std::ostringstream os;
        os << opName(ins.op) << " " << regName(ins.rs) << " is "
           << branchDirectionName(ipa_.values.directionAt(arm.branch)) << " ("
           << regName(ins.rs) << " in "
           << ipa_.values.condAtBranch[arm.branch].str() << "); its "
           << (arm.takenArm ? "taken" : "fall-through")
           << " arm can never execute";
        lint.message = os.str();
        out.push_back(std::move(lint));
    }
    // Refinement wins: PR 1 rejected the fold, the pruned dataflow proves it
    // safe — the loop-carried-producer false positives this PR removes.
    for (InstrIndex i = 0; i < ipa_.cfg.numInstructions(); ++i) {
        const Instruction& ins = program_.code[i];
        if (!isCondBranch(ins.op)) continue;
        const Dist refined = distanceAt(ipa_.cfg, rp_, i, ins.rs);
        const Dist unrefined = distanceAt(ipa_.cfg, rpUnrefined_, i, ins.rs);
        if (unrefined >= config.threshold || refined < config.threshold)
            continue;
        StaticLint lint;
        lint.kind = StaticLint::Kind::kRefinementWin;
        lint.pc = ipa_.cfg.pcOf(i);
        lint.sourceLine = program_.sourceLine(lint.pc);
        std::ostringstream os;
        os << "feasible-path pruning lifted " << regName(ins.rs)
           << " distance " << int{unrefined} << " -> " << int{refined}
           << " across threshold " << config.threshold;
        lint.message = os.str();
        out.push_back(std::move(lint));
    }
    // Unbounded loops: neither a `.loopbound` annotation nor the interval
    // inference bounds the iteration count, so no static cycle bound exists.
    {
        const timing::WcetEngine engine(
            ipa_.cfg, ipa_.values,
            timing::TimingCostModel::fromPipeline(PipelineConfig{}),
            &ipa_.resolution.map);
        std::set<std::uint32_t> loopHeads;
        for (const timing::LoopRecord& loop : engine.loops()) {
            loopHeads.insert(loop.headPc);
            if (loop.bound.bounded()) continue;
            StaticLint lint;
            lint.kind = StaticLint::Kind::kUnboundedLoop;
            lint.pc = loop.headPc;
            lint.sourceLine = loop.sourceLine;
            std::ostringstream os;
            os << "loop head 0x" << std::hex << loop.headPc << std::dec
               << " has no iteration bound (add a .loopbound directive or "
                  "make the trip count interval-inferable)";
            lint.message = os.str();
            out.push_back(std::move(lint));
        }
        // Dangling `.loopbound`: the directive annotated a line that is not
        // the head of any detected loop, so the bound silently applies to
        // nothing — almost always a directive that drifted off its loop.
        for (const auto& [pc, bound] : program_.loopBounds) {
            if (loopHeads.count(pc) != 0) continue;
            StaticLint lint;
            lint.kind = StaticLint::Kind::kDanglingLoopBound;
            lint.pc = pc;
            lint.sourceLine = program_.sourceLine(pc);
            std::ostringstream os;
            os << ".loopbound " << bound << " annotates 0x" << std::hex << pc
               << std::dec << ", which is not a loop head (the bound is "
                  "ignored; move the directive to the loop's first "
                  "instruction)";
            lint.message = os.str();
            out.push_back(std::move(lint));
        }
    }
    appendSsaLints(out);
    std::sort(out.begin(), out.end(),
              [](const StaticLint& a, const StaticLint& b) {
                  if (a.pc != b.pc) return a.pc < b.pc;
                  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
              });
    return out;
}

void FoldLegalityVerifier::appendSsaLints(std::vector<StaticLint>& out) const {
    const ipa::SsaForm& ssa = ipa_.ssa;
    const ipa::SccpResult& sccp = ipa_.sccp;
    const Cfg& cfg = ipa_.cfg;

    // Dead stores: a side-effect-free register write whose SSA def has no
    // use anywhere — the def–use chains make this exact, not heuristic.
    for (const ipa::SsaDef& def : ssa.defs) {
        if (def.isPhi || def.isEntry || !def.uses.empty()) continue;
        if (def.block == kNoBlock || !sccp.blockExecutable[def.block]) continue;
        const Op op = program_.code[def.instr].op;
        const bool pure = op <= Op::kRemu ||
                          (op >= Op::kAddiu && op <= Op::kSra) || isLoad(op);
        if (!pure) continue;  // call links etc. have other effects
        StaticLint lint;
        lint.kind = StaticLint::Kind::kDeadStore;
        lint.pc = cfg.pcOf(def.instr);
        lint.sourceLine = program_.sourceLine(lint.pc);
        std::ostringstream os;
        os << "value written to " << regName(def.reg) << " by "
           << opName(op) << " is never read";
        lint.message = os.str();
        out.push_back(std::move(lint));
    }

    // Reads of never-written registers: the only reaching def is the
    // synthetic reset-state one and no instruction anywhere writes the
    // register.  sp/gp are part of the reset contract and stay silent.
    std::array<bool, kNumRegs> written{};
    for (const ipa::SsaDef& def : ssa.defs)
        if (!def.isEntry && !def.isPhi) written[def.reg] = true;
    for (int r = 1; r < kNumRegs; ++r) {
        const auto reg8 = static_cast<std::uint8_t>(r);
        if (written[reg8] || reg8 == reg::sp || reg8 == reg::gp) continue;
        const ipa::SsaDef& entry = ssa.defs[ssa.entryDef[reg8]];
        InstrIndex firstUse = 0;
        bool found = false;
        for (const ipa::SsaUse& use : entry.uses) {
            if (use.atPhi) continue;
            if (!sccp.blockExecutable[cfg.blockOf[use.site]]) continue;
            if (!found || use.site < firstUse) {
                firstUse = use.site;
                found = true;
            }
        }
        if (!found) continue;
        StaticLint lint;
        lint.kind = StaticLint::Kind::kNeverWrittenRead;
        lint.pc = cfg.pcOf(firstUse);
        lint.sourceLine = program_.sourceLine(lint.pc);
        std::ostringstream os;
        os << regName(reg8) << " is read but no instruction ever writes it "
           << "(only the reset value 0 is observable)";
        lint.message = os.str();
        out.push_back(std::move(lint));
    }

    // Correlated branches: a branch re-testing the exact SSA value a
    // dominating branch already tested — its outcome is pinned on each of
    // the dominator's arms even when no single verdict exists.
    std::map<std::uint32_t, std::vector<InstrIndex>> tested;
    for (InstrIndex i = 0; i < cfg.numInstructions(); ++i) {
        if (!isCondBranch(program_.code[i].op)) continue;
        if (!sccp.blockExecutable[cfg.blockOf[i]]) continue;
        if (ipa_.values.branchDir[i] == BranchDirection::kUnreachable) continue;
        const std::uint32_t d = ssa.srcDef[i][0];
        if (d != ipa::kNoDef) tested[d].push_back(i);
    }
    for (const auto& [def, branches] : tested) {
        for (std::size_t j = 1; j < branches.size(); ++j) {
            const InstrIndex b2 = branches[j];
            InstrIndex b1 = 0;
            bool found = false;
            for (std::size_t k = 0; k < j; ++k) {
                if (!ipa_.doms.dominates(cfg.blockOf[branches[k]],
                                         cfg.blockOf[b2]))
                    continue;
                b1 = branches[k];
                found = true;
                break;
            }
            if (!found) continue;
            StaticLint lint;
            lint.kind = StaticLint::Kind::kCorrelatedBranch;
            lint.pc = cfg.pcOf(b2);
            lint.sourceLine = program_.sourceLine(lint.pc);
            std::ostringstream os;
            os << opName(program_.code[b2].op) << " re-tests the value the "
               << "dominating branch at 0x" << std::hex << cfg.pcOf(b1)
               << std::dec << " already decided on (correlated outcomes)";
            lint.message = os.str();
            out.push_back(std::move(lint));
        }
    }
}

}  // namespace asbr::analysis

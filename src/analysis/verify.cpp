#include "analysis/verify.hpp"

#include <algorithm>
#include <sstream>

#include "analysis/timing/wcet.hpp"
#include "asbr/extract.hpp"
#include "isa/disasm.hpp"

namespace asbr::analysis {

const char* foldLegalityName(FoldLegality v) {
    switch (v) {
        case FoldLegality::kProvablySafe: return "ProvablySafe";
        case FoldLegality::kSafeOnProfiledPaths: return "SafeOnProfiledPaths";
        case FoldLegality::kIllegal: return "Illegal";
    }
    return "?";
}

std::size_t VerifyReport::count(FoldLegality v) const {
    return static_cast<std::size_t>(
        std::count_if(branches.begin(), branches.end(),
                      [v](const BranchVerdict& b) { return b.verdict == v; }));
}

bool VerifyReport::ok() const {
    return conflicts.empty() && inconsistencies.empty() &&
           count(FoldLegality::kIllegal) == 0;
}

const char* staticLintKindName(StaticLint::Kind k) {
    switch (k) {
        case StaticLint::Kind::kUnreachableBlock: return "unreachable-block";
        case StaticLint::Kind::kDeadBranchArm: return "dead-branch-arm";
        case StaticLint::Kind::kRefinementWin: return "refinement-win";
        case StaticLint::Kind::kUnboundedLoop: return "unbounded-loop";
    }
    return "?";
}

std::string formatLint(const StaticLint& lint) {
    std::ostringstream os;
    os << staticLintKindName(lint.kind) << " pc=0x" << std::hex << lint.pc
       << std::dec << " line=" << lint.sourceLine << ": " << lint.message;
    return os.str();
}

FoldLegalityVerifier::FoldLegalityVerifier(const Program& program)
    : program_(program), cfg_(buildCfg(program)), doms_(computeDominators(cfg_)),
      loops_(computeLoops(cfg_, doms_)), va_(analyzeValues(cfg_, loops_)),
      rpUnrefined_(computeReachingProducers(cfg_)),
      rp_(computeReachingProducers(cfg_, va_.feasibleEdge)) {}

BranchVerdict FoldLegalityVerifier::verdictFor(
    std::uint32_t pc, const VerifyConfig& config,
    const ObservedMinDistances* observed) const {
    ASBR_ENSURE(config.threshold >= 2 && config.threshold <= 4,
                "threshold must be 2, 3 or 4");
    ASBR_ENSURE(program_.inText(pc), "verdictFor: pc outside text");
    const Instruction& ins = program_.at(pc);
    ASBR_ENSURE(isCondBranch(ins.op), "verdictFor: not a conditional branch");

    BranchVerdict v;
    v.pc = pc;
    v.sourceLine = program_.sourceLine(pc);
    v.extractable = isExtractableBranch(program_, pc);

    const InstrIndex idx = cfg_.indexOf(pc);
    v.reachable = rp_.reachable(cfg_.blockOf[idx]);
    v.staticMinDistance = distanceAt(cfg_, rp_, idx, ins.rs);
    v.unrefinedMinDistance = distanceAt(cfg_, rpUnrefined_, idx, ins.rs);
    v.direction = va_.directionAt(idx);

    if (!v.extractable) {
        v.verdict = FoldLegality::kIllegal;
        v.reason = "branch target or fall-through leaves the text segment";
        return v;
    }
    if (v.staticMinDistance >= config.threshold) {
        v.verdict = FoldLegality::kProvablySafe;
        return v;
    }

    std::ostringstream why;
    why << "shortest static def-to-branch path for "
        << regName(ins.rs) << " is " << int{v.staticMinDistance}
        << " < threshold " << config.threshold;
    if (observed) {
        const auto it = observed->find(pc);
        if (it != observed->end() && it->second >= config.threshold) {
            v.verdict = FoldLegality::kSafeOnProfiledPaths;
            why << "; every profiled execution observed >= " << it->second;
            v.reason = why.str();
            return v;
        }
        if (it != observed->end())
            why << "; the profile observed " << it->second << " too";
        else
            why << "; the branch never executed under the profile";
    } else {
        why << "; no dynamic evidence supplied";
    }
    v.verdict = FoldLegality::kIllegal;
    v.reason = why.str();
    return v;
}

namespace {

void checkGeometry(std::span<const std::uint32_t> pcs,
                   const VerifyConfig& config, VerifyReport& report) {
    ASBR_ENSURE(config.geometry.sets >= 1 && config.geometry.ways >= 1,
                "BIT geometry needs at least one set and one way");
    if (pcs.size() > config.geometry.capacity()) {
        std::ostringstream os;
        os << pcs.size() << " entries exceed the BIT capacity of "
           << config.geometry.capacity();
        report.conflicts.push_back(os.str());
    }
    // Duplicate PCs would silently shadow each other in the associative
    // lookup; index-set overflow cannot be loaded at all.
    std::map<std::uint32_t, std::size_t> seen;
    std::map<std::size_t, std::vector<std::uint32_t>> bySet;
    for (const std::uint32_t pc : pcs) {
        if (++seen[pc] == 2) {
            std::ostringstream os;
            os << "duplicate BIT entry for branch pc 0x" << std::hex << pc;
            report.conflicts.push_back(os.str());
        }
        bySet[config.geometry.indexOf(pc)].push_back(pc);
    }
    for (const auto& [set, members] : bySet) {
        if (members.size() <= config.geometry.ways) continue;
        std::ostringstream os;
        os << members.size() << " branches collide in BIT set " << set
           << " (" << config.geometry.ways << " ways):" << std::hex;
        for (const std::uint32_t pc : members) os << " 0x" << pc;
        report.conflicts.push_back(os.str());
    }
}

}  // namespace

VerifyReport FoldLegalityVerifier::verify(
    std::span<const std::uint32_t> pcs, const VerifyConfig& config,
    const ObservedMinDistances* observed) const {
    VerifyReport report;
    report.branches.reserve(pcs.size());
    for (const std::uint32_t pc : pcs)
        report.branches.push_back(verdictFor(pc, config, observed));
    checkGeometry(pcs, config, report);
    return report;
}

VerifyReport FoldLegalityVerifier::verifyBank(
    std::span<const BranchInfo> entries, const VerifyConfig& config,
    const ObservedMinDistances* observed) const {
    std::vector<std::uint32_t> pcs;
    pcs.reserve(entries.size());
    for (const BranchInfo& e : entries) pcs.push_back(e.pc);
    VerifyReport report = verify(pcs, config, observed);

    // BTA/BTI/BFI consistency: every supplied entry must match what
    // extractBranchInfo derives from the program image — a mismatch means
    // the fold would inject the wrong instruction or redirect to the wrong
    // address.
    for (const BranchInfo& e : entries) {
        std::ostringstream os;
        os << "BIT entry 0x" << std::hex << e.pc << std::dec << ": ";
        if (!isExtractableBranch(program_, e.pc)) {
            os << "not an extractable conditional branch";
            report.inconsistencies.push_back(os.str());
            continue;
        }
        const BranchInfo want = extractBranchInfo(program_, e.pc);
        if (e.conditionReg != want.conditionReg || e.cond != want.cond) {
            os << "direction index mismatch (have " << regName(e.conditionReg)
               << "/" << condName(e.cond) << ", program says "
               << regName(want.conditionReg) << "/" << condName(want.cond)
               << ")";
            report.inconsistencies.push_back(os.str());
        } else if (e.bta != want.bta) {
            os << "BTA mismatch (have 0x" << std::hex << e.bta
               << ", program says 0x" << want.bta << ")";
            report.inconsistencies.push_back(os.str());
        } else if (!(e.bti == want.bti)) {
            os << "BTI mismatch (have '" << disassemble(e.bti)
               << "', program says '" << disassemble(want.bti) << "')";
            report.inconsistencies.push_back(os.str());
        } else if (!(e.bfi == want.bfi)) {
            os << "BFI mismatch (have '" << disassemble(e.bfi)
               << "', program says '" << disassemble(want.bfi) << "')";
            report.inconsistencies.push_back(os.str());
        }
    }
    return report;
}

std::vector<StaticLint> FoldLegalityVerifier::lints(
    const VerifyConfig& config) const {
    std::vector<StaticLint> out;
    for (const std::size_t b : va_.unreachableBlocks) {
        StaticLint lint;
        lint.kind = StaticLint::Kind::kUnreachableBlock;
        lint.pc = cfg_.pcOf(cfg_.blocks[b].first);
        lint.sourceLine = program_.sourceLine(lint.pc);
        std::ostringstream os;
        os << "block B" << b << " (0x" << std::hex
           << cfg_.pcOf(cfg_.blocks[b].first) << "..0x"
           << cfg_.pcOf(cfg_.blocks[b].last) << std::dec
           << ") can never execute";
        lint.message = os.str();
        out.push_back(std::move(lint));
    }
    for (const DeadArmLint& arm : va_.deadArms) {
        StaticLint lint;
        lint.kind = StaticLint::Kind::kDeadBranchArm;
        lint.pc = cfg_.pcOf(arm.branch);
        lint.sourceLine = program_.sourceLine(lint.pc);
        const Instruction& ins = program_.code[arm.branch];
        std::ostringstream os;
        os << opName(ins.op) << " " << regName(ins.rs) << " is "
           << branchDirectionName(va_.directionAt(arm.branch)) << " ("
           << regName(ins.rs) << " in "
           << va_.condAtBranch[arm.branch].str() << "); its "
           << (arm.takenArm ? "taken" : "fall-through")
           << " arm can never execute";
        lint.message = os.str();
        out.push_back(std::move(lint));
    }
    // Refinement wins: PR 1 rejected the fold, the pruned dataflow proves it
    // safe — the loop-carried-producer false positives this PR removes.
    for (InstrIndex i = 0; i < cfg_.numInstructions(); ++i) {
        const Instruction& ins = program_.code[i];
        if (!isCondBranch(ins.op)) continue;
        const Dist refined = distanceAt(cfg_, rp_, i, ins.rs);
        const Dist unrefined = distanceAt(cfg_, rpUnrefined_, i, ins.rs);
        if (unrefined >= config.threshold || refined < config.threshold)
            continue;
        StaticLint lint;
        lint.kind = StaticLint::Kind::kRefinementWin;
        lint.pc = cfg_.pcOf(i);
        lint.sourceLine = program_.sourceLine(lint.pc);
        std::ostringstream os;
        os << "feasible-path pruning lifted " << regName(ins.rs)
           << " distance " << int{unrefined} << " -> " << int{refined}
           << " across threshold " << config.threshold;
        lint.message = os.str();
        out.push_back(std::move(lint));
    }
    // Unbounded loops: neither a `.loopbound` annotation nor the interval
    // inference bounds the iteration count, so no static cycle bound exists.
    {
        const timing::WcetEngine engine(
            cfg_, va_, timing::TimingCostModel::fromPipeline(PipelineConfig{}));
        for (const timing::LoopRecord& loop : engine.loops()) {
            if (loop.bound.bounded()) continue;
            StaticLint lint;
            lint.kind = StaticLint::Kind::kUnboundedLoop;
            lint.pc = loop.headPc;
            lint.sourceLine = loop.sourceLine;
            std::ostringstream os;
            os << "loop head 0x" << std::hex << loop.headPc << std::dec
               << " has no iteration bound (add a .loopbound directive or "
                  "make the trip count interval-inferable)";
            lint.message = os.str();
            out.push_back(std::move(lint));
        }
    }
    std::sort(out.begin(), out.end(),
              [](const StaticLint& a, const StaticLint& b) {
                  if (a.pc != b.pc) return a.pc < b.pc;
                  return static_cast<int>(a.kind) < static_cast<int>(b.kind);
              });
    return out;
}

}  // namespace asbr::analysis

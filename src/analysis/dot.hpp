// Graphviz rendering of the analyzed CFG.
//
// One node per basic block, clustered visually by color: the fill encodes
// loop-nesting depth (darker = deeper) and the border encodes the fold
// verdict of the block's terminating conditional branch — green for
// provably safe folds, orange for profile-only safety, red for illegal,
// with double borders on statically-decided (always/never-taken) branches.
// Unreachable blocks are dashed gray; infeasible edges are dashed red, and
// conditional-branch edges carry T/F labels.
#pragma once

#include <ostream>

#include "analysis/verify.hpp"

namespace asbr::analysis {

/// Write the whole supergraph of `verifier` as a DOT digraph.
void dumpCfgDot(std::ostream& os, const FoldLegalityVerifier& verifier,
                const VerifyConfig& config);

}  // namespace asbr::analysis

#!/usr/bin/env bash
# CI lint: documentation consistency + clang-tidy over src/ using the checks
# in .clang-tidy.  The clang-tidy half skips gracefully (exit 0) when the
# tool is not installed, so that gate only bites on runners that ship it.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-lint}

# Docs are checked first — the checker needs no compiler.
ci/docs-check.sh

if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "ci/lint.sh: clang-tidy not found; skipping lint" >&2
    exit 0
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null

# shellcheck disable=SC2046
clang-tidy -p "$BUILD_DIR" --warnings-as-errors='*' \
    $(find src tools -name '*.cpp' | sort)

#!/usr/bin/env bash
# CI lint: documentation consistency + clang-tidy over src/ using the checks
# in .clang-tidy.  The clang-tidy half skips gracefully (exit 0) when the
# tool is not installed, so that gate only bites on runners that ship it.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-lint}

# Docs are checked first — the checker needs no compiler.
ci/docs-check.sh

# The lint file list is a recursive find, but the static-analysis subsystem
# is easy to orphan (nested directory, INTERFACE-only aggregation target) —
# assert its sources are in scope so they can never silently drop out.
files=$(find src tools -name '*.cpp' | sort)
for must in src/analysis/absint/absint.cpp src/analysis/absint/domain.cpp \
            src/analysis/absint/refine.cpp \
            src/analysis/dominators.cpp src/analysis/loops.cpp \
            src/analysis/ipa/callgraph.cpp src/analysis/ipa/ipa.cpp \
            src/analysis/ipa/sccp.cpp src/analysis/ipa/ssa.cpp \
            src/analysis/ipa/valueset.cpp \
            src/analysis/verify.cpp src/analysis/timing/cost_model.cpp \
            src/analysis/timing/loop_bounds.cpp src/analysis/timing/wcet.cpp; do
    if ! grep -qx "$must" <<< "$files"; then
        echo "FAIL: $must missing from clang-tidy coverage" >&2
        exit 1
    fi
done
echo "ok: static-analysis sources are in lint coverage"

# The unbounded-loop lint must keep its teeth: non-strict verification of
# the fixture stays clean, --strict must reject it.  Skips gracefully when
# asbr-verify has not been built (same contract as the docs metric check).
VERIFY="${VERIFY_BUILD_DIR:-build}/tools/asbr-verify"
if [[ -x "$VERIFY" ]]; then
    if ! "$VERIFY" tests/fixtures/unbounded_loop.s --all --no-schedule \
            --quiet; then
        echo "FAIL: unbounded_loop.s should verify clean without --strict" >&2
        exit 1
    fi
    if "$VERIFY" tests/fixtures/unbounded_loop.s --all --no-schedule \
            --strict --quiet > /dev/null 2>&1; then
        echo "FAIL: --strict should reject the unbounded-loop fixture" >&2
        exit 1
    fi
    echo "ok: unbounded-loop lint fires under --strict only"

    # Same contract for the dangling-.loopbound lint: the annotation names
    # an address that is no loop head, so it silently bounds nothing —
    # clean without --strict, rejected with it.
    if ! "$VERIFY" tests/fixtures/dangling_loopbound.s --all --no-schedule \
            --quiet; then
        echo "FAIL: dangling_loopbound.s should verify clean without" \
             "--strict" >&2
        exit 1
    fi
    if "$VERIFY" tests/fixtures/dangling_loopbound.s --all --no-schedule \
            --strict --quiet > /dev/null 2>&1; then
        echo "FAIL: --strict should reject the dangling-loopbound fixture" >&2
        exit 1
    fi
    strict_out=$("$VERIFY" tests/fixtures/dangling_loopbound.s --all \
        --no-schedule --strict 2>&1 || true)  # expected nonzero exit
    if ! grep -q 'dangling-loopbound' <<< "$strict_out"; then
        echo "FAIL: --strict rejection must name the dangling-loopbound" \
             "lint" >&2
        exit 1
    fi
    echo "ok: dangling-loopbound lint fires under --strict only"
else
    echo "ci/lint.sh: $VERIFY not built; skipping unbounded-loop lint check" >&2
fi

# cppcheck is a second, independent static-analysis gate; like clang-tidy it
# is blocking wherever the tool exists and skips (with a notice) where it
# does not, so the lint job never silently weakens on equipped runners.
if command -v cppcheck > /dev/null 2>&1; then
    # shellcheck disable=SC2086
    cppcheck --std=c++20 --language=c++ --enable=warning,performance \
        --inline-suppr --error-exitcode=1 \
        --suppress=internalAstError --suppress=unknownMacro \
        -I src $files
    echo "ok: cppcheck clean"
else
    echo "ci/lint.sh: cppcheck not found; skipping" >&2
fi

if ! command -v clang-tidy > /dev/null 2>&1; then
    echo "ci/lint.sh: clang-tidy not found; skipping lint" >&2
    exit 0
fi

cmake -B "$BUILD_DIR" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null

# shellcheck disable=SC2046
clang-tidy -p "$BUILD_DIR" --warnings-as-errors='*' $files

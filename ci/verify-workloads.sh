#!/usr/bin/env bash
# CI gate: run the static fold-legality linter over hand-written fixtures.
# An Illegal verdict (or BIT conflict / BranchInfo inconsistency) makes
# asbr-verify exit nonzero, which fails this script for the *legal* fixtures
# and is required for the illegal one.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
VERIFY="$BUILD_DIR/tools/asbr-verify"

if [[ ! -x "$VERIFY" ]]; then
    echo "ci/verify-workloads.sh: $VERIFY not built; run cmake --build first" >&2
    exit 1
fi

status=0
for fixture in tests/fixtures/*.s; do
    base=$(basename "$fixture")
    if [[ "$base" == illegal_* ]]; then
        if "$VERIFY" "$fixture" --all --no-schedule --quiet; then
            echo "FAIL: $fixture should have been flagged Illegal" >&2
            status=1
        else
            echo "ok: $fixture flagged as expected"
        fi
    else
        if "$VERIFY" "$fixture" --all --no-schedule --quiet; then
            echo "ok: $fixture verified clean"
        else
            echo "FAIL: $fixture should verify clean" >&2
            status=1
        fi
    fi
done

# ----------------------------------------------------- analysis goldens ----
# The static-analysis reports for the two paper encoders are pure functions
# of the program text, so the committed goldens must reproduce byte for
# byte.  Regenerate intentionally with:
#   build/tools/asbr-verify analyze --bench=B --out=tests/golden/analysis_B.json
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
for bench in adpcm-enc g721-enc; do
    golden="tests/golden/analysis_${bench//-/_}.json"
    out="$tmpdir/$(basename "$golden")"
    if ! "$VERIFY" analyze --bench="$bench" --out="$out" --quiet \
            > "$tmpdir/log" 2>&1; then
        echo "FAIL: asbr-verify analyze --bench=$bench failed:" >&2
        cat "$tmpdir/log" >&2
        status=1
    elif ! diff -q "$golden" "$out" > /dev/null; then
        echo "FAIL: $golden drifted from the static analysis:" >&2
        diff "$golden" "$out" | head -20 >&2
        status=1
    else
        echo "ok: $golden reproduced bit-for-bit"
    fi
done

# --------------------------------------------------------- wcet goldens ----
# The static-timing reports pin the whole WCET pipeline: cost model, loop
# bounds, solver, cost-aware selection and the measured soundness check.
# Integer-only documents, so byte-stable at any thread count.  Regenerate
# intentionally with:
#   build/tools/asbr-verify wcet --bench=B --samples=256 --seed=2001 \
#       --out=tests/golden/wcet_B.json
for bench in adpcm-enc g721-enc; do
    golden="tests/golden/wcet_${bench//-/_}.json"
    out="$tmpdir/$(basename "$golden")"
    if ! "$VERIFY" wcet --bench="$bench" --samples=256 --seed=2001 \
            --threads=2 --out="$out" --quiet > "$tmpdir/log" 2>&1; then
        echo "FAIL: asbr-verify wcet --bench=$bench failed:" >&2
        cat "$tmpdir/log" >&2
        status=1
    elif ! diff -q "$golden" "$out" > /dev/null; then
        echo "FAIL: $golden drifted from the static timing engine:" >&2
        diff "$golden" "$out" | head -20 >&2
        status=1
    else
        echo "ok: $golden reproduced bit-for-bit"
    fi
done

# ---------------------------------------------------------- ipa goldens ----
# The interprocedural reports pin the SSA construction, the SCCP solution,
# the value-set resolution and the call-graph summaries.  Integer-only and
# purely static, so byte-stable at any thread count.  The jalr fixture is
# the resolution showcase: its dispatch-table call must stay resolved (two
# targets) and WCET-bounded.  Regenerate intentionally with
# ci/regen-goldens.sh.
STATS="$BUILD_DIR/tools/asbr-stats"
for target in adpcm-enc g721-enc jalr; do
    if [[ "$target" == jalr ]]; then
        golden="tests/golden/ipa_jalr_dispatch.json"
        args=(tests/fixtures/jalr_dispatch.s)
    else
        golden="tests/golden/ipa_${target//-/_}.json"
        args=(--bench="$target")
    fi
    out="$tmpdir/$(basename "$golden")"
    if ! "$VERIFY" ipa "${args[@]}" --out="$out" --quiet \
            > "$tmpdir/log" 2>&1; then
        echo "FAIL: asbr-verify ipa ${args[*]} failed:" >&2
        cat "$tmpdir/log" >&2
        status=1
    elif ! diff -q "$golden" "$out" > /dev/null; then
        echo "FAIL: $golden drifted from the interprocedural analysis:" >&2
        diff "$golden" "$out" | head -20 >&2
        status=1
    elif ! "$STATS" validate "$out" > /dev/null 2>&1; then
        echo "FAIL: $out does not validate against asbr.ipa_report" >&2
        status=1
    else
        echo "ok: $golden reproduced bit-for-bit and validated"
    fi
done

# The resolved dispatch-table call must keep the fixture WCET-bounded (the
# acceptance bar for the value-set resolution: previously this program was
# rejected with "indirect control flow").
if ! python3 - "$tmpdir/ipa_jalr_dispatch.json" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
assert doc["wcet"]["bounded"], doc["wcet"]
assert doc["resolution"]["resolved_calls"] == 1, doc["resolution"]
assert len(doc["resolution"]["sites"][0]["targets"]) == 2, doc["resolution"]
EOF
then
    echo "FAIL: jalr dispatch fixture lost its bounded WCET or resolution" >&2
    status=1
else
    echo "ok: jalr dispatch fixture is resolved and WCET-bounded"
fi

# ----------------------------------------------------- sampling golden ----
# One sampled run (quick inputs, pinned seed and window geometry) with the
# full cycle-accurate reference attached: the integer-only report must
# reproduce byte for byte, which pins the decode-cached pipeline, the
# functional fast-forward, the window scheduler and the error-bound math in
# one artifact.  Regenerate intentionally with:
#   build/tools/asbr-stats run --bench=adpcm-enc --quick \
#       --sample=2000:10000:60000 --sample-ref --asbr \
#       --json=tests/golden/sampling_adpcm_enc.json
STATS="$BUILD_DIR/tools/asbr-stats"
golden="tests/golden/sampling_adpcm_enc.json"
out="$tmpdir/$(basename "$golden")"
if ! "$STATS" run --bench=adpcm-enc --quick --sample=2000:10000:60000 \
        --sample-ref --asbr --json="$out" > "$tmpdir/log" 2>&1; then
    echo "FAIL: sampled asbr-stats run failed:" >&2
    cat "$tmpdir/log" >&2
    status=1
elif ! diff -q "$golden" "$out" > /dev/null; then
    echo "FAIL: $golden drifted from the sampled simulation:" >&2
    diff "$golden" "$out" | head -20 >&2
    status=1
else
    echo "ok: $golden reproduced bit-for-bit"
fi

# ------------------------------------------------ predictor-sweep golden ----
# One quick sweep over the bimodal baseline plus the two strong predictors
# (TAGE, perceptron): pins the registry token path through the driver, the
# per-family metric export and the selection artifacts in one byte-diffed
# report.  Regenerate intentionally with ci/regen-goldens.sh.
SWEEP="$BUILD_DIR/tools/asbr-sweep"
golden="tests/golden/sweep_predictors.json"
out="$tmpdir/$(basename "$golden")"
if ! "$SWEEP" --quick --workloads=adpcm-enc \
        --predictors=bimodal,tage,perceptron --bits=4 --baseline \
        --threads=2 --json="$out" > "$tmpdir/log" 2>&1; then
    echo "FAIL: predictor asbr-sweep failed:" >&2
    cat "$tmpdir/log" >&2
    status=1
elif ! diff -q "$golden" "$out" > /dev/null; then
    echo "FAIL: $golden drifted from the predictor sweep:" >&2
    diff "$golden" "$out" | head -20 >&2
    status=1
else
    echo "ok: $golden reproduced bit-for-bit"
fi

# The fault-injection regression rides along with the workload gate: the
# same build tree, the same committed goldens (see ci/faults.sh).
ci/faults.sh || status=1

# Crash-safety: SIGKILL'd sweeps/campaigns must resume byte-identically and
# poisoned jobs must quarantine instead of aborting (see ci/resume.sh).
ci/resume.sh || status=1

exit $status

#!/usr/bin/env bash
# CI gate: run the static fold-legality linter over hand-written fixtures.
# An Illegal verdict (or BIT conflict / BranchInfo inconsistency) makes
# asbr-verify exit nonzero, which fails this script for the *legal* fixtures
# and is required for the illegal one.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
VERIFY="$BUILD_DIR/tools/asbr-verify"

if [[ ! -x "$VERIFY" ]]; then
    echo "ci/verify-workloads.sh: $VERIFY not built; run cmake --build first" >&2
    exit 1
fi

status=0
for fixture in tests/fixtures/*.s; do
    base=$(basename "$fixture")
    if [[ "$base" == illegal_* ]]; then
        if "$VERIFY" "$fixture" --all --no-schedule --quiet; then
            echo "FAIL: $fixture should have been flagged Illegal" >&2
            status=1
        else
            echo "ok: $fixture flagged as expected"
        fi
    else
        if "$VERIFY" "$fixture" --all --no-schedule --quiet; then
            echo "ok: $fixture verified clean"
        else
            echo "FAIL: $fixture should verify clean" >&2
            status=1
        fi
    fi
done

# The fault-injection regression rides along with the workload gate: the
# same build tree, the same committed goldens (see ci/faults.sh).
ci/faults.sh || status=1

exit $status

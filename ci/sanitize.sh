#!/usr/bin/env bash
# CI gate: build the whole tree under ASan+UBSan and run the test suite.
# Any sanitizer report aborts the run (-fno-sanitize-recover=all).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-sanitize}

cmake -B "$BUILD_DIR" -S . -DASBR_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

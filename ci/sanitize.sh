#!/usr/bin/env bash
# CI gate: build the whole tree under ASan+UBSan and run the test suite,
# then build under ThreadSanitizer and run the parallel-engine tests.
# Any sanitizer report aborts the run (-fno-sanitize-recover=all).
#
# TSan is mutually exclusive with ASan (the CMakeLists enforces it), so the
# two configurations use separate build trees.  The TSan pass runs only the
# driver tests — they are the ones that exercise concurrent engine workers,
# the shared artifact cache and the atomic work-claiming pool — because a
# full TSan test-suite run is several times slower for no extra coverage of
# threaded code paths (everything else is single-threaded by construction).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build-sanitize}
TSAN_DIR=${TSAN_DIR:-build-tsan}

cmake -B "$BUILD_DIR" -S . -DASBR_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$BUILD_DIR" -j "$(nproc)"
ctest --test-dir "$BUILD_DIR" --output-on-failure -j "$(nproc)"

cmake -B "$TSAN_DIR" -S . -DASBR_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
cmake --build "$TSAN_DIR" -j "$(nproc)" --target driver_test
"$TSAN_DIR/tests/driver_test"
echo "ci/sanitize.sh: ASan+UBSan suite and TSan driver tests are clean"

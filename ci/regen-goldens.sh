#!/usr/bin/env bash
# Regenerate every committed golden report in tests/golden/ in one
# deterministic pass — the single intentional-change workflow the CI gates
# (ci/verify-workloads.sh, ci/faults.sh) point at.  Each family is produced
# with exactly the flags its gate replays, so a clean regen immediately
# re-passes CI:
#
#   analysis_*  asbr-verify analyze          (purely static)
#   wcet_*      asbr-verify wcet             (pinned seed/samples)
#   ipa_*       asbr-verify ipa              (purely static)
#   sampling_*  asbr-stats run --sample      (pinned window geometry)
#   sweep_*     asbr-sweep --predictors      (registry token path)
#   fault_*     asbr-faults campaign         (pinned fault seeds)
#
# Every document is schema-validated before it replaces the golden.  Run
# from anywhere; requires a completed `cmake --build build`.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
VERIFY="$BUILD_DIR/tools/asbr-verify"
STATS="$BUILD_DIR/tools/asbr-stats"
GOLDEN_DIR=tests/golden

for tool in "$VERIFY" "$STATS"; do
    if [[ ! -x "$tool" ]]; then
        echo "ci/regen-goldens.sh: $tool not built; run cmake --build first" >&2
        exit 1
    fi
done

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# Generate into a temp file, schema-validate, then install — a crash or a
# validation failure must never leave a half-written golden behind.
install_golden() {
    local out=$1 golden=$2
    "$STATS" validate "$out" > /dev/null
    cp "$out" "$GOLDEN_DIR/$golden"
    echo "regenerated $GOLDEN_DIR/$golden"
}

# -------------------------------------------------------------- analysis ----
for bench in adpcm-enc g721-enc; do
    golden="analysis_${bench//-/_}.json"
    "$VERIFY" analyze --bench="$bench" --out="$tmpdir/$golden" --quiet \
        2> /dev/null
    install_golden "$tmpdir/$golden" "$golden"
done

# ------------------------------------------------------------------ wcet ----
for bench in adpcm-enc g721-enc; do
    golden="wcet_${bench//-/_}.json"
    "$VERIFY" wcet --bench="$bench" --samples=256 --seed=2001 \
        --out="$tmpdir/$golden" --quiet 2> /dev/null
    install_golden "$tmpdir/$golden" "$golden"
done

# ------------------------------------------------------------------- ipa ----
for bench in adpcm-enc g721-enc; do
    golden="ipa_${bench//-/_}.json"
    "$VERIFY" ipa --bench="$bench" --out="$tmpdir/$golden" --quiet \
        2> /dev/null
    install_golden "$tmpdir/$golden" "$golden"
done
"$VERIFY" ipa tests/fixtures/jalr_dispatch.s \
    --out="$tmpdir/ipa_jalr_dispatch.json" --quiet 2> /dev/null
install_golden "$tmpdir/ipa_jalr_dispatch.json" "ipa_jalr_dispatch.json"

# -------------------------------------------------------------- sampling ----
"$STATS" run --bench=adpcm-enc --quick --sample=2000:10000:60000 \
    --sample-ref --asbr --json="$tmpdir/sampling_adpcm_enc.json" > /dev/null
install_golden "$tmpdir/sampling_adpcm_enc.json" "sampling_adpcm_enc.json"

# ------------------------------------------------------- predictor sweep ----
SWEEP="$BUILD_DIR/tools/asbr-sweep"
"$SWEEP" --quick --workloads=adpcm-enc --predictors=bimodal,tage,perceptron \
    --bits=4 --baseline --threads=2 \
    --json="$tmpdir/sweep_predictors.json" > /dev/null
install_golden "$tmpdir/sweep_predictors.json" "sweep_predictors.json"

# ----------------------------------------------------------------- fault ----
# ci/faults.sh owns the campaign flag sets; its --regen mode validates each
# report before installing it, same as install_golden above.
ci/faults.sh --regen

echo "ci/regen-goldens.sh: all golden families regenerated"

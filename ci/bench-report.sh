#!/usr/bin/env bash
# CI gate: regenerate the machine-readable benchmark report and verify it
# against the asbr.bench_report schema.
#
# Produces BENCH_asbr.json (override with $OUT) covering the Figure 6
# baseline sweep and the Figure 11 ASBR sweep — the two result sets every
# EXPERIMENTS.md table derives from.  `asbr-stats report` already
# self-validates before writing; the explicit `validate` step re-checks the
# bytes that actually landed on disk.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT=${OUT:-BENCH_asbr.json}
STATS="$BUILD_DIR/tools/asbr-stats"

if [[ ! -x "$STATS" ]]; then
    echo "ci/bench-report.sh: $STATS not built; run cmake --build first" >&2
    exit 1
fi

# --quick keeps this CI-speed; pass BENCH_ARGS="" for full paper-size inputs.
"$STATS" report --out="$OUT" ${BENCH_ARGS---quick}
"$STATS" validate "$OUT"
echo "ci/bench-report.sh: $OUT is schema-valid"

#!/usr/bin/env bash
# CI gate: regenerate the machine-readable benchmark report and verify it
# against the asbr.bench_report schema.
#
# Produces BENCH_asbr.json (override with $OUT) covering the Figure 6
# baseline sweep and the Figure 11 ASBR sweep — the two result sets every
# EXPERIMENTS.md table derives from.  `asbr-stats report` already
# self-validates before writing; the explicit `validate` step re-checks the
# bytes that actually landed on disk.
#
# The report is generated twice — serial and engine-parallel (--threads=8,
# override with $BENCH_THREADS) — and whole-file diffed: the parallel engine
# must emit byte-identical results.  A small asbr-sweep grid gets the same
# serial-vs-parallel treatment for the asbr.sweep_report path.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
OUT=${OUT:-BENCH_asbr.json}
THREADS=${BENCH_THREADS:-8}
STATS="$BUILD_DIR/tools/asbr-stats"
SWEEP="$BUILD_DIR/tools/asbr-sweep"

if [[ ! -x "$STATS" || ! -x "$SWEEP" ]]; then
    echo "ci/bench-report.sh: $STATS / $SWEEP not built; run cmake --build first" >&2
    exit 1
fi

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT

# --quick keeps this CI-speed; pass BENCH_ARGS="" for full paper-size inputs.
"$STATS" report --out="$tmpdir/serial.json" ${BENCH_ARGS---quick}
"$STATS" report --out="$OUT" --threads="$THREADS" ${BENCH_ARGS---quick}
if ! diff -q "$tmpdir/serial.json" "$OUT" > /dev/null; then
    echo "FAIL: asbr-stats report diverges between --threads=1 and" \
         "--threads=$THREADS:" >&2
    diff "$tmpdir/serial.json" "$OUT" | head -20 >&2
    exit 1
fi
"$STATS" validate "$OUT"
echo "ci/bench-report.sh: $OUT is schema-valid and thread-count-invariant"

SWEEP_ARGS=(--quick --workloads=adpcm-enc,g721-enc --predictors=bi512,tage
            --bits=4,16 --baseline)
# ------------------------------------------------------ bound tightness ----
# The static timing engine must produce sound bounds on every workload AND
# the cost-aware fold set must strictly tighten the bound — the wcet report
# records both checks as integer-derived booleans, so a grep is exact.
VERIFY="$BUILD_DIR/tools/asbr-verify"
if [[ ! -x "$VERIFY" ]]; then
    echo "ci/bench-report.sh: $VERIFY not built; run cmake --build first" >&2
    exit 1
fi
for bench in adpcm-enc adpcm-dec g721-enc g721-dec g711-enc g711-dec; do
    report="$tmpdir/wcet_$bench.json"
    "$VERIFY" wcet --bench="$bench" --samples=256 --seed=2001 \
        --out="$report" --quiet
    for key in baseline_sound folded_sound folded_tighter; do
        if ! grep -q "\"$key\": true" "$report"; then
            echo "FAIL: $bench wcet report has $key != true" >&2
            exit 1
        fi
    done
    echo "ci/bench-report.sh: $bench bounds sound, folded strictly tighter"
done

# ------------------------------------------------- sampled simulation ----
# Every workload's sampled CPI estimate must land within its documented
# error bound (the report's within_bound flag is integer-derived, so grep is
# exact), and the simulator itself must not regress below a conservative
# host-speed floor (MIPS_FLOOR, default 2 million instr/s — full runs
# measure ~13-17 MIPS and sampled runs ~40-90 MIPS on a developer machine,
# see docs/simulation.md).
MIPS_FLOOR=${MIPS_FLOOR:-2}

# SIM_SPEED_TABLE=1 regenerates the EXPERIMENTS.md "Simulator throughput"
# tables: full-size runs of every workload in full and sampled mode, with
# the achieved sampling error pulled from the --sample-ref report.  Off by
# default — it adds several full cycle-accurate G.721 runs to a CI pass.
if [[ "${SIM_SPEED_TABLE:-0}" == "1" ]]; then
    geometry=2000:10000:200000
    for mode in baseline asbr; do
        [[ $mode == asbr ]] && flag=--asbr || flag=
        echo "| workload | decode-cached full | sampled | sampled CPI err |"
        echo "|---|---|---|---|"
        for bench in adpcm-enc adpcm-dec g721-enc g721-dec g711-enc g711-dec; do
            full_mips=$("$STATS" run --bench="$bench" $flag 2>&1 >/dev/null \
                | sed -n 's/^sim speed: \([0-9.]*\) MIPS.*/\1/p')
            # Speed and error come from separate runs: --sample-ref adds a
            # full cycle-accurate reference to the timed work, which would
            # drag the sampled MIPS column toward the full-run speed.
            samp_mips=$("$STATS" run --bench="$bench" $flag \
                    --sample="$geometry" 2>&1 >/dev/null \
                | sed -n 's/^sim speed: \([0-9.]*\) MIPS.*/\1/p')
            report="$tmpdir/speed_$bench.json"
            "$STATS" run --bench="$bench" $flag --sample="$geometry" \
                --sample-ref --json="$report" >/dev/null 2>&1
            err=$(grep -o '"abs_error_micro": [0-9]*' "$report" | grep -o '[0-9]*$')
            # Second cpi_micro in the report is the full-run reference.
            cpi=$(grep -o '"cpi_micro": [0-9]*' "$report" | grep -o '[0-9]*$' | tail -1)
            err_pct=$(awk "BEGIN{printf \"%.2f\", 100*$err/$cpi}")
            echo "| $bench ($mode) | $full_mips MIPS | $samp_mips MIPS | ${err_pct}% |"
        done
        echo
    done
fi

for bench in adpcm-enc adpcm-dec g721-enc g721-dec g711-enc g711-dec; do
    report="$tmpdir/sampling_$bench.json"
    if ! "$STATS" run --bench="$bench" --quick --asbr \
            --sample=2000:10000:100000 --sample-ref \
            --min-mips="$MIPS_FLOOR" --json="$report" \
            > "$tmpdir/sampling_log" 2>&1; then
        echo "FAIL: sampled run for $bench failed (or sim speed below" \
             "${MIPS_FLOOR} MIPS):" >&2
        tail -5 "$tmpdir/sampling_log" >&2
        exit 1
    fi
    "$STATS" validate "$report" > /dev/null
    if ! grep -q '"within_bound": true' "$report"; then
        echo "FAIL: $bench sampled CPI estimate outside its error bound" >&2
        grep -A5 '"reference"' "$report" >&2
        exit 1
    fi
    echo "ci/bench-report.sh: $bench sampled CPI within bound, >=${MIPS_FLOOR} MIPS"
done

"$SWEEP" "${SWEEP_ARGS[@]}" --json="$tmpdir/sweep_serial.json" > /dev/null
"$SWEEP" "${SWEEP_ARGS[@]}" --threads="$THREADS" \
    --json="$tmpdir/sweep_parallel.json" > /dev/null
if ! diff -q "$tmpdir/sweep_serial.json" "$tmpdir/sweep_parallel.json" \
        > /dev/null; then
    echo "FAIL: asbr-sweep diverges between --threads=1 and" \
         "--threads=$THREADS:" >&2
    diff "$tmpdir/sweep_serial.json" "$tmpdir/sweep_parallel.json" \
        | head -20 >&2
    exit 1
fi
"$STATS" validate "$tmpdir/sweep_serial.json"
echo "ci/bench-report.sh: asbr-sweep report is schema-valid and" \
     "thread-count-invariant"

# ----------------------------------------------- predictor lookup floor ----
# The strong predictors sit on the fetch critical path of every simulated
# cycle, so a throughput collapse is a functional regression for sweep
# runtimes.  Gate BM_TagePredict / BM_PerceptronPredict (one predict+update
# round trip) behind a conservative per-op ceiling — defaults to 2000 ns,
# override with $PREDICT_NS_CEILING; set it to 0 to skip (e.g. on a heavily
# loaded host).
MICRO="$BUILD_DIR/bench/micro_throughput"
PREDICT_NS_CEILING=${PREDICT_NS_CEILING:-2000}
if [[ ! -x "$MICRO" ]]; then
    echo "ci/bench-report.sh: $MICRO not built; skipping predictor floor" >&2
elif [[ "$PREDICT_NS_CEILING" == "0" ]]; then
    echo "ci/bench-report.sh: predictor floor gate skipped (ceiling 0)"
else
    "$MICRO" --benchmark_filter='BM_TagePredict|BM_PerceptronPredict' \
        --benchmark_format=json > "$tmpdir/micro.json" 2> /dev/null
    if ! python3 - "$tmpdir/micro.json" "$PREDICT_NS_CEILING" <<'EOF'
import json, sys
doc = json.load(open(sys.argv[1]))
ceiling = float(sys.argv[2])
names = set()
for bench in doc["benchmarks"]:
    ns = bench["real_time"]  # per-iteration, time_unit ns by default
    names.add(bench["name"])
    if bench.get("time_unit", "ns") != "ns" or ns > ceiling:
        print(f"FAIL: {bench['name']} at {ns:.0f} ns/op exceeds the "
              f"{ceiling:.0f} ns ceiling", file=sys.stderr)
        sys.exit(1)
    print(f"ci/bench-report.sh: {bench['name']} {ns:.0f} ns/op "
          f"(ceiling {ceiling:.0f})")
missing = {"BM_TagePredict", "BM_PerceptronPredict"} - names
if missing:
    print(f"FAIL: micro_throughput did not run {sorted(missing)}",
          file=sys.stderr)
    sys.exit(1)
EOF
    then
        exit 1
    fi
fi

#!/usr/bin/env bash
# CI gate: crash-safe sweeps (docs/robustness.md).
#
# Proves, with the real binaries, the three durable-execution properties the
# unit tests pin at the library layer:
#
#   1. kill-and-resume — an asbr-sweep SIGKILL'd mid-grid and resumed with
#      --resume must write a report byte-identical to the run that never
#      crashed, at --threads=1 and --threads=8;
#   2. torn-journal replay — appending garbage + a torn half-record to the
#      journal must not corrupt the resume (same byte-identity);
#   3. quarantine — a persistently failing job (1 ms wall-clock watchdog)
#      must land in the report's failed_jobs section with exit code 3, not
#      abort the grid; and the same kill-and-resume must hold for an
#      asbr-faults campaign.
#
# The kill is timed to land mid-simulation: the sweep gets enough samples to
# run for several seconds, and the journal is required to be non-empty but
# incomplete at the moment of death (otherwise the test degenerates).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
SWEEP="$BUILD_DIR/tools/asbr-sweep"
FAULTS="$BUILD_DIR/tools/asbr-faults"
STATS="$BUILD_DIR/tools/asbr-stats"

for tool in "$SWEEP" "$FAULTS" "$STATS"; do
    if [[ ! -x "$tool" ]]; then
        echo "ci/resume.sh: $tool not built; run cmake --build first" >&2
        exit 1
    fi
done

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
status=0

# A grid long enough (~6 adpcm-enc/dec runs at 60k samples) that a kill
# 1.5 s in reliably lands mid-grid on CI hardware.
SWEEP_ARGS=(--adpcm=60000 --workloads=adpcm-enc,adpcm-dec --bits=2,4
            --baseline --seed=2001)

echo "--- one-shot reference (serial)"
"$SWEEP" "${SWEEP_ARGS[@]}" --threads=1 --json="$tmpdir/oneshot.json" \
    > /dev/null 2>&1

for threads in 1 8; do
    dir="$tmpdir/journal_t$threads"
    echo "--- kill-and-resume at --threads=$threads"
    "$SWEEP" "${SWEEP_ARGS[@]}" --threads=$threads --journal="$dir" \
        --json="$tmpdir/never_t$threads.json" > /dev/null 2>&1 &
    pid=$!
    sleep 1.5
    kill -9 "$pid" 2> /dev/null || true
    wait "$pid" 2> /dev/null || true

    if [[ ! -s "$dir/journal.jsonl" ]]; then
        echo "FAIL: journal empty after 1.5s — kill landed before any work" >&2
        status=1
        continue
    fi
    if [[ -f "$tmpdir/never_t$threads.json" ]]; then
        echo "FAIL: sweep finished before the kill — grid too small to" \
             "exercise resume" >&2
        status=1
        continue
    fi

    if [[ $threads -eq 8 ]]; then
        # Torn-journal replay: garbage + a half-written record must be
        # skipped, not parsed into state.
        printf 'definitely not json\n{"status":"done","jobKey":"x","att' \
            >> "$dir/journal.jsonl"
    fi

    if ! "$SWEEP" "${SWEEP_ARGS[@]}" --threads=$threads --journal="$dir" \
            --resume --json="$tmpdir/resumed_t$threads.json" \
            > /dev/null 2> "$tmpdir/resume.log"; then
        echo "FAIL: --resume run failed:" >&2
        cat "$tmpdir/resume.log" >&2
        status=1
        continue
    fi
    if ! grep -q 'resumed' "$tmpdir/resume.log"; then
        echo "FAIL: resume log never mentions resumed jobs" >&2
        status=1
    fi
    if ! cmp -s "$tmpdir/oneshot.json" "$tmpdir/resumed_t$threads.json"; then
        echo "FAIL: resumed sweep differs from the one-shot run at" \
             "--threads=$threads:" >&2
        diff "$tmpdir/oneshot.json" "$tmpdir/resumed_t$threads.json" \
            | head -20 >&2
        status=1
    else
        echo "ok: resumed sweep byte-identical at --threads=$threads"
    fi
    "$STATS" validate "$tmpdir/resumed_t$threads.json" > /dev/null || {
        echo "FAIL: resumed sweep report does not validate" >&2
        status=1
    }
done

# ------------------------------------------------------------ quarantine ---
echo "--- quarantine (1 ms wall-clock watchdog)"
set +e
"$SWEEP" --workloads=g721-enc --bits=2 --g721=20000 --job-timeout=1 \
    --max-attempts=2 --journal="$tmpdir/qj" --json="$tmpdir/q.json" \
    > /dev/null 2> "$tmpdir/q.log"
code=$?
set -e
if [[ $code -ne 3 ]]; then
    echo "FAIL: quarantined sweep exited $code, want 3:" >&2
    cat "$tmpdir/q.log" >&2
    status=1
elif ! grep -q '"failed_jobs"' "$tmpdir/q.json" \
        || ! grep -q 'job watchdog' "$tmpdir/q.json"; then
    echo "FAIL: quarantined job missing from the report's failed_jobs" >&2
    status=1
else
    echo "ok: watchdogged job quarantined into failed_jobs (exit 3)"
fi
"$STATS" validate "$tmpdir/q.json" > /dev/null || {
    echo "FAIL: quarantine report does not validate" >&2
    status=1
}

# ----------------------------------------------- fault-campaign resume -----
echo "--- fault-campaign kill-and-resume"
CAMPAIGN_ARGS=(campaign --bench=g721-enc --quick --injections=24
               --fault-seed=11)
"$FAULTS" "${CAMPAIGN_ARGS[@]}" --json="$tmpdir/fc_oneshot.json" \
    > /dev/null 2>&1
"$FAULTS" "${CAMPAIGN_ARGS[@]}" --journal="$tmpdir/fcj" \
    --json="$tmpdir/fc_never.json" > /dev/null 2>&1 &
pid=$!
sleep 2
kill -9 "$pid" 2> /dev/null || true
wait "$pid" 2> /dev/null || true

if [[ -f "$tmpdir/fc_never.json" ]]; then
    echo "note: campaign finished before the kill; resume degenerates to" \
         "full splice (still byte-checked)" >&2
fi
if ! "$FAULTS" "${CAMPAIGN_ARGS[@]}" --journal="$tmpdir/fcj" --resume \
        --json="$tmpdir/fc_resumed.json" > /dev/null 2>&1; then
    echo "FAIL: campaign --resume failed" >&2
    status=1
elif ! cmp -s "$tmpdir/fc_oneshot.json" "$tmpdir/fc_resumed.json"; then
    echo "FAIL: resumed campaign differs from the one-shot run:" >&2
    diff "$tmpdir/fc_oneshot.json" "$tmpdir/fc_resumed.json" | head -20 >&2
    status=1
else
    echo "ok: resumed fault campaign byte-identical"
fi
"$FAULTS" validate "$tmpdir/fc_resumed.json" > /dev/null || {
    echo "FAIL: resumed fault report does not validate" >&2
    status=1
}

if [[ $status -eq 0 ]]; then
    echo "ok: SIGKILL'd sweeps and campaigns resume byte-identically;" \
         "poisoned jobs quarantine instead of aborting"
fi
exit $status

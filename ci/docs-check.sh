#!/usr/bin/env bash
# CI gate: keep the documentation honest.
#
# 1. Every relative markdown link in README.md, DESIGN.md, EXPERIMENTS.md,
#    ROADMAP.md and docs/*.md must point at a file that exists.
# 2. docs/metrics.md must stay in sync with the metric registry: every name
#    `asbr-stats counters` prints must appear (backticked) in the doc, and
#    every backticked dotted metric name in the doc must exist in the
#    registry.  Skips gracefully when asbr-stats has not been built (the
#    lint runner may not have a build tree).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
STATS="$BUILD_DIR/tools/asbr-stats"
status=0

# ------------------------------------------------------------ link check ----
docs=(README.md DESIGN.md EXPERIMENTS.md ROADMAP.md docs/*.md)
for doc in "${docs[@]}"; do
    [[ -f "$doc" ]] || continue
    dir=$(dirname "$doc")
    # Extract markdown link targets: [text](target)
    while IFS= read -r target; do
        case "$target" in
            http://*|https://*|mailto:*|\#*) continue ;;
        esac
        path=${target%%#*}               # drop fragment
        [[ -n "$path" ]] || continue
        if [[ ! -e "$dir/$path" && ! -e "$path" ]]; then
            echo "FAIL: $doc links to missing file '$target'" >&2
            status=1
        fi
    done < <(grep -o '\[[^]]*\]([^)]*)' "$doc" | sed 's/.*(\(.*\))/\1/')
    echo "ok: links in $doc"
done

# -------------------------------------------------------- metrics <-> doc ----
if [[ ! -x "$STATS" ]]; then
    echo "ci/docs-check.sh: $STATS not built; skipping metric-name check" >&2
    exit $status
fi
if [[ ! -f docs/metrics.md ]]; then
    echo "FAIL: docs/metrics.md is missing" >&2
    exit 1
fi

registry=$("$STATS" counters | awk '{print $1}' | sort)

# Registry -> doc: every registered metric must be documented.
while IFS= read -r name; do
    if ! grep -q "\`$name\`" docs/metrics.md; then
        echo "FAIL: metric '$name' is registered but not documented in docs/metrics.md" >&2
        status=1
    fi
done <<< "$registry"

# Doc -> registry: every backticked dotted metric name must exist (schema
# identifiers asbr.sim_report / asbr.bench_report are names of documents,
# not metrics).
documented=$(grep -o '`\(pipeline\|mem\|bp\|asbr\|engine\|wcet\|selection\|sim\)\.[a-z0-9_.]*`' docs/*.md \
    | sed 's/.*`\(.*\)`/\1/' \
    | grep -v -e '^asbr\.sim_report$' -e '^asbr\.bench_report$' \
              -e '^asbr\.fault_report$' -e '^asbr\.analysis_report$' \
              -e '^asbr\.sweep_report$' -e '^asbr\.wcet_report$' \
              -e '^asbr\.sampling_report$' -e '^asbr\.ipa_report$' \
    | sort -u)
while IFS= read -r name; do
    [[ -n "$name" ]] || continue
    if ! grep -qx "$name" <<< "$registry"; then
        echo "FAIL: docs mention metric '$name' which is not in the registry" >&2
        status=1
    fi
done <<< "$documented"

if [[ $status -eq 0 ]]; then
    echo "ok: docs/metrics.md matches the metric registry ($(wc -l <<< "$registry") names)"
fi

# -------------------------------------------- predictor tokens <-> docs ----
# The PredictorRegistry is the single source of truth for construction
# tokens: every family `asbr-stats predictors` lists must appear backticked
# in docs/predictors.md and README.md, and every backticked token-looking
# word in the docs' predictor tables must be a registered family.
if [[ ! -f docs/predictors.md ]]; then
    echo "FAIL: docs/predictors.md is missing" >&2
    status=1
else
    tokens=$("$STATS" predictors | awk '{print $1}' | sort)
    while IFS= read -r token; do
        [[ -n "$token" ]] || continue
        for doc in docs/predictors.md README.md; do
            if ! grep -q "\`$token\`" "$doc"; then
                echo "FAIL: predictor token '$token' is registered but not" \
                     "listed in $doc" >&2
                status=1
            fi
        done
    done <<< "$tokens"
    # Doc -> registry: the token column of docs/predictors.md's family table
    # (backticked first cell of each row) must resolve.
    documented_tokens=$(awk -F'|' '/^\| `/{print $2}' docs/predictors.md \
        | grep -o '`[a-z0-9-]*`' | tr -d '`' | sort -u)
    while IFS= read -r token; do
        [[ -n "$token" ]] || continue
        if ! grep -qx "$token" <<< "$tokens"; then
            echo "FAIL: docs/predictors.md lists token '$token' which is not" \
                 "in the registry" >&2
            status=1
        fi
    done <<< "$documented_tokens"
    if [[ $status -eq 0 ]]; then
        echo "ok: docs/predictors.md and README.md list every registry token"
    fi
fi

# ------------------------------------------------- README <-> --help sync ----
# `asbr-stats --help` is the single source of truth for the subcommand list:
# every command it prints (first word of each line in the "commands:" block)
# must be documented in README.md as `asbr-stats <command>`, in the same
# order.
commands=$("$STATS" --help 2>/dev/null \
    | awk '/^commands:$/{f=1; next} f && /^$/{exit} f {print $1}')
if [[ -z "$commands" ]]; then
    echo "FAIL: could not parse the commands block from asbr-stats --help" >&2
    status=1
fi
prev_line=0
prev_cmd=""
while IFS= read -r cmd; do
    [[ -n "$cmd" ]] || continue
    line=$(grep -n "asbr-stats $cmd" README.md | head -1 | cut -d: -f1)
    if [[ -z "$line" ]]; then
        echo "FAIL: README.md does not document 'asbr-stats $cmd'" >&2
        status=1
        continue
    fi
    if (( line < prev_line )); then
        echo "FAIL: README.md documents 'asbr-stats $cmd' before" \
             "'asbr-stats $prev_cmd' — keep --help order" >&2
        status=1
    fi
    prev_line=$line
    prev_cmd=$cmd
done <<< "$commands"
if [[ $status -eq 0 ]]; then
    echo "ok: README.md documents every asbr-stats subcommand in --help order"
fi

# ---------------------------------------- durability flags <-> --help sync ----
# The durable-execution flags (docs/robustness.md) must be discoverable from
# every tool's --help AND documented in README.md — a flag that exists in
# code but not in help text (or vice versa) is a docs bug.
for flag in --journal --resume --job-timeout --max-attempts; do
    if ! grep -q -- "$flag" README.md; then
        echo "FAIL: README.md does not mention the $flag flag" >&2
        status=1
    fi
    for tool in asbr-stats asbr-verify asbr-faults asbr-sweep; do
        bin="$BUILD_DIR/tools/$tool"
        [[ -x "$bin" ]] || continue
        if ! "$bin" --help 2>/dev/null | grep -q -- "$flag"; then
            echo "FAIL: $tool --help does not mention $flag" >&2
            status=1
        fi
    done
done
if [[ $status -eq 0 ]]; then
    echo "ok: durability flags appear in README.md and every tool's --help"
fi
exit $status

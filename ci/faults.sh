#!/usr/bin/env bash
# CI gate: pinned-seed fault-injection campaigns must reproduce their
# committed golden reports bit-for-bit (docs/fault-injection.md).
#
# Three campaigns run on small inputs (~5s total):
#   adpcm-enc unprotected  — must demonstrate at least one SDC
#   adpcm-enc protected    — must have zero SDCs/aborts/hangs and at least
#                            one detected+recovered outcome, at the same
#                            clean cycle count as the unprotected run
#                            (zero faults => zero protection overhead)
#   g721-enc  unprotected  — exercises the abort and hang classes
#
# Every report is re-validated against the asbr.fault_report schema and then
# whole-file diffed against tests/golden/ — any drift in sampling, timing or
# classification fails CI.  Regenerate goldens only for intentional changes:
#   ci/faults.sh --regen
#
# Campaigns run engine-parallel (--threads=8, override with $FAULT_THREADS).
# The committed goldens were produced serially: the engine samples
# injections in serial RNG order and merges records by submission index, so
# the parallel run must reproduce them bit-for-bit — the diff below is the
# CI-level determinism proof.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR=${BUILD_DIR:-build}
FAULTS="$BUILD_DIR/tools/asbr-faults"
GOLDEN_DIR=tests/golden
COMMON=(--adpcm=2000 --g721=800 --injections=48 --threads="${FAULT_THREADS:-8}")

if [[ ! -x "$FAULTS" ]]; then
    echo "ci/faults.sh: $FAULTS not built; run cmake --build first" >&2
    exit 1
fi

regen=0
[[ "${1:-}" == "--regen" ]] && regen=1

tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
status=0

# outcome <report> <name> -> count
outcome() {
    grep -o "\"$2\": [0-9]*" "$1" | head -1 | grep -o '[0-9]*$'
}

run_campaign() {
    local golden=$1; shift
    local out="$tmpdir/$(basename "$golden")"
    "$FAULTS" campaign "$@" --json="$out" > "$tmpdir/log" 2>&1 || {
        echo "FAIL: campaign $* crashed:" >&2
        cat "$tmpdir/log" >&2
        return 1
    }
    "$FAULTS" validate "$out" > /dev/null || {
        echo "FAIL: $out does not validate against asbr.fault_report" >&2
        return 1
    }
    if [[ $regen -eq 1 ]]; then
        cp "$out" "$GOLDEN_DIR/$(basename "$golden")"
        echo "regenerated $golden" >&2
    elif ! diff -q "$GOLDEN_DIR/$(basename "$golden")" "$out" > /dev/null; then
        echo "FAIL: $golden drifted from the pinned-seed campaign:" >&2
        diff "$GOLDEN_DIR/$(basename "$golden")" "$out" | head -20 >&2
        return 1
    else
        echo "ok: $golden reproduced bit-for-bit" >&2
    fi
    echo "$out"
}

adpcm=$(run_campaign fault_adpcm_enc.json \
    --bench=adpcm-enc --fault-seed=7 "${COMMON[@]}" | tail -1) || status=1
adpcm_prot=$(run_campaign fault_adpcm_enc_protected.json \
    --bench=adpcm-enc --protected --fault-seed=7 "${COMMON[@]}" | tail -1) \
    || status=1
g721=$(run_campaign fault_g721_enc.json \
    --bench=g721-enc --fault-seed=11 "${COMMON[@]}" | tail -1) || status=1

[[ $status -ne 0 ]] && exit $status

# ------------------------------------------- semantic assertions on top ----
if [[ "$(outcome "$adpcm" sdc)" -lt 1 ]]; then
    echo "FAIL: unprotected adpcm-enc campaign shows no SDC — the fault" \
         "model lost its teeth" >&2
    status=1
fi
for bad in sdc detected_aborted hang; do
    if [[ "$(outcome "$adpcm_prot" $bad)" -ne 0 ]]; then
        echo "FAIL: protected campaign still has $bad outcomes" >&2
        status=1
    fi
done
if [[ "$(outcome "$adpcm_prot" detected_recovered)" -lt 1 ]]; then
    echo "FAIL: protected campaign never recovered — parity is not firing" >&2
    status=1
fi
clean_unprot=$(outcome "$adpcm" clean_cycles)
clean_prot=$(outcome "$adpcm_prot" clean_cycles)
if [[ "$clean_unprot" != "$clean_prot" ]]; then
    echo "FAIL: fault-free protected run costs cycles ($clean_prot vs" \
         "$clean_unprot) — protection must be free until a fault hits" >&2
    status=1
fi

if [[ $status -eq 0 ]]; then
    echo "ok: fault campaigns reproduce goldens; protection converts SDCs" \
         "at zero fault-free overhead"
fi
exit $status

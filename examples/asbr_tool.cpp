// asbr_tool — command-line driver for the whole toolchain.
//
// Compile (or assemble) a program, optionally profile it, select branches,
// enable ASBR, and run it cycle-accurately:
//
//   asbr_tool prog.c                        # compile C, run with bimodal-2048
//   asbr_tool prog.s --predictor=gshare     # assemble, run with gshare
//   asbr_tool prog.c --asbr                 # profile + select + fold
//   asbr_tool prog.c --asbr --stage=commit --bit=8 --predictor=bi512
//   asbr_tool prog.c --disasm               # dump the linked program
//
// Inputs ending in .s/.asm are assembled; anything else is compiled as mcc C.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "asbr/asbr_unit.hpp"
#include "asbr/extract.hpp"
#include "asm/assembler.hpp"
#include "bp/predictor.hpp"
#include "bp/registry.hpp"
#include "cc/compile.hpp"
#include "isa/disasm.hpp"
#include "mem/memory.hpp"
#include "profile/profiler.hpp"
#include "profile/selection.hpp"
#include "sim/pipeline.hpp"

namespace {

using namespace asbr;

[[noreturn]] void usage() {
    std::puts(
        "usage: asbr_tool <file.c|file.s> [options]\n"
        "  --predictor=TOKEN      registry token, e.g. bimodal, bi512, gshare,\n"
        "                         tage:h8-16-32-64, perceptron:n256-h12\n"
        "                         ('asbr-stats predictors' lists all; default bimodal)\n"
        "  --asbr                 profile, select and fold branches\n"
        "  --bit=N                BIT entries for --asbr (default 16)\n"
        "  --stage=ex|mem|commit  BDT update point (default mem)\n"
        "  --no-schedule          disable the condition-scheduling pass\n"
        "  --disasm               print the linked program and exit\n"
        "  --verbose              per-branch statistics after the run");
    std::exit(2);
}

std::unique_ptr<BranchPredictor> makePredictor(const std::string& name) {
    std::string error;
    auto predictor = PredictorRegistry::instance().make(name, &error);
    if (!predictor) {
        std::fprintf(stderr, "asbr_tool: %s\n",
                     PredictorRegistry::instance()
                         .unknownTokenMessage(name)
                         .c_str());
        std::exit(2);
    }
    return predictor;
}

}  // namespace

int main(int argc, char** argv) {
    if (argc < 2) usage();
    const std::string path = argv[1];

    std::string predictorName = "bimodal";
    bool useAsbr = false;
    bool schedule = true;
    bool disasm = false;
    bool verbose = false;
    std::size_t bitEntries = 16;
    ValueStage stage = ValueStage::kMemEnd;

    for (int i = 2; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg.rfind("--predictor=", 0) == 0) predictorName = arg.substr(12);
        else if (arg == "--asbr") useAsbr = true;
        else if (arg.rfind("--bit=", 0) == 0) bitEntries = std::stoul(arg.substr(6));
        else if (arg == "--stage=ex") stage = ValueStage::kExEnd;
        else if (arg == "--stage=mem") stage = ValueStage::kMemEnd;
        else if (arg == "--stage=commit") stage = ValueStage::kCommit;
        else if (arg == "--no-schedule") schedule = false;
        else if (arg == "--disasm") disasm = true;
        else if (arg == "--verbose") verbose = true;
        else usage();
    }

    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "cannot open '%s'\n", path.c_str());
        return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    const std::string source = buffer.str();

    Program program;
    try {
        const bool isAsm = path.size() > 2 && (path.ends_with(".s") ||
                                               path.ends_with(".asm"));
        if (isAsm) {
            program = assemble(source);
            if (schedule) cc::scheduleConditionChains(program);
        } else {
            cc::CompileOptions options;
            options.scheduleConditions = schedule;
            program = cc::compile(source, options).program;
        }
    } catch (const std::exception& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 1;
    }

    if (disasm) {
        for (std::size_t i = 0; i < program.code.size(); ++i) {
            const std::uint32_t pc =
                program.textBase + static_cast<std::uint32_t>(i) * kInstrBytes;
            std::printf("%s\n", disassembleAt(program.code[i], pc).c_str());
        }
        return 0;
    }

    auto predictor = makePredictor(predictorName);
    AsbrUnit unit({stage, std::max<std::size_t>(bitEntries, 1), 1});
    FetchCustomizer* customizer = nullptr;

    if (useAsbr) {
        Memory profMem;
        profMem.loadProgram(program);
        const ProgramProfile profile = profileProgram(program, profMem);
        SelectionConfig selCfg;
        selCfg.bitCapacity = bitEntries;
        selCfg.threshold = stage == ValueStage::kExEnd
                               ? 2
                               : (stage == ValueStage::kMemEnd ? 3 : 4);
        const auto candidates = selectFoldableBranches(program, profile, {},
                                                       selCfg);
        std::printf("ASBR: %zu of %zu branch sites selected\n",
                    candidates.size(), profile.branches.size());
        unit.loadBank(0, extractBranchInfos(program, candidatePcs(candidates)));
        customizer = &unit;
    }

    Memory memory;
    memory.loadProgram(program);
    PipelineSim sim(program, memory, *predictor, PipelineConfig{}, customizer);
    PipelineResult result;
    try {
        result = sim.run();
    } catch (const std::exception& e) {
        std::fprintf(stderr, "simulation failed: %s\n", e.what());
        return 1;
    }

    if (!result.output.empty())
        std::printf("--- program output ---\n%s\n----------------------\n",
                    result.output.c_str());
    std::printf("exit code   : %d\n", result.exitCode);
    std::printf("cycles      : %llu   CPI %.3f\n",
                static_cast<unsigned long long>(result.stats.cycles),
                result.stats.cpi());
    std::printf("committed   : %llu   fetched %llu\n",
                static_cast<unsigned long long>(result.stats.committed),
                static_cast<unsigned long long>(result.stats.fetched));
    std::printf("branches    : %llu   predictor accuracy %.1f%%   folded %llu\n",
                static_cast<unsigned long long>(result.stats.condBranches),
                100.0 * result.stats.predictorAccuracy(),
                static_cast<unsigned long long>(result.stats.foldedBranches));
    std::printf("stalls      : load-use %llu, redirect %llu, i$ %llu, d$ %llu, "
                "mul/div %llu\n",
                static_cast<unsigned long long>(result.stats.loadUseStalls),
                static_cast<unsigned long long>(result.stats.redirectStallCycles),
                static_cast<unsigned long long>(result.stats.icacheStallCycles),
                static_cast<unsigned long long>(result.stats.dcacheStallCycles),
                static_cast<unsigned long long>(result.stats.mulDivStallCycles));

    if (verbose) {
        std::puts("per-branch sites (execs >= 10):");
        for (const auto& [pc, site] : result.stats.branchSites) {
            if (site.execs < 10) continue;
            std::printf("  0x%05x execs %-8llu taken %.2f acc %.2f folded %llu"
                        "  (line %d)\n",
                        pc, static_cast<unsigned long long>(site.execs),
                        site.takenRate(), site.accuracy(),
                        static_cast<unsigned long long>(site.folded),
                        program.sourceLine(pc));
        }
    }
    return 0;
}

// Extending the predictor library: plug a user-defined predictor into the
// pipeline through the BranchPredictor interface and race it against the
// built-ins on the ADPCM encoder.
//
// The custom predictor here is a two-level *local*-history predictor (PAg
// style): a per-branch history register indexes a shared pattern table —
// a design point the paper's related-work section alludes to but does not
// evaluate.
//
//   $ ./examples/custom_predictor
#include <cstdio>
#include <vector>

#include "bp/predictor.hpp"
#include "bp/bimodal.hpp"
#include "bp/gshare.hpp"
#include "bp/static_predictors.hpp"
#include "mem/memory.hpp"
#include "sim/pipeline.hpp"
#include "workloads/input_gen.hpp"
#include "workloads/workloads.hpp"

namespace {

using namespace asbr;

/// Two-level local-history predictor: 128 per-branch 6-bit histories, one
/// shared 2-bit-counter pattern table, plus a small BTB.
class LocalHistoryPredictor final : public BranchPredictor {
public:
    LocalHistoryPredictor() : counters_(1 << kHistoryBits, 1), btb_(512) {}

    [[nodiscard]] std::string name() const override { return "local-6bit/64"; }

    Prediction predict(std::uint32_t pc) override {
        const bool taken = counters_[index(pc)] >= 2;
        return {taken, taken ? btb_.lookup(pc) : std::nullopt};
    }

    void update(std::uint32_t pc, bool taken, std::uint32_t target) override {
        std::uint8_t& counter = counters_[index(pc)];
        if (taken && counter < 3) ++counter;
        if (!taken && counter > 0) --counter;
        std::uint8_t& history = histories_[historySlot(pc)];
        history = static_cast<std::uint8_t>(((history << 1) | (taken ? 1 : 0)) &
                                            ((1 << kHistoryBits) - 1));
        if (taken) btb_.update(pc, target);
    }

    void reset() override {
        std::fill(counters_.begin(), counters_.end(), std::uint8_t{1});
        histories_.fill(0);
        btb_.reset();
    }

    [[nodiscard]] std::uint64_t storageBits() const override {
        return counters_.size() * 2 + histories_.size() * kHistoryBits +
               btb_.storageBits();
    }

private:
    static constexpr int kHistoryBits = 6;
    [[nodiscard]] std::size_t historySlot(std::uint32_t pc) const {
        return (pc >> 2) & (histories_.size() - 1);
    }
    [[nodiscard]] std::size_t index(std::uint32_t pc) const {
        return histories_[historySlot(pc)];
    }

    std::vector<std::uint8_t> counters_;
    std::array<std::uint8_t, 128> histories_{};
    Btb btb_;
};

}  // namespace

int main() {
    using namespace asbr;

    const Program program = buildBench(BenchId::kAdpcmEncode);
    const auto pcm = generateSpeech(30'000, 17);

    auto race = [&](BranchPredictor& predictor) {
        Memory memory;
        memory.loadProgram(program);
        loadPcmInput(memory, program, pcm);
        PipelineSim sim(program, memory, predictor);
        const PipelineResult r = sim.run();
        std::printf("%-28s cycles %-10llu CPI %.3f accuracy %5.1f%% "
                    "storage %llu bits\n",
                    predictor.name().c_str(),
                    static_cast<unsigned long long>(r.stats.cycles),
                    r.stats.cpi(), 100.0 * r.stats.predictorAccuracy(),
                    static_cast<unsigned long long>(predictor.storageBits()));
        return r.stats.cycles;
    };

    std::puts("ADPCM Encode, 30k samples:");
    auto notTaken = makeNotTaken();
    auto bimodal = makeBimodal2048();
    auto gshare = makeGshare2048();
    LocalHistoryPredictor local;
    race(*notTaken);
    const std::uint64_t bimodalCycles = race(*bimodal);
    race(*gshare);
    const std::uint64_t localCycles = race(local);

    std::printf("\nlocal-history vs bimodal-2048: %+.2f%% cycles\n",
                100.0 * (static_cast<double>(localCycles) -
                         static_cast<double>(bimodalCycles)) /
                    static_cast<double>(bimodalCycles));
    return 0;
}

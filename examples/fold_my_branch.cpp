// Folding one branch by hand: the minimal end-to-end ASBR flow on a
// hand-written assembly loop with a data-dependent, hard-to-predict branch.
//
//   1. extract the branch's static information (BIT entry) from the image
//   2. load it into an AsbrUnit
//   3. run the pipeline with and without the unit and compare
//
//   $ ./examples/fold_my_branch
#include <cstdio>

#include "asbr/asbr_unit.hpp"
#include "asbr/extract.hpp"
#include "asm/assembler.hpp"
#include "bp/predictor.hpp"
#include "bp/bimodal.hpp"
#include "isa/disasm.hpp"
#include "mem/memory.hpp"
#include "sim/pipeline.hpp"

int main() {
    using namespace asbr;

    // The branch at `check` flips with bit 0 of a pseudo-random value — a
    // 50/50 branch no history predictor can learn, but whose predicate
    // register s1 is produced three instructions ahead: ASBR folds it.
    const Program program = assemble(R"(
main:   li   s0, 20000       # iterations
        li   s3, 12345       # xorshift-ish state
loop:   sll  t1, s3, 13
        xor  s3, s3, t1
        srl  t2, s3, 17
        xor  s3, s3, t2
        andi s1, s3, 1       # predicate producer
        addiu t3, t3, 1      # independent work...
        addiu t4, t4, 1
        addiu t5, t5, 1
check:  beqz s1, skip        # the hard branch (distance 4)
        addiu s4, s4, 1      # taken-path work
skip:   addiu s0, s0, -1
        addiu t6, t6, 1
        addiu t7, t7, 1
        bnez s0, loop        # the loop branch (distance 3)
        move a0, s4
        li   v0, 3
        sys
        li   a0, 0
        li   v0, 1
        sys
    )");

    const std::uint32_t hardBranch = program.symbol("check");
    const std::uint32_t loopBranch = program.symbol("skip") + 3 * kInstrBytes;
    const BranchInfo info = extractBranchInfo(program, hardBranch);
    std::printf("BIT entry for the hard branch:\n");
    std::printf("  PC   = 0x%05x (%s)\n", info.pc,
                disassembleAt(program.at(info.pc), info.pc).c_str());
    std::printf("  DI   = register %s, condition %s\n",
                regName(info.conditionReg), condName(info.cond));
    std::printf("  BTA  = 0x%05x\n", info.bta);
    std::printf("  BTI  = %s\n", disassemble(info.bti).c_str());
    std::printf("  BFI  = %s\n\n", disassemble(info.bfi).c_str());

    auto runOnce = [&program](AsbrUnit* unit) {
        Memory memory;
        memory.loadProgram(program);
        auto predictor = makeBimodal2048();
        PipelineSim sim(program, memory, *predictor, PipelineConfig{}, unit);
        return sim.run();
    };

    const PipelineResult base = runOnce(nullptr);

    AsbrUnit unit;  // default: post-EX forwarding update (threshold 3)
    unit.loadBank(0, extractBranchInfos(
                         program, std::vector<std::uint32_t>{hardBranch,
                                                             loopBranch}));
    const PipelineResult folded = runOnce(&unit);

    std::printf("baseline : %9llu cycles, %llu mispredicts, output \"%s\"\n",
                static_cast<unsigned long long>(base.stats.cycles),
                static_cast<unsigned long long>(base.stats.mispredicts),
                base.output.c_str());
    std::printf("ASBR     : %9llu cycles, %llu mispredicts, %llu folds, "
                "output \"%s\"\n",
                static_cast<unsigned long long>(folded.stats.cycles),
                static_cast<unsigned long long>(folded.stats.mispredicts),
                static_cast<unsigned long long>(folded.stats.foldedBranches),
                folded.output.c_str());
    std::printf("speedup  : %.1f%% fewer cycles, identical results: %s\n",
                100.0 *
                    (static_cast<double>(base.stats.cycles) -
                     static_cast<double>(folded.stats.cycles)) /
                    static_cast<double>(base.stats.cycles),
                base.output == folded.output ? "yes" : "NO");
    return base.output == folded.output ? 0 : 1;
}

// Observability: run a small loop under the cycle-accurate pipeline with a
// tracer attached, publish the run into a MetricRegistry, and emit both
// trace formats.
//
//   $ ./examples/observability            # prints counters + trace snippet
//   $ ./examples/observability trace.json # also writes a Chrome trace; open
//                                         # it in Perfetto / chrome://tracing
#include <cstdio>
#include <fstream>
#include <sstream>

#include "asm/assembler.hpp"
#include "bp/predictor.hpp"
#include "bp/bimodal.hpp"
#include "mem/memory.hpp"
#include "sim/pipeline.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

int main(int argc, char** argv) {
    using namespace asbr;

    // A branchy loop: count the even elements of an array.
    const Program program = assemble(R"(
        .data
values: .word 3, 1, 4, 1, 5, 9, 2, 6
        .text
main:   la   s0, values
        li   s1, 8          # element count
        li   s2, 0          # even count
loop:   lw   t0, 0(s0)
        addiu s0, s0, 4
        andi t0, t0, 1
        bnez t0, odd
        addiu s2, s2, 1
odd:    addiu s1, s1, -1
        bnez s1, loop
        move a0, s2
        li   v0, 3          # print integer syscall
        sys
        li   a0, 0
        li   v0, 1          # exit syscall
        sys
    )");

    Memory memory;
    memory.loadProgram(program);

    // Attach a tracer (only has an effect in ASBR_TRACING builds — the
    // default).  A null `config.tracer` means "tracing off" at runtime.
    Tracer tracer;
    PipelineConfig config;
    config.tracer = &tracer;

    auto predictor = makeBimodal2048();
    PipelineSim sim(program, memory, *predictor, config);
    const PipelineResult result = sim.run();
    std::printf("output \"%s\" in %llu cycles\n", result.output.c_str(),
                static_cast<unsigned long long>(result.stats.cycles));

    // Publish the run into a registry and walk the counters by name.
    MetricRegistry registry;
    result.stats.publish(registry);
    predictor->publishMetrics(registry);
    std::printf("\ncounters:\n");
    for (const auto& [name, counter] : registry.counters())
        std::printf("  %-34s %llu\n", name.c_str(),
                    static_cast<unsigned long long>(counter.value()));

    // The same events serialize as JSONL (grep/jq-friendly) ...
    std::ostringstream jsonl;
    tracer.writeJsonl(jsonl);
    std::printf("\nfirst trace events (%zu total):\n",
                tracer.events().size());
    std::istringstream lines(jsonl.str());
    std::string line;
    for (int i = 0; i < 5 && std::getline(lines, line); ++i)
        std::printf("  %s\n", line.c_str());

    // ... or as a Chrome trace_event document for Perfetto.
    if (argc > 1) {
        std::ofstream out(argv[1]);
        tracer.writeChrome(out);
        std::printf("\nwrote Chrome trace to %s\n", argv[1]);
    }
    return 0;
}

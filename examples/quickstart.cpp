// Quickstart: assemble a small ep32 program, run it on the functional ISS
// and on the cycle-accurate pipeline, and read the statistics.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "asm/assembler.hpp"
#include "bp/predictor.hpp"
#include "bp/bimodal.hpp"
#include "mem/memory.hpp"
#include "sim/functional.hpp"
#include "sim/pipeline.hpp"

int main() {
    using namespace asbr;

    // A tiny program: sum the words of an array, print the sum, exit.
    const Program program = assemble(R"(
        .data
values: .word 3, 1, 4, 1, 5, 9, 2, 6
        .text
main:   la   s0, values
        li   s1, 8          # element count
        li   s2, 0          # sum
loop:   lw   t0, 0(s0)
        addiu s0, s0, 4
        addiu s1, s1, -1
        addu s2, s2, t0
        bnez s1, loop
        move a0, s2
        li   v0, 3          # print integer syscall
        sys
        li   a0, 0
        li   v0, 1          # exit syscall
        sys
    )");

    // 1. Functional run: architectural results only.
    Memory functionalMemory;
    functionalMemory.loadProgram(program);
    FunctionalSim iss(program, functionalMemory);
    const FunctionalResult functional = iss.run();
    std::printf("functional : output \"%s\", %llu instructions\n",
                functional.output.c_str(),
                static_cast<unsigned long long>(functional.instructions));

    // 2. Cycle-accurate run with a bimodal predictor.
    Memory pipelineMemory;
    pipelineMemory.loadProgram(program);
    auto predictor = makeBimodal2048();
    PipelineSim pipeline(program, pipelineMemory, *predictor);
    const PipelineResult timed = pipeline.run();
    std::printf("pipeline   : output \"%s\", %llu cycles, CPI %.2f\n",
                timed.output.c_str(),
                static_cast<unsigned long long>(timed.stats.cycles),
                timed.stats.cpi());
    std::printf("branches   : %llu executed, %.0f%% predicted correctly\n",
                static_cast<unsigned long long>(timed.stats.condBranches),
                100.0 * timed.stats.predictorAccuracy());
    std::printf("stalls     : %llu load-use, %llu i$ cycles, %llu d$ cycles\n",
                static_cast<unsigned long long>(timed.stats.loadUseStalls),
                static_cast<unsigned long long>(timed.stats.icacheStallCycles),
                static_cast<unsigned long long>(timed.stats.dcacheStallCycles));
    return timed.output == functional.output ? 0 : 1;
}

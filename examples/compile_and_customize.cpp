// The full ASBR methodology on a user application, end to end:
//
//   C source  --mcc-->  ep32 program  --profile-->  branch statistics
//   --select-->  BIT contents  --fold-->  customized core, fewer cycles
//
// The application is a small reactive packet classifier — the kind of
// control-dominated code the paper's introduction motivates: a chain of
// data-dependent header tests with very little arithmetic in between.
//
//   $ ./examples/compile_and_customize
#include <cstdio>

#include "asbr/asbr_unit.hpp"
#include "asbr/extract.hpp"
#include "bp/predictor.hpp"
#include "bp/bimodal.hpp"
#include "cc/compile.hpp"
#include "mem/memory.hpp"
#include "profile/profiler.hpp"
#include "profile/selection.hpp"
#include "sim/pipeline.hpp"
#include "util/rng.hpp"

namespace {

constexpr const char* kClassifierSource = R"(
int packets[4096];     /* synthetic "headers", filled by the harness */
int n_packets;
int accept_count;
int drop_count;
int slow_path_count;

int classify(int hdr) {
    int proto = hdr & 3;
    int flags = (hdr >> 2) & 15;
    int len = (hdr >> 6) & 1023;
    if (proto == 0) return 0;             /* unknown protocol: drop */
    if (len == 0) return 0;               /* empty: drop */
    if (flags & 8) return 2;              /* urgent: slow path */
    if (proto == 3 && len > 512) return 2;
    if (flags & 1) return 1;              /* established: accept */
    if (len < 64) return 1;               /* short control frame: accept */
    return 2;
}

int main() {
    int n = n_packets;
    for (int i = 0; i < n; i++) {
        int verdict = classify(packets[i]);
        if (verdict == 0) drop_count++;
        else if (verdict == 1) accept_count++;
        else slow_path_count++;
    }
    __putint(accept_count);
    __putchar(47);       /* '/' */
    __putint(drop_count);
    __putchar(47);
    __putint(slow_path_count);
    return 0;
}
)";

}  // namespace

int main() {
    using namespace asbr;

    // Compile (with the condition-scheduling pass) and prepare the input.
    const cc::Compiled compiled = cc::compile(kClassifierSource);
    std::printf("compiled classifier: %zu instructions, scheduling moved %u\n",
                compiled.program.code.size(),
                compiled.schedule.instructionsMoved);

    Xorshift64 rng(99);
    const std::uint32_t packetsAddr = compiled.program.symbol("packets");
    const int packetCount = 4096;
    auto fillInput = [&](Memory& memory) {
        Xorshift64 local(99);
        for (int i = 0; i < packetCount; ++i)
            memory.writeWord(packetsAddr + 4 * static_cast<std::uint32_t>(i),
                             static_cast<std::int32_t>(local.next() & 0xFFFF));
        memory.writeWord(compiled.program.symbol("n_packets"), packetCount);
    };
    (void)rng;

    // Profile and pick the BIT contents.
    Memory profileMemory;
    profileMemory.loadProgram(compiled.program);
    fillInput(profileMemory);
    const ProgramProfile profile = profileProgram(compiled.program, profileMemory);

    SelectionConfig selection;
    selection.bitCapacity = 8;
    selection.threshold = 3;
    const auto candidates =
        selectFoldableBranches(compiled.program, profile, {}, selection);
    std::printf("profiler: %zu branch sites, %zu selected for the BIT\n",
                profile.branches.size(), candidates.size());
    for (const Candidate& c : candidates)
        std::printf("  pc 0x%05x  execs %-8llu taken %.2f foldable %.2f\n",
                    c.pc, static_cast<unsigned long long>(c.execs), c.takenRate,
                    c.foldableFraction);

    // Run baseline vs customized core.
    auto runOnce = [&](AsbrUnit* unit) {
        Memory memory;
        memory.loadProgram(compiled.program);
        fillInput(memory);
        auto predictor = makeBimodal(512, 512);
        PipelineSim sim(compiled.program, memory, *predictor, PipelineConfig{},
                        unit);
        return sim.run();
    };
    const PipelineResult base = runOnce(nullptr);

    AsbrUnit unit;
    unit.loadBank(0, extractBranchInfos(compiled.program,
                                        candidatePcs(candidates)));
    const PipelineResult custom = runOnce(&unit);

    std::printf("\nbaseline  : %llu cycles, CPI %.2f, output %s\n",
                static_cast<unsigned long long>(base.stats.cycles),
                base.stats.cpi(), base.output.c_str());
    std::printf("customized: %llu cycles, CPI %.2f, %llu folds, output %s\n",
                static_cast<unsigned long long>(custom.stats.cycles),
                custom.stats.cpi(),
                static_cast<unsigned long long>(custom.stats.foldedBranches),
                custom.output.c_str());
    std::printf("improvement: %.1f%%\n",
                100.0 *
                    (static_cast<double>(base.stats.cycles) -
                     static_cast<double>(custom.stats.cycles)) /
                    static_cast<double>(base.stats.cycles));
    return base.output == custom.output ? 0 : 1;
}

// Unit tests for instruction semantics (exec) and the functional ISS.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "mem/memory.hpp"
#include "sim/functional.hpp"

namespace asbr {
namespace {

/// Assemble, load and run a program functionally; returns the result and
/// exposes final state via the out-parameters.
FunctionalResult runAsm(const std::string& src, ArchState* finalState = nullptr,
                        Memory* extMem = nullptr) {
    const Program p = assemble(src);
    Memory localMem;
    Memory& mem = extMem ? *extMem : localMem;
    mem.loadProgram(p);
    FunctionalSim sim(p, mem);
    const FunctionalResult r = sim.run(10'000'000);
    if (finalState) *finalState = sim.state();
    return r;
}

/// Standard exit sequence with exit code taken from a0.
constexpr const char* kExit = R"(
        li   v0, 1
        sys
)";

TEST(ExecTest, ArithmeticBasics) {
    ArchState st;
    runAsm(std::string(R"(
main:   li   t0, 7
        li   t1, -3
        addu t2, t0, t1      # 4
        subu t3, t0, t1      # 10
        and  t4, t0, t1      # 7 & -3 = 5
        or   t5, t0, t1      # -3
        xor  t6, t0, t1      # 7 ^ -3
        nor  t7, t0, t1      # ~(7 | -3)
        move a0, t2
)") + kExit, &st);
    EXPECT_EQ(st.reg(10), 4);
    EXPECT_EQ(st.reg(11), 10);
    EXPECT_EQ(st.reg(12), 7 & -3);
    EXPECT_EQ(st.reg(13), 7 | -3);
    EXPECT_EQ(st.reg(14), 7 ^ -3);
    EXPECT_EQ(st.reg(15), ~(7 | -3));
}

TEST(ExecTest, SetLessThanSignedVsUnsigned) {
    ArchState st;
    runAsm(std::string(R"(
main:   li   t0, -1
        li   t1, 1
        slt  t2, t0, t1      # -1 < 1 -> 1
        sltu t3, t0, t1      # 0xFFFFFFFF < 1 -> 0
        slti t4, t0, 0       # 1
        sltiu t5, t1, -1     # 1 < 0xFFFFFFFF -> 1
)") + kExit, &st);
    EXPECT_EQ(st.reg(10), 1);
    EXPECT_EQ(st.reg(11), 0);
    EXPECT_EQ(st.reg(12), 1);
    EXPECT_EQ(st.reg(13), 1);
}

TEST(ExecTest, ShiftsMaskAmounts) {
    ArchState st;
    runAsm(std::string(R"(
main:   li   t0, -8
        sra  t1, t0, 1        # -4
        srl  t2, t0, 1        # 0x7FFFFFFC
        sll  t3, t0, 2        # -32
        li   t4, 33
        srav t5, t0, t4       # shift by 33&31 = 1 -> -4
)") + kExit, &st);
    EXPECT_EQ(st.reg(9), -4);
    EXPECT_EQ(st.reg(10), 0x7FFFFFFC);
    EXPECT_EQ(st.reg(11), -32);
    EXPECT_EQ(st.reg(13), -4);
}

TEST(ExecTest, MultiplyDivide) {
    ArchState st;
    runAsm(std::string(R"(
main:   li   t0, -7
        li   t1, 3
        mul  t2, t0, t1       # -21
        rem  t3, t0, t1       # -1
        div  t4, t0, t1       # -2
        li   t5, 100000
        mul  t6, t5, t5       # low 32 of 10^10
        mulh t7, t5, t5       # high 32 of 10^10
        li   t8, 0
        div  s0, t0, t8       # /0 -> 0 (defined)
        rem  s1, t0, t8       # %0 -> t0 (defined)
)") + kExit, &st);
    EXPECT_EQ(st.reg(10), -21);
    EXPECT_EQ(st.reg(11), -1);
    EXPECT_EQ(st.reg(12), -2);
    const std::int64_t big = 100000LL * 100000LL;
    EXPECT_EQ(st.reg(14), static_cast<std::int32_t>(big));
    EXPECT_EQ(st.reg(15), static_cast<std::int32_t>(big >> 32));
    EXPECT_EQ(st.reg(16), 0);
    EXPECT_EQ(st.reg(17), -7);
}

TEST(ExecTest, LoadStoreAllWidths) {
    ArchState st;
    runAsm(std::string(R"(
        .data
buf:    .space 16
        .text
main:   la   t0, buf
        li   t1, -2
        sb   t1, 0(t0)
        sh   t1, 2(t0)
        sw   t1, 4(t0)
        lb   t2, 0(t0)        # -2
        lbu  t3, 0(t0)        # 254
        lh   t4, 2(t0)        # -2
        lhu  t5, 2(t0)        # 65534
        lw   t6, 4(t0)        # -2
)") + kExit, &st);
    EXPECT_EQ(st.reg(10), -2);
    EXPECT_EQ(st.reg(11), 254);
    EXPECT_EQ(st.reg(12), -2);
    EXPECT_EQ(st.reg(13), 65534);
    EXPECT_EQ(st.reg(14), -2);
}

TEST(ExecTest, R0IsAlwaysZero) {
    ArchState st;
    runAsm(std::string(R"(
main:   li   t0, 5
        addu zero, t0, t0
        addu t1, zero, zero
)") + kExit, &st);
    EXPECT_EQ(st.reg(0), 0);
    EXPECT_EQ(st.reg(9), 0);
}

TEST(ExecTest, BranchesAllConditions) {
    ArchState st;
    runAsm(std::string(R"(
main:   li   t0, 0
        li   s0, 0
        beqz t0, l1
        li   s0, 99
l1:     li   t1, 5
        bgtz t1, l2
        li   s0, 99
l2:     li   t2, -5
        bltz t2, l3
        li   s0, 99
l3:     blez t2, l4
        li   s0, 99
l4:     bgez t1, l5
        li   s0, 99
l5:     bnez t1, l6
        li   s0, 99
l6:     bnez t0, bad          # not taken: t0 == 0
        bgtz t0, bad          # not taken
        bltz t1, bad          # not taken
        move a0, s0
)") + kExit + "bad: li a0, 1\n li v0, 1\n sys\n", &st);
    EXPECT_EQ(st.reg(16), 0);
}

TEST(ExecTest, CallAndReturn) {
    ArchState st;
    runAsm(std::string(R"(
main:   li   a0, 20
        jal  double_it
        move s0, v0
)") + kExit + R"(
double_it:
        addu v0, a0, a0
        jr   ra
)", &st);
    EXPECT_EQ(st.reg(16), 40);
}

TEST(ExecTest, JalrIndirectCall) {
    ArchState st;
    runAsm(std::string(R"(
main:   la   t0, callee
        li   a0, 5
        jalr t0
        move s0, v0
)") + kExit + R"(
callee: addu v0, a0, a0
        jr   ra
)", &st);
    EXPECT_EQ(st.reg(16), 10);
}

TEST(ExecTest, SyscallOutput) {
    const FunctionalResult r = runAsm(R"(
main:   li   a0, 72          # 'H'
        li   v0, 2
        sys
        li   a0, -42
        li   v0, 3
        sys
        li   a0, 7
        li   v0, 1
        sys
)");
    EXPECT_EQ(r.output, "H-42");
    EXPECT_EQ(r.exitCode, 7);
    EXPECT_TRUE(r.exited);
}

TEST(ExecTest, ExitCodeZeroDefault) {
    const FunctionalResult r = runAsm("main: li a0, 0\n li v0, 1\n sys\n");
    EXPECT_EQ(r.exitCode, 0);
}

TEST(FunctionalSimTest, InstructionCountExact) {
    const FunctionalResult r = runAsm(R"(
main:   li   t0, 10          # 1
loop:   addiu t0, t0, -1     # 10x
        bnez t0, loop        # 10x
        li   v0, 1           # 1
        li   a0, 0           # 1  (note: a0 set after v0; order irrelevant)
        sys                  # 1
    )");
    EXPECT_EQ(r.instructions, 1u + 10 + 10 + 3);
}

TEST(FunctionalSimTest, RunawayProgramHitsLimit) {
    const Program p = assemble("main: j main\n");
    Memory mem;
    mem.loadProgram(p);
    FunctionalSim sim(p, mem);
    EXPECT_THROW(sim.run(1000), EnsureError);
}

TEST(FunctionalSimTest, TraceHookSeesEveryCommit) {
    const Program p = assemble("main: li t0, 3\nloop: addiu t0, t0, -1\n bnez t0, loop\n li v0, 1\n li a0, 0\n sys\n");
    Memory mem;
    mem.loadProgram(p);
    FunctionalSim sim(p, mem);
    std::uint64_t count = 0, branches = 0;
    sim.setTraceHook([&](const Instruction&, const StepResult& sr) {
        ++count;
        if (sr.isBranch) ++branches;
    });
    const FunctionalResult r = sim.run();
    EXPECT_EQ(count, r.instructions);
    EXPECT_EQ(branches, 3u);
}

TEST(FunctionalSimTest, MemoryVisibleAfterRun) {
    Memory mem;
    runAsm(std::string(R"(
        .data
out:    .space 4
        .text
main:   li  t0, 1234
        sw  t0, out
)") + kExit, nullptr, &mem);
    const Program p = assemble(".data\nout: .space 4\n");
    EXPECT_EQ(mem.readWord(p.symbol("out")), 1234);
}

TEST(FunctionalSimTest, StackPointerInitialized) {
    ArchState st;
    runAsm(std::string(R"(
main:   addiu sp, sp, -16
        li   t0, 77
        sw   t0, 12(sp)
        lw   s0, 12(sp)
        addiu sp, sp, 16
)") + kExit, &st);
    EXPECT_EQ(st.reg(16), 77);
    EXPECT_EQ(st.reg(reg::sp), static_cast<std::int32_t>(kStackTop));
}

}  // namespace
}  // namespace asbr

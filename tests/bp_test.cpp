// Unit tests for the branch predictor library.
#include <gtest/gtest.h>

#include "bp/predictor.hpp"
#include "bp/bimodal.hpp"
#include "bp/gshare.hpp"
#include "bp/tournament.hpp"
#include "bp/static_predictors.hpp"
#include "util/rng.hpp"

namespace asbr {
namespace {

TEST(BtbTest, MissUpdateHit) {
    Btb btb(16);
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    btb.update(0x1000, 0x2000);
    EXPECT_EQ(btb.lookup(0x1000), 0x2000u);
}

TEST(BtbTest, AliasingEvicts) {
    Btb btb(16);
    btb.update(0x1000, 0x2000);
    btb.update(0x1000 + 16 * 4, 0x3000);  // same index, different tag
    EXPECT_FALSE(btb.lookup(0x1000).has_value());
    EXPECT_EQ(btb.lookup(0x1000 + 16 * 4), 0x3000u);
}

TEST(BtbTest, TagPreventsFalseHit) {
    Btb btb(16);
    btb.update(0x1000, 0x2000);
    EXPECT_FALSE(btb.lookup(0x1000 + 16 * 4).has_value());
}

TEST(NotTakenTest, AlwaysPredictsNotTaken) {
    NotTakenPredictor p;
    for (int i = 0; i < 10; ++i) {
        p.update(0x1000, true, 0x2000);
        EXPECT_FALSE(p.predict(0x1000).effectiveTaken());
    }
    EXPECT_EQ(p.storageBits(), 0u);
}

TEST(BimodalTest, LearnsStableDirection) {
    BimodalPredictor p(64, 64);
    // Train taken.
    for (int i = 0; i < 4; ++i) p.update(0x1000, true, 0x2000);
    EXPECT_TRUE(p.predict(0x1000).taken);
    EXPECT_EQ(p.predict(0x1000).target, 0x2000u);
    EXPECT_TRUE(p.predict(0x1000).effectiveTaken());
    // Saturating: one not-taken does not flip it.
    p.update(0x1000, false, 0x2000);
    EXPECT_TRUE(p.predict(0x1000).taken);
    // Two more do.
    p.update(0x1000, false, 0x2000);
    p.update(0x1000, false, 0x2000);
    EXPECT_FALSE(p.predict(0x1000).taken);
}

TEST(BimodalTest, InitialStateIsWeaklyNotTaken) {
    BimodalPredictor p(64, 64);
    EXPECT_FALSE(p.predict(0x1000).taken);
    p.update(0x1000, true, 0x2000);
    EXPECT_TRUE(p.predict(0x1000).taken);  // counter 1 -> 2
}

TEST(BimodalTest, PredictTakenWithoutBtbEntryCannotRedirect) {
    BimodalPredictor p(64, 4);
    // Train direction via a PC whose BTB entry later gets evicted by an alias.
    for (int i = 0; i < 3; ++i) p.update(0x1000, true, 0x2000);
    p.update(0x1000 + 4 * 4, true, 0x9000);  // evicts 0x1000's BTB entry
    const Prediction pr = p.predict(0x1000);
    EXPECT_TRUE(pr.taken);
    EXPECT_FALSE(pr.target.has_value());
    EXPECT_FALSE(pr.effectiveTaken());
}

TEST(BimodalTest, CounterAliasingSharesState) {
    BimodalPredictor p(4, 4);  // tiny: pcs 16 bytes apart alias
    for (int i = 0; i < 4; ++i) p.update(0x1000, true, 0x2000);
    EXPECT_TRUE(p.predict(0x1000 + 4 * 4).taken);  // aliased counter
}

TEST(BimodalTest, StorageBits) {
    BimodalPredictor p(2048, 2048);
    EXPECT_EQ(p.storageBits(), 2048u * 2 + 2048u * 61);
    EXPECT_EQ(p.name(), "bimodal-2048/btb-2048");
}

TEST(GShareTest, LearnsAlternatingPatternViaHistory) {
    GSharePredictor p(8, 1024, 1024);
    // Alternating T/N/T/N at one PC: bimodal oscillates, gshare learns.
    bool taken = false;
    for (int i = 0; i < 200; ++i) {
        taken = !taken;
        p.update(0x1000, taken, 0x2000);
    }
    int correct = 0;
    taken = false;
    for (int i = 0; i < 100; ++i) {
        taken = !taken;
        if (p.predict(0x1000).taken == taken) ++correct;
        p.update(0x1000, taken, 0x2000);
    }
    EXPECT_GE(correct, 95);
}

TEST(GShareTest, BimodalCannotLearnAlternating) {
    BimodalPredictor p(1024, 1024);
    bool taken = false;
    int correct = 0;
    for (int i = 0; i < 200; ++i) {
        taken = !taken;
        if (p.predict(0x1000).taken == taken && i >= 100) ++correct;
        p.update(0x1000, taken, 0x2000);
    }
    EXPECT_LE(correct, 60);  // ~50% at best
}

TEST(GShareTest, CorrelatedBranchesLearned) {
    // B2 always equals B1's outcome; B1 is random.  gshare with history
    // should predict B2 nearly perfectly once trained.
    GSharePredictor p(8, 4096, 1024);
    Xorshift64 rng(42);
    int b2Correct = 0, b2Total = 0;
    for (int i = 0; i < 5000; ++i) {
        const bool b1 = rng.chance(0.5);
        p.update(0x1000, b1, 0x2000);
        const bool predictedB2 = p.predict(0x1040).taken;
        if (i > 1000) {
            ++b2Total;
            if (predictedB2 == b1) ++b2Correct;
        }
        p.update(0x1040, b1, 0x3000);
    }
    EXPECT_GT(static_cast<double>(b2Correct) / b2Total, 0.9);
}

TEST(GShareTest, ResetRestoresInitialState) {
    GSharePredictor p(8, 64, 64);
    for (int i = 0; i < 10; ++i) p.update(0x1000, true, 0x2000);
    p.reset();
    EXPECT_FALSE(p.predict(0x1000).taken);
}

TEST(TournamentTest, ChoosesBetterComponentPerBranch) {
    // Branch A alternates (gshare-friendly); branch B is heavily biased
    // (bimodal-friendly).  The tournament should approach the better
    // component on each.
    TournamentPredictor p(1024, 1024, 8, 1024);
    Xorshift64 rng(5);
    int correctA = 0, correctB = 0, total = 0;
    bool a = false;
    for (int i = 0; i < 4000; ++i) {
        a = !a;
        if (i > 2000) {
            ++total;
            if (p.predict(0x1000).taken == a) ++correctA;
        }
        p.update(0x1000, a, 0x2000);
        const bool b = rng.chance(0.9);
        if (i > 2000 && p.predict(0x2000).taken == b) ++correctB;
        p.update(0x2000, b, 0x3000);
    }
    EXPECT_GT(static_cast<double>(correctA) / total, 0.9);   // learned pattern
    EXPECT_GT(static_cast<double>(correctB) / total, 0.75);  // tracked bias
}

TEST(TournamentTest, ResetAndStorage) {
    TournamentPredictor p(2048, 2048, 11, 2048);
    for (int i = 0; i < 10; ++i) p.update(0x1000, true, 0x2000);
    EXPECT_TRUE(p.predict(0x1000).taken);
    p.reset();
    EXPECT_FALSE(p.predict(0x1000).taken);
    // Three 2-bit tables + history + BTB: bigger than bimodal, comparable
    // order to gshare.
    EXPECT_GT(p.storageBits(), makeBimodal2048()->storageBits());
    EXPECT_EQ(makeTournament2048()->name(), "tournament-2048/btb-2048");
}

TEST(ProfiledStaticTest, FixedDirections) {
    ProfiledStaticPredictor p({{0x1000, true, 0x2000}, {0x1010, false, 0}});
    EXPECT_TRUE(p.predict(0x1000).effectiveTaken());
    EXPECT_EQ(p.predict(0x1000).target, 0x2000u);
    EXPECT_FALSE(p.predict(0x1010).taken);
    EXPECT_FALSE(p.predict(0x9999).taken);  // unknown pc
    p.update(0x1000, false, 0);             // training is a no-op
    EXPECT_TRUE(p.predict(0x1000).taken);
}

TEST(FactoryTest, PaperConfigurations) {
    EXPECT_EQ(makeNotTaken()->name(), "not taken");
    EXPECT_EQ(makeBimodal2048()->name(), "bimodal-2048/btb-2048");
    EXPECT_EQ(makeGshare2048()->name(), "gshare-11/2048/btb-2048");
    EXPECT_EQ(makeBimodal(512, 512)->name(), "bimodal-512/btb-512");
}

// Property: on a heavily-biased random stream every dynamic predictor beats
// a coin flip, and storage ordering not-taken < bimodal-256 < bimodal-2048.
TEST(PredictorProperty, BiasedStreamAccuracy) {
    Xorshift64 rng(99);
    auto run = [&rng](BranchPredictor& p) {
        Xorshift64 local(1234);
        int correct = 0;
        const int n = 4000;
        for (int i = 0; i < n; ++i) {
            const std::uint32_t pc = 0x1000 + static_cast<std::uint32_t>(
                                                  local.below(8)) * 4;
            const bool taken = local.chance(0.85);
            if (p.predict(pc).taken == taken) ++correct;
            p.update(pc, taken, pc + 64);
        }
        (void)rng;
        return static_cast<double>(correct) / n;
    };
    const auto bimodal = makeBimodal2048();
    const auto gshare = makeGshare2048();
    EXPECT_GT(run(*bimodal), 0.8);
    EXPECT_GT(run(*gshare), 0.6);  // history dilution hurts on short streams
    EXPECT_LT(makeBimodal(256, 512)->storageBits(),
              makeBimodal2048()->storageBits());
    EXPECT_LT(makeNotTaken()->storageBits(),
              makeBimodal(256, 512)->storageBits());
}

}  // namespace
}  // namespace asbr

// Tests for the branch-condition scheduling pass: it must widen def-to-branch
// distances without changing semantics or program layout.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "cc/compile.hpp"
#include "cc/schedule.hpp"
#include "mem/memory.hpp"
#include "profile/profiler.hpp"
#include "sim/functional.hpp"
#include "util/rng.hpp"

namespace asbr::cc {
namespace {

constexpr const char* kExit = R"(
        li   v0, 1
        li   a0, 0
        sys
)";

FunctionalResult runProgram(const Program& p) {
    Memory mem;
    mem.loadProgram(p);
    FunctionalSim sim(p, mem);
    return sim.run(50'000'000);
}

TEST(ScheduleTest, HoistsConditionDefPastIndependentWork) {
    // The producer of the branch condition (addiu s0) sits right before the
    // branch; two independent adds precede it.  Scheduling must hoist the
    // producer to the top of the block.
    Program p = assemble(std::string(R"(
main:   li   s0, 100
loop:   addiu t1, t1, 1
        addiu t2, t2, 1
        addiu s0, s0, -1
        bnez s0, loop
)") + kExit);
    const std::uint32_t branchPc = kTextBase + 4 * 4;

    Memory m1;
    m1.loadProgram(p);
    const ProgramProfile before = profileProgram(p, m1);
    EXPECT_EQ(before.branches.at(branchPc).minDistance, 1u);

    const ScheduleStats stats = scheduleConditionChains(p);
    EXPECT_GE(stats.blocksChanged, 1u);
    EXPECT_EQ(p.code[(branchPc - kTextBase) / 4].op, Op::kBnez);  // layout kept

    Memory m2;
    m2.loadProgram(p);
    const ProgramProfile after = profileProgram(p, m2);
    EXPECT_EQ(after.branches.at(branchPc).minDistance, 3u);
}

TEST(ScheduleTest, RespectsTrueDependences) {
    // The condition chain (lw -> subu -> branch reg) depends on a load; the
    // independent add can be pushed below it, but the chain order must hold.
    Program p = assemble(std::string(R"(
        .data
v:      .word 3
        .text
main:   li   s1, 5
loop:   addiu t3, t3, 1
        lw   t0, v
        subu s0, t0, s1
        addiu t4, t4, 1
        bnez s0, out
        addiu s1, s1, -1
        bnez s1, loop
out:
)") + kExit);
    const FunctionalResult before = runProgram(p);
    scheduleConditionChains(p);
    const FunctionalResult after = runProgram(p);
    EXPECT_EQ(before.instructions, after.instructions);
    EXPECT_EQ(before.exitCode, after.exitCode);
}

TEST(ScheduleTest, DoesNotReorderStoresAndLoads) {
    // The branch condition comes from a load that must not move above the
    // store to the same address.
    Program p = assemble(std::string(R"(
        .data
cell:   .word 0
        .text
main:   li   t0, 7
        sw   t0, cell
        lw   s0, cell
        addiu t1, t1, 1
        beqz s0, bad
        li   a0, 0
        li   v0, 1
        sys
bad:    li   a0, 1
)") + kExit);
    scheduleConditionChains(p);
    const FunctionalResult r = runProgram(p);
    EXPECT_EQ(r.exitCode, 0);  // a mis-scheduled load would take the bad path
    // The store must still precede the load in program order.
    std::size_t storeIdx = 0, loadIdx = 0;
    for (std::size_t i = 0; i < p.code.size(); ++i) {
        if (p.code[i].op == Op::kSw) storeIdx = i;
        if (p.code[i].op == Op::kLw) loadIdx = i;
    }
    EXPECT_LT(storeIdx, loadIdx);
}

TEST(ScheduleTest, LayoutInvariants) {
    const Compiled c = compile(R"(
int data[64];
int main() {
    int acc = 0;
    for (int i = 0; i < 64; i++) {
        data[i] = i * 3 % 17;
        if (data[i] > 8) acc += data[i];
        else acc -= 1;
    }
    return acc;
}
)");
    // Scheduling ran inside compile(); re-assemble the unscheduled text and
    // compare instruction multisets per program.
    AsmOptions opts;
    opts.entrySymbol = "__start";
    const Program unscheduled = assemble(c.assembly, opts);
    ASSERT_EQ(unscheduled.code.size(), c.program.code.size());
    auto key = [](const Instruction& i) {
        return std::tuple(static_cast<int>(i.op), i.rd, i.rs, i.rt, i.imm);
    };
    std::multiset<std::tuple<int, int, int, int, std::int32_t>> a, b;
    for (const auto& i : unscheduled.code) a.insert(key(i));
    for (const auto& i : c.program.code) b.insert(key(i));
    EXPECT_EQ(a, b);
}

TEST(ScheduleTest, CompiledProgramSemanticsUnchanged) {
    const std::string source = R"(
int tab[16] = {3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3};
int out[16];
int main() {
    int sum = 0;
    for (int i = 0; i < 16; i++) {
        int v = tab[i];
        if (v & 1) v = v * 3 + 1;
        else v = v >> 1;
        out[i] = v;
        sum += v;
    }
    __putint(sum);
    return sum & 0x7F;
}
)";
    CompileOptions with;
    with.scheduleConditions = true;
    CompileOptions without;
    without.scheduleConditions = false;
    const Compiled cs = compile(source, with);
    const Compiled cn = compile(source, without);
    const FunctionalResult rs = runProgram(cs.program);
    const FunctionalResult rn = runProgram(cn.program);
    EXPECT_EQ(rs.output, rn.output);
    EXPECT_EQ(rs.exitCode, rn.exitCode);
    EXPECT_EQ(rs.instructions, rn.instructions);
}

TEST(ScheduleTest, ImprovesFoldableFractionOnCompiledLoop) {
    const std::string source = R"(
int xs[256];
int main() {
    int acc = 0;
    for (int i = 0; i < 256; i++) xs[i] = (i * 31 + 7) % 64 - 32;
    for (int i = 0; i < 256; i++) {
        int v = xs[i];
        int w = v * 2 + 3;
        int q = w - v;
        if (v > 0) acc += q;
        else acc -= 1;
    }
    return acc & 0xFF;
}
)";
    CompileOptions with;
    with.scheduleConditions = true;
    CompileOptions without;
    without.scheduleConditions = false;
    const Compiled cs = compile(source, with);
    const Compiled cn = compile(source, without);

    auto totalFoldable = [](const Program& p) {
        Memory mem;
        mem.loadProgram(p);
        const ProgramProfile prof = profileProgram(p, mem);
        std::uint64_t foldable = 0;
        for (const auto& [pc, bp] : prof.branches) foldable += bp.distGe3;
        return foldable;
    };
    EXPECT_GE(totalFoldable(cs.program), totalFoldable(cn.program));
}

// Property: scheduling random-but-valid straightline+branch programs never
// changes architectural results.
TEST(ScheduleProperty, RandomBlocksPreserveSemantics) {
    Xorshift64 rng(2024);
    for (int iter = 0; iter < 40; ++iter) {
        std::string src = "main:   li   s0, 20\n";
        src += "        li   s1, 0\n";
        src += "loop:\n";
        // Random block body over t0..t4 with occasional memory traffic.
        const int len = 3 + static_cast<int>(rng.below(8));
        for (int i = 0; i < len; ++i) {
            const int choice = static_cast<int>(rng.below(5));
            const int rd = static_cast<int>(rng.below(5));
            const int rs = static_cast<int>(rng.below(5));
            switch (choice) {
                case 0:
                    src += "        addiu t" + std::to_string(rd) + ", t" +
                           std::to_string(rs) + ", " +
                           std::to_string(rng.range(-8, 8)) + "\n";
                    break;
                case 1:
                    src += "        addu t" + std::to_string(rd) + ", t" +
                           std::to_string(rs) + ", s1\n";
                    break;
                case 2:
                    src += "        sw t" + std::to_string(rd) + ", scratch\n";
                    break;
                case 3:
                    src += "        lw t" + std::to_string(rd) + ", scratch\n";
                    break;
                default:
                    src += "        xor t" + std::to_string(rd) + ", t" +
                           std::to_string(rd) + ", t" + std::to_string(rs) +
                           "\n";
                    break;
            }
        }
        src += "        addu s1, s1, t0\n";
        src += "        addiu s0, s0, -1\n";
        src += "        bnez s0, loop\n";
        src += "        move a0, s1\n        li v0, 1\n        sys\n";
        src += "        .data\nscratch: .word 5\n";

        Program original = assemble(src);
        Program scheduled = original;
        scheduleConditionChains(scheduled);
        const FunctionalResult a = runProgram(original);
        const FunctionalResult b = runProgram(scheduled);
        EXPECT_EQ(a.exitCode, b.exitCode) << "iteration " << iter << "\n" << src;
        EXPECT_EQ(a.instructions, b.instructions) << "iteration " << iter;
    }
}

}  // namespace
}  // namespace asbr::cc

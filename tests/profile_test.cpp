// Tests for the branch profiler and the ASBR selection policy.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "profile/profiler.hpp"
#include "profile/selection.hpp"

namespace asbr {
namespace {

constexpr const char* kExit = R"(
        li   v0, 1
        li   a0, 0
        sys
)";

ProgramProfile profileSrc(const Program& p) {
    Memory mem;
    mem.loadProgram(p);
    return profileProgram(p, mem);
}

TEST(ProfilerTest, CountsExecsAndTaken) {
    const Program p = assemble(std::string(R"(
main:   li   s0, 10
loop:   addiu s0, s0, -1
        bnez s0, loop
)") + kExit);
    const ProgramProfile prof = profileSrc(p);
    ASSERT_EQ(prof.branches.size(), 1u);
    const BranchProfile& bp = prof.branches.begin()->second;
    EXPECT_EQ(bp.pc, kTextBase + 2 * 4);
    EXPECT_EQ(bp.execs, 10u);
    EXPECT_EQ(bp.taken, 9u);
    EXPECT_DOUBLE_EQ(bp.takenRate(), 0.9);
}

TEST(ProfilerTest, DistanceDistribution) {
    // Producer immediately before the branch: distance 1 everywhere.
    const Program tight = assemble(std::string(R"(
main:   li   s0, 10
loop:   addiu s0, s0, -1
        bnez s0, loop
)") + kExit);
    const BranchProfile t = profileSrc(tight).branches.begin()->second;
    EXPECT_EQ(t.minDistance, 1u);
    EXPECT_EQ(t.distGe2, 0u);
    EXPECT_EQ(t.distGe3, 0u);
    EXPECT_EQ(t.distGe4, 0u);
    EXPECT_DOUBLE_EQ(t.foldableFraction(3), 0.0);

    // Two fillers: distance 3.
    const Program spaced = assemble(std::string(R"(
main:   li   s0, 10
loop:   addiu s0, s0, -1
        addiu t1, t1, 1
        addiu t2, t2, 1
        bnez s0, loop
)") + kExit);
    ProgramProfile prof = profileSrc(spaced);
    const BranchProfile s =
        prof.branches.at(kTextBase + 4 * 4);
    EXPECT_EQ(s.minDistance, 3u);
    EXPECT_EQ(s.distGe2, 10u);
    EXPECT_EQ(s.distGe3, 10u);
    EXPECT_EQ(s.distGe4, 0u);
    EXPECT_DOUBLE_EQ(s.foldableFraction(2), 1.0);
    EXPECT_DOUBLE_EQ(s.foldableFraction(4), 0.0);
}

TEST(ProfilerTest, NeverWrittenRegisterIsAlwaysFoldable) {
    const Program p = assemble(std::string(R"(
main:   bnez s5, skip       # s5 never written: defined at reset
        nop
skip:
)") + kExit);
    const BranchProfile bp = profileSrc(p).branches.begin()->second;
    EXPECT_EQ(bp.distGe4, 1u);
    EXPECT_GT(bp.minDistance, 1000u);
}

TEST(ProfilerTest, InstructionCountMatchesFunctionalRun) {
    const Program p = assemble(std::string(R"(
main:   li   s0, 5
loop:   addiu s0, s0, -1
        bnez s0, loop
)") + kExit);
    const ProgramProfile prof = profileSrc(p);
    EXPECT_EQ(prof.instructions, 1u + 5 + 5 + 3);
}

TEST(SelectionTest, RanksByExpectedBenefit) {
    // Two branches with the same distance: the frequent, hard-to-predict one
    // must rank first.
    const Program p = assemble(std::string(R"(
main:   li   s0, 100
outer:  andi t0, s0, 3
        addiu t1, t1, 1
        addiu t2, t2, 1
        bnez t0, skip       # hard-ish branch, 100 execs
        addiu t3, t3, 1
skip:   addiu s0, s0, -1
        addiu t4, t4, 1
        addiu t5, t5, 1
        bnez s0, outer      # easy branch (always taken until the end)
)") + kExit);
    const std::uint32_t hardPc = kTextBase + 4 * 4;
    const std::uint32_t easyPc = kTextBase + 9 * 4;
    Memory mem;
    mem.loadProgram(p);
    const ProgramProfile prof = profileProgram(p, mem);

    std::map<std::uint32_t, double> accuracy{{hardPc, 0.6}, {easyPc, 0.99}};
    SelectionConfig cfg;
    cfg.threshold = 3;
    cfg.bitCapacity = 16;
    cfg.minExecFraction = 0.0;
    const auto cands = selectFoldableBranches(p, prof, accuracy, cfg);
    ASSERT_EQ(cands.size(), 2u);
    EXPECT_EQ(cands[0].pc, hardPc);
    EXPECT_EQ(cands[1].pc, easyPc);
    EXPECT_GT(cands[0].score, cands[1].score);
    EXPECT_DOUBLE_EQ(cands[0].foldableFraction, 1.0);
}

TEST(SelectionTest, CapacityTruncates) {
    std::string src = "main:   li   s0, 50\nouter:\n";
    // Eight foldable branches in one loop.
    for (int b = 0; b < 8; ++b) {
        src += "        andi t0, s0, " + std::to_string(b + 1) + "\n";
        src += "        addiu t1, t1, 1\n        addiu t2, t2, 1\n";
        src += "        bnez t0, skip" + std::to_string(b) + "\n";
        src += "        addiu t3, t3, 1\nskip" + std::to_string(b) + ":\n";
    }
    src += "        addiu s0, s0, -1\n        addiu t4, t4, 1\n";
    src += "        addiu t5, t5, 1\n        bnez s0, outer\n";
    src += kExit;
    const Program p = assemble(src);
    Memory mem;
    mem.loadProgram(p);
    const ProgramProfile prof = profileProgram(p, mem);
    SelectionConfig cfg;
    cfg.bitCapacity = 4;
    cfg.minExecFraction = 0.0;
    const auto cands = selectFoldableBranches(p, prof, {}, cfg);
    EXPECT_EQ(cands.size(), 4u);
}

TEST(SelectionTest, UnfoldableBranchesFiltered) {
    // Distance-1 branch cannot be selected at any threshold.
    const Program p = assemble(std::string(R"(
main:   li   s0, 50
loop:   addiu s0, s0, -1
        bnez s0, loop
)") + kExit);
    Memory mem;
    mem.loadProgram(p);
    const ProgramProfile prof = profileProgram(p, mem);
    SelectionConfig cfg;
    cfg.minExecFraction = 0.0;
    EXPECT_TRUE(selectFoldableBranches(p, prof, {}, cfg).empty());
}

TEST(SelectionTest, RareBranchesFiltered) {
    const Program p = assemble(std::string(R"(
main:   li   s0, 1000
loop:   addiu s0, s0, -1
        addiu t1, t1, 1
        addiu t2, t2, 1
        bnez s0, loop
        bnez s7, loop       # executes once; s7 never written
)") + kExit);
    Memory mem;
    mem.loadProgram(p);
    const ProgramProfile prof = profileProgram(p, mem);
    SelectionConfig cfg;
    cfg.minExecFraction = 0.01;  // 1% of ~4000 instructions
    const auto cands = selectFoldableBranches(p, prof, {}, cfg);
    ASSERT_EQ(cands.size(), 1u);
    EXPECT_EQ(cands[0].pc, kTextBase + 4 * 4);
}

TEST(SelectionTest, ThresholdValidation) {
    const Program p = assemble("main: nop\n li v0, 1\n li a0, 0\n sys\n");
    Memory mem;
    mem.loadProgram(p);
    const ProgramProfile prof = profileProgram(p, mem);
    SelectionConfig cfg;
    cfg.threshold = 5;
    EXPECT_THROW(selectFoldableBranches(p, prof, {}, cfg), EnsureError);
}

}  // namespace
}  // namespace asbr

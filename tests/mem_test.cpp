// Unit tests for main memory and the cache timing model.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "mem/cache.hpp"
#include "mem/memory.hpp"
#include "util/rng.hpp"

namespace asbr {
namespace {

TEST(MemoryTest, ZeroInitialized) {
    Memory m;
    EXPECT_EQ(m.read8(0), 0);
    EXPECT_EQ(m.read32(0x7FFF'0000), 0u);
}

TEST(MemoryTest, ByteHalfWordRoundTrip) {
    Memory m;
    m.write8(100, 0xAB);
    EXPECT_EQ(m.read8(100), 0xAB);
    m.write16(200, 0xBEEF);
    EXPECT_EQ(m.read16(200), 0xBEEF);
    m.write32(300 * 4, 0xDEADBEEFu);
    EXPECT_EQ(m.read32(300 * 4), 0xDEADBEEFu);
}

TEST(MemoryTest, LittleEndianLayout) {
    Memory m;
    m.write32(0x1000, 0x04030201u);
    EXPECT_EQ(m.read8(0x1000), 1);
    EXPECT_EQ(m.read8(0x1001), 2);
    EXPECT_EQ(m.read8(0x1002), 3);
    EXPECT_EQ(m.read8(0x1003), 4);
    EXPECT_EQ(m.read16(0x1000), 0x0201);
    EXPECT_EQ(m.read16(0x1002), 0x0403);
}

TEST(MemoryTest, CrossPageAccess) {
    Memory m;
    const std::uint32_t addr = 4096 - 2;  // half straddles nothing; bytes do
    m.write16(addr, 0x1234);
    EXPECT_EQ(m.read16(addr), 0x1234);
    std::array<std::uint8_t, 8> block{1, 2, 3, 4, 5, 6, 7, 8};
    m.writeBlock(4092, block);
    std::array<std::uint8_t, 8> out{};
    m.readBlock(4092, out);
    EXPECT_EQ(block, out);
}

TEST(MemoryTest, AlignmentEnforced) {
    Memory m;
    EXPECT_THROW((void)m.read16(1), EnsureError);
    EXPECT_THROW((void)m.read32(2), EnsureError);
    EXPECT_THROW(m.write16(3, 0), EnsureError);
    EXPECT_THROW(m.write32(6, 0), EnsureError);
}

TEST(MemoryTest, SignedHelpers) {
    Memory m;
    m.writeWord(0x2000, -12345);
    EXPECT_EQ(m.readWord(0x2000), -12345);
    m.writeHalf(0x2004, -32768);
    EXPECT_EQ(m.readHalf(0x2004), -32768);
}

TEST(MemoryTest, LoadProgramPlacesTextAndData) {
    const Program p = assemble(R"(
        .text
main:   addiu t0, zero, 1
        .data
v:      .word 0x11223344
    )");
    Memory m;
    m.loadProgram(p);
    EXPECT_NE(m.read32(kTextBase), 0u);
    EXPECT_EQ(m.read32(p.symbol("v")), 0x11223344u);
}

TEST(CacheTest, ConfigValidation) {
    EXPECT_NO_THROW(Cache({8192, 32, 2, 8}));
    EXPECT_THROW(Cache({8192, 33, 2, 8}), EnsureError);   // non-pow2 line
    EXPECT_THROW(Cache({8192, 32, 0, 8}), EnsureError);   // assoc 0
    EXPECT_THROW(Cache({8000, 32, 2, 8}), EnsureError);   // size mismatch
}

TEST(CacheTest, ColdMissThenHit) {
    Cache c({1024, 32, 1, 10});
    EXPECT_EQ(c.access(0x100), 10u);  // cold miss
    EXPECT_EQ(c.access(0x100), 0u);   // hit
    EXPECT_EQ(c.access(0x11C), 0u);   // same line (0x100..0x11F)
    EXPECT_EQ(c.access(0x120), 10u);  // next line
    EXPECT_EQ(c.stats().accesses, 4u);
    EXPECT_EQ(c.stats().misses, 2u);
}

TEST(CacheTest, DirectMappedConflict) {
    Cache c({1024, 32, 1, 10});  // 32 sets
    EXPECT_EQ(c.access(0x0000), 10u);
    EXPECT_EQ(c.access(0x0400), 10u);  // same set (1024 apart), evicts
    EXPECT_EQ(c.access(0x0000), 10u);  // conflict miss
}

TEST(CacheTest, TwoWayAvoidsSimpleConflict) {
    Cache c({1024, 32, 2, 10});  // 16 sets
    EXPECT_EQ(c.access(0x0000), 10u);
    EXPECT_EQ(c.access(0x0400), 10u);  // same set, second way
    EXPECT_EQ(c.access(0x0000), 0u);   // still resident
    EXPECT_EQ(c.access(0x0400), 0u);
}

TEST(CacheTest, LruReplacement) {
    Cache c({64, 32, 2, 5});  // one set, two ways
    c.access(0x000);          // A
    c.access(0x100);          // B
    c.access(0x000);          // touch A (B is LRU)
    EXPECT_EQ(c.access(0x200), 5u);  // C evicts B
    EXPECT_EQ(c.access(0x000), 0u);  // A survives
    EXPECT_EQ(c.access(0x100), 5u);  // B was evicted
}

TEST(CacheTest, ProbeDoesNotAllocate) {
    Cache c({1024, 32, 1, 10});
    EXPECT_FALSE(c.probe(0x40));
    c.access(0x40);
    EXPECT_TRUE(c.probe(0x40));
    EXPECT_TRUE(c.probe(0x5C));   // same line
    EXPECT_FALSE(c.probe(0x60));  // next line
}

TEST(CacheTest, ResetClears) {
    Cache c({1024, 32, 1, 10});
    c.access(0x40);
    c.reset();
    EXPECT_FALSE(c.probe(0x40));
    EXPECT_EQ(c.stats().accesses, 0u);
}

// Property: an N-line fully-covered sequential sweep misses exactly once per
// line regardless of associativity.
TEST(CacheTest, SequentialSweepMissesOncePerLine) {
    for (std::uint32_t assoc : {1u, 2u, 4u}) {
        Cache c({8192, 32, assoc, 8});
        for (std::uint32_t addr = 0; addr < 8192; addr += 4) c.access(addr);
        EXPECT_EQ(c.stats().misses, 8192u / 32u) << "assoc " << assoc;
        // Second sweep: everything resident.
        for (std::uint32_t addr = 0; addr < 8192; addr += 4) c.access(addr);
        EXPECT_EQ(c.stats().misses, 8192u / 32u) << "assoc " << assoc;
    }
}

// Property: a random access stream against a small cache never reports more
// misses than accesses, and a fully-associative-equivalent config with the
// same capacity never has more misses than the direct-mapped one on a
// repeating working set.
TEST(CacheTest, HigherAssociativityHelpsRepeatingWorkingSet) {
    std::vector<std::uint32_t> workingSet;
    Xorshift64 rng(7);
    for (int i = 0; i < 8; ++i)
        workingSet.push_back(static_cast<std::uint32_t>(rng.below(16)) * 1024);
    Cache direct({4096, 32, 1, 8});
    Cache assoc8({4096, 32, 8, 8});
    for (int round = 0; round < 50; ++round) {
        for (std::uint32_t a : workingSet) {
            direct.access(a);
            assoc8.access(a);
        }
    }
    EXPECT_LE(assoc8.stats().misses, direct.stats().misses);
}

}  // namespace
}  // namespace asbr

// Driver-layer tests: deterministic parallel execution and once-per-key
// artifact caching (docs/architecture.md, "Driver layer").
//
// The load-bearing property is byte-identity: a job batch, a fault campaign
// and a sweep must serialize to exactly the same JSON whether the engine ran
// them on 1 thread or 8 (and across repeated 8-thread runs).  These tests
// pin that down by diffing whole serialized documents, the same way
// ci/bench-report.sh and ci/faults.sh do with the real binaries.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "driver/cli.hpp"
#include "driver/engine.hpp"
#include "driver/names.hpp"
#include "driver/pool.hpp"
#include "driver/sweep.hpp"
#include "report/fault_report.hpp"
#include "report/report.hpp"
#include "report/sweep_report.hpp"

namespace {

using namespace asbr;
using namespace asbr::driver;

CliOptions tinyOptions() {
    CliOptions options;
    options.adpcmSamples = 1'000;
    options.g721Samples = 400;
    return options;
}

SimJob tinyJob(BenchId id, const std::string& predictor, bool asbr) {
    const CliOptions options = tinyOptions();
    SimJob job;
    job.workload = id;
    job.seed = options.seed;
    job.samples = samplesFor(options, id);
    job.predictor = predictor;
    job.figure = "test";
    job.asbr = asbr;
    return job;
}

/// A batch mixing baseline and ASBR jobs, two workloads, one non-default
/// selection (EX-end stage) — enough key diversity to exercise the cache.
std::vector<SimJob> mixedBatch() {
    std::vector<SimJob> jobs;
    jobs.push_back(tinyJob(BenchId::kAdpcmEncode, "bimodal", false));
    jobs.push_back(tinyJob(BenchId::kAdpcmEncode, "bi512", true));
    jobs.push_back(tinyJob(BenchId::kAdpcmEncode, "not-taken", true));
    jobs.push_back(tinyJob(BenchId::kG721Encode, "gshare", false));
    jobs.push_back(tinyJob(BenchId::kG721Encode, "bi512", true));
    SimJob exEnd = tinyJob(BenchId::kG721Encode, "bi256", true);
    exEnd.updateStage = ValueStage::kExEnd;
    jobs.push_back(exEnd);
    return jobs;
}

/// Serialize every run report of a batch into one string for whole-document
/// comparison (the JSON layer is deterministic, so equal strings means equal
/// results down to the last counter).
std::string serializeBatch(const std::vector<JobResult>& results) {
    std::string text;
    for (const JobResult& r : results) text += simReportJson(r.report).dump(2);
    return text;
}

TEST(DriverDeterminism, BatchBytesIdenticalAcrossThreadCounts) {
    const std::vector<SimJob> jobs = mixedBatch();

    SimEngine serial({.threads = 1});
    SimEngine parallelA({.threads = 8});
    SimEngine parallelB({.threads = 8});
    const std::string s1 = serializeBatch(serial.run(jobs));
    const std::string p1 = serializeBatch(parallelA.run(jobs));
    const std::string p2 = serializeBatch(parallelB.run(jobs));

    EXPECT_FALSE(s1.empty());
    EXPECT_EQ(s1, p1) << "1-thread and 8-thread batches diverged";
    EXPECT_EQ(p1, p2) << "two 8-thread batches diverged";

    // The engine counters are deterministic functions of the submitted work,
    // so they must agree across thread counts too.
    const EngineStats a = serial.stats();
    const EngineStats b = parallelA.stats();
    EXPECT_EQ(a.jobsRun, jobs.size());
    EXPECT_EQ(a.jobsRun, b.jobsRun);
    EXPECT_EQ(a.cacheHits, b.cacheHits);
    EXPECT_EQ(a.workerBusyCycles, b.workerBusyCycles);
}

TEST(DriverDeterminism, CampaignBytesIdenticalAcrossThreadCounts) {
    const SimJob job = tinyJob(BenchId::kAdpcmEncode, "bimodal", true);
    CampaignConfig campaign;
    campaign.injections = 12;
    campaign.seed = 7;

    FaultReportMeta meta;  // fixed header; only the records/outcomes matter
    meta.benchmark = benchToken(job.workload);
    meta.predictor = job.predictor;
    meta.seed = job.seed;
    meta.samples = job.samples;
    meta.updateStage = valueStageName(job.updateStage);

    SimEngine serial({.threads = 1});
    SimEngine parallel({.threads = 8});
    const std::string s1 =
        faultReportJson(meta, campaign, serial.runCampaign(job, campaign))
            .dump(2);
    const std::string p1 =
        faultReportJson(meta, campaign, parallel.runCampaign(job, campaign))
            .dump(2);
    EXPECT_EQ(s1, p1) << "fault campaign diverged across thread counts";
}

TEST(DriverDeterminism, SweepReportBytesIdenticalAcrossThreadCounts) {
    SweepGrid grid;
    grid.workloads = {BenchId::kAdpcmEncode};
    grid.predictors = {"bi512"};
    grid.bitSizes = {2, 4};
    grid.includeBaseline = true;
    const CliOptions options = tinyOptions();
    const std::vector<SimJob> jobs = expandSweep(grid, options);
    ASSERT_EQ(jobs.size(), 3u);  // baseline + two BIT sizes

    auto sweepText = [&](std::size_t threads) {
        SimEngine engine({.threads = threads});
        // Durable executor without a journal — the code path asbr-sweep uses.
        const DurableRunResult outcome = engine.runDurable(jobs, {});
        std::vector<SweepCell> cells;
        for (const CellOutcome& cell : outcome.cells) {
            SweepCell out;
            out.job = cell.key;
            out.status = cell.status == CellStatus::kOk ? "ok" : "failed";
            out.attempts = cell.attempts;
            out.report = cell.report;
            out.error = cell.error;
            cells.push_back(std::move(out));
        }
        return sweepReportJson("driver_test", JsonValue(JsonObject{}), cells)
            .dump(2);
    };
    const std::string s1 = sweepText(1);
    const std::string p1 = sweepText(8);
    const std::string p2 = sweepText(8);
    EXPECT_EQ(s1, p1) << "sweep report diverged across thread counts";
    EXPECT_EQ(p1, p2) << "two 8-thread sweeps diverged";

    const JsonParseResult parsed = parseJson(s1);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_TRUE(validateSweepReportJson(*parsed.value).ok());
}

TEST(ArtifactCacheTest, ComputesOncePerKeyUnderConcurrentSubmission) {
    // 16 identical ASBR jobs race for the same two cache keys on 8 workers:
    // the workload must be loaded+profiled once and the selection computed
    // once, however the races fall.
    const std::vector<SimJob> jobs(16,
                                   tinyJob(BenchId::kAdpcmEncode, "bi512",
                                           true));
    SimEngine engine({.threads = 8});
    const std::vector<JobResult> results = engine.run(jobs);
    ASSERT_EQ(results.size(), jobs.size());
    for (const JobResult& r : results)
        EXPECT_EQ(r.stats.cycles, results.front().stats.cycles);

    const ArtifactCache::Stats stats = engine.cacheStats();
    EXPECT_EQ(stats.workloadComputes, 1u);
    EXPECT_EQ(stats.selectionComputes, 1u);
    // Requests: one workload + one selection per job, plus the selection
    // compute resolving its workload — minus the two actual computes.
    EXPECT_EQ(stats.hits, 2u * jobs.size() + 1 - 2);
}

TEST(ArtifactCacheTest, DistinctKeysDoNotShareArtifacts) {
    SimEngine engine({.threads = 4});
    SimJob a = tinyJob(BenchId::kAdpcmEncode, "bi512", true);
    SimJob b = a;
    b.bitEntries = 2;  // different selection, same workload
    SimJob c = a;
    c.scheduled = false;  // different workload key entirely
    (void)engine.run({a, b, c});
    const ArtifactCache::Stats stats = engine.cacheStats();
    EXPECT_EQ(stats.workloadComputes, 2u);
    EXPECT_EQ(stats.selectionComputes, 3u);
}

TEST(PoolTest, ParallelForVisitsEveryIndexExactlyOnce) {
    std::vector<std::atomic<int>> visits(257);
    parallelFor(visits.size(), 8, [&](std::size_t i) {
        visits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(PoolTest, ParallelForDrainsAndRethrowsFirstError) {
    std::atomic<std::size_t> visited{0};
    EXPECT_THROW(parallelFor(64, 8,
                             [&](std::size_t i) {
                                 visited.fetch_add(1,
                                                   std::memory_order_relaxed);
                                 if (i == 3)
                                     throw std::runtime_error("boom");
                             }),
                 std::runtime_error);
    // Errors must not abandon the rest of the batch.
    EXPECT_EQ(visited.load(), 64u);
}

TEST(CliOptionsTest, SharedOptionsParse) {
    CliOptions options;
    std::string error;
    EXPECT_TRUE(consumeSharedOption("--threads=8", options, error));
    EXPECT_EQ(options.threads, 8u);
    EXPECT_TRUE(consumeSharedOption("--seed=42", options, error));
    EXPECT_EQ(options.seed, 42u);
    EXPECT_TRUE(consumeSharedOption("--workload=g721-enc", options, error));
    EXPECT_TRUE(error.empty());
    ASSERT_TRUE(options.workload.has_value());
    EXPECT_EQ(*options.workload, BenchId::kG721Encode);
    EXPECT_FALSE(consumeSharedOption("--not-an-option", options, error));
}

TEST(CliOptionsTest, BadWorkloadYieldsStructuredError) {
    CliOptions options;
    std::string error;
    EXPECT_TRUE(consumeSharedOption("--workload=quake3", options, error));
    EXPECT_NE(error.find("unknown workload 'quake3'"), error.npos) << error;
    EXPECT_FALSE(options.workload.has_value());
}

TEST(CliOptionsTest, SamplesAreCappedAtWorkloadCapacity) {
    CliOptions options;
    options.adpcmSamples = 1u << 30;
    EXPECT_EQ(samplesFor(options, BenchId::kAdpcmEncode),
              benchMaxSamples(BenchId::kAdpcmEncode));
}

TEST(EngineTest, UnknownPredictorTokenIsRethrownFromBatch) {
    SimEngine engine({.threads = 4});
    std::vector<SimJob> jobs = mixedBatch();
    jobs[2].predictor = "oracle";  // not a known token
    EXPECT_THROW((void)engine.run(jobs), std::exception);
}

TEST(EngineTest, PublishedCountersMatchStats) {
    SimEngine engine({.threads = 2});
    (void)engine.run({tinyJob(BenchId::kAdpcmEncode, "bimodal", false),
                      tinyJob(BenchId::kAdpcmEncode, "bi512", true)});
    const EngineStats stats = engine.stats();
    MetricRegistry registry;
    engine.publishMetrics(registry);
    ASSERT_NE(registry.findCounter("engine.jobs_run"), nullptr);
    EXPECT_EQ(registry.findCounter("engine.jobs_run")->value(), stats.jobsRun);
    ASSERT_NE(registry.findCounter("engine.cache_hits"), nullptr);
    EXPECT_EQ(registry.findCounter("engine.cache_hits")->value(),
              stats.cacheHits);
    ASSERT_NE(registry.findCounter("engine.worker_busy_cycles"), nullptr);
    EXPECT_EQ(registry.findCounter("engine.worker_busy_cycles")->value(),
              stats.workerBusyCycles);
}

}  // namespace

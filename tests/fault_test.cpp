// Tests for the robustness layer (docs/fault-injection.md): BDT/BIT parity
// protection, validity-counter edge cases under injected corruption, the
// pipeline watchdog, fault-site plumbing, campaign classification against
// the golden model, and the asbr.fault_report schema.
#include <gtest/gtest.h>

#include <memory>

#include "bp/bimodal.hpp"
#include "bp/static_predictors.hpp"
#include "asbr/asbr_unit.hpp"
#include "asbr/extract.hpp"
#include "asm/assembler.hpp"
#include "fault/campaign.hpp"
#include "fault/fault.hpp"
#include "isa/encoding.hpp"
#include "mem/memory.hpp"
#include "report/fault_report.hpp"
#include "sim/functional.hpp"
#include "sim/pipeline.hpp"

namespace asbr {
namespace {

// ------------------------------------------------------------ BDT parity ----

TEST(BdtParityTest, LegitimateWritesKeepParityConsistent) {
    BranchDirectionTable bdt;
    for (std::uint8_t r = 0; r < kNumRegs; ++r) EXPECT_TRUE(bdt.parityOk(r));
    bdt.producerDecoded(5);
    EXPECT_TRUE(bdt.parityOk(5));
    bdt.update(5, -17);
    EXPECT_TRUE(bdt.parityOk(5));
    bdt.producerDecoded(5);
    bdt.producerDecoded(5);
    EXPECT_TRUE(bdt.parityOk(5));
    bdt.reset();
    EXPECT_TRUE(bdt.parityOk(5));
}

TEST(BdtParityTest, AnySingleBitFlipBreaksParity) {
    for (int c = 0; c < kNumConds; ++c) {
        BranchDirectionTable bdt;
        bdt.flipConditionBit(4, static_cast<Cond>(c));
        EXPECT_FALSE(bdt.parityOk(4)) << "cond " << c;
        EXPECT_TRUE(bdt.parityOk(5));  // other entries untouched
    }
    for (unsigned bit = 0; bit < 3; ++bit) {
        BranchDirectionTable bdt;
        bdt.flipPendingBit(4, bit);
        EXPECT_FALSE(bdt.parityOk(4)) << "counter bit " << bit;
    }
    BranchDirectionTable bdt;
    bdt.flipParityBit(4);
    EXPECT_FALSE(bdt.parityOk(4));
}

TEST(BdtParityTest, QuarantineTakesEntryOutOfService) {
    BranchDirectionTable bdt;
    bdt.producerDecoded(6);
    bdt.quarantine(6);
    EXPECT_TRUE(bdt.isQuarantined(6));
    EXPECT_FALSE(bdt.isValid(6));
    // Producer tracking becomes a no-op: no saturation, no underflow.
    const std::uint32_t pending = bdt.pendingCount(6);
    bdt.producerDecoded(6);
    bdt.update(6, 1);
    EXPECT_EQ(bdt.pendingCount(6), pending);
    EXPECT_FALSE(bdt.isValid(6));
    bdt.reset();
    EXPECT_FALSE(bdt.isQuarantined(6));
    EXPECT_TRUE(bdt.isValid(6));
}

// ---------------------------------------------- BDT counter edge cases ----

TEST(BdtEdgeTest, ValidityCounterSaturationThrows) {
    BranchDirectionTable bdt;
    for (std::uint8_t i = 0; i < BranchDirectionTable::kMaxPending; ++i)
        bdt.producerDecoded(3);
    EXPECT_EQ(bdt.pendingCount(3), BranchDirectionTable::kMaxPending);
    EXPECT_THROW(bdt.producerDecoded(3), EnsureError);
}

TEST(BdtEdgeTest, DecrementBelowZeroThrows) {
    BranchDirectionTable bdt;
    EXPECT_THROW(bdt.update(3, 1), EnsureError);
    // An injected counter flip can manufacture the same underflow: one
    // producer in flight, the flip clears the counter, and the matching
    // update then has nothing to decrement.
    bdt.producerDecoded(4);
    bdt.flipPendingBit(4, 0);
    EXPECT_EQ(bdt.pendingCount(4), 0u);
    EXPECT_THROW(bdt.update(4, 1), EnsureError);
}

TEST(BdtEdgeTest, CorruptedZeroCounterLooksFoldableButFailsParity) {
    // The dangerous corruption: a producer is in flight (folding illegal),
    // the flip zeroes the counter, and the entry now *looks* foldable with
    // stale direction bits.  Unprotected hardware would fold; the parity
    // check is what catches it.
    BranchDirectionTable bdt;
    bdt.producerDecoded(7);
    EXPECT_FALSE(bdt.isValid(7));
    bdt.flipPendingBit(7, 0);
    EXPECT_TRUE(bdt.isValid(7));      // fold-legality gate is fooled
    EXPECT_FALSE(bdt.parityOk(7));    // ... but parity is not
}

TEST(BdtEdgeTest, CounterBitFlipUpwardsBlocksFoldingForever) {
    // The benign direction: a flip that *raises* the counter permanently
    // blocks folding (fail-safe) because the phantom producer never retires.
    BranchDirectionTable bdt;
    bdt.flipPendingBit(9, 2);
    EXPECT_EQ(bdt.pendingCount(9), 4u);
    EXPECT_FALSE(bdt.isValid(9));
    EXPECT_FALSE(bdt.parityOk(9));
}

// ------------------------------------------------------------ BIT parity ----

std::vector<BranchInfo> oneEntry() {
    const Program p = assemble(R"(
main:   addiu s0, s0, -1
        addiu t1, t1, 1
        addiu t2, t2, 2
        bnez  s0, main
        li   v0, 1
        li   a0, 0
        sys
)");
    const std::uint32_t pcs[] = {kTextBase + 12};
    return extractBranchInfos(p, pcs);
}

TEST(BitParityTest, FreshBankPassesProtectedLookup) {
    BranchIdentificationTable bit(4);
    bit.loadBank(0, oneEntry());
    bool recovered = true;
    const BranchInfo* e = bit.lookupProtected(kTextBase + 12, recovered);
    ASSERT_NE(e, nullptr);
    EXPECT_FALSE(recovered);
}

TEST(BitParityTest, EveryFieldFlipIsDetectedAndInvalidates) {
    for (const BitField field :
         {BitField::kPc, BitField::kDi, BitField::kBta, BitField::kBti,
          BitField::kBfi, BitField::kParity}) {
        for (unsigned bit = 0; bit < bitFieldWidth(field); bit += 7) {
            BranchIdentificationTable table(4);
            table.loadBank(0, oneEntry());
            table.flipEntryBit(0, 0, field, bit);
            // The flip may move the PC tag; a protected lookup of either the
            // original or the shifted tag must detect the mismatch.
            const std::uint32_t pc = table.entryInfo(0, 0).pc;
            bool recovered = false;
            EXPECT_EQ(table.lookupProtected(pc, recovered), nullptr)
                << "field " << static_cast<int>(field) << " bit " << bit;
            EXPECT_TRUE(recovered);
            // Recovery invalidates: the entry is gone for the rest of the run.
            EXPECT_EQ(table.lookupProtected(pc, recovered), nullptr);
            EXPECT_FALSE(recovered);
        }
    }
}

TEST(BitParityTest, UnprotectedUndecodableReplacementTraps) {
    BranchIdentificationTable table(4);
    table.loadBank(0, oneEntry());
    const std::uint32_t pc = table.entryInfo(0, 0).pc;
    // Find an opcode-field flip that makes the BTI word undecodable.
    const std::uint32_t word = encode(table.entryInfo(0, 0).bti);
    unsigned badBit = 32;
    for (unsigned bit = 26; bit < 32; ++bit) {
        try {
            (void)decode(word ^ (1u << bit));
        } catch (const EnsureError&) {
            badBit = bit;
            break;
        }
    }
    ASSERT_LT(badBit, 32u) << "no opcode flip decodes invalid — widen search";
    table.flipEntryBit(0, 0, BitField::kBti, badBit);
    EXPECT_THROW((void)table.lookup(pc), EnsureError);
}

// ------------------------------------------------------------- watchdog ----

TEST(WatchdogTest, PipelineInfiniteLoopRaisesSimTimeout) {
    const Program p = assemble("main: j main\n");
    Memory m;
    m.loadProgram(p);
    NotTakenPredictor bp;
    PipelineConfig cfg;
    cfg.maxCycles = 1000;
    PipelineSim sim(p, m, bp, cfg);
    EXPECT_THROW(sim.run(), SimTimeoutError);
}

TEST(WatchdogTest, FunctionalInfiniteLoopRaisesSimTimeout) {
    const Program p = assemble("main: j main\n");
    Memory m;
    m.loadProgram(p);
    FunctionalSim sim(p, m);
    EXPECT_THROW(sim.run(1000), SimTimeoutError);
}

TEST(WatchdogTest, TimeoutIsAnEnsureError) {
    // Pre-existing catch sites treat runaway programs as EnsureError; the
    // refined type must stay inside that family.
    const Program p = assemble("main: j main\n");
    Memory m;
    m.loadProgram(p);
    FunctionalSim sim(p, m);
    bool caught = false;
    try {
        (void)sim.run(100);
    } catch (const EnsureError&) {
        caught = true;
    }
    EXPECT_TRUE(caught);
}

// --------------------------------------------------------- fault plumbing ----

TEST(FaultSiteTest, JsonRoundTrip) {
    FaultSite bdtSite;
    bdtSite.unit = FaultUnit::kBdtCond;
    bdtSite.reg = 17;
    bdtSite.cond = 3;
    FaultSite bitSite;
    bitSite.unit = FaultUnit::kBit;
    bitSite.entry = 2;
    bitSite.field = BitField::kBfi;
    bitSite.bit = 22;
    FaultSite bpSite;
    bpSite.unit = FaultUnit::kBpCounter;
    bpSite.index = 511;
    bpSite.bit = 1;
    for (const FaultSite& site : {bdtSite, bitSite, bpSite}) {
        const FaultSite back = faultSiteFromJson(faultSiteJson(site));
        EXPECT_EQ(back, site) << describeSite(site);
    }
    EXPECT_THROW((void)faultSiteFromJson(JsonValue{"nope"}), EnsureError);
    JsonObject bad;
    bad.emplace_back("unit", "warp_core");
    EXPECT_THROW((void)faultSiteFromJson(JsonValue{std::move(bad)}),
                 EnsureError);
}

TEST(FaultSiteTest, EnumerationCoversAllClasses) {
    AsbrUnit unit;
    unit.loadBank(0, oneEntry());
    BimodalPredictor bimodal(64, 64);
    const auto sites = enumerateSites(unit, &bimodal);
    std::size_t bdt = 0, bit = 0, bp = 0;
    for (const FaultSite& s : sites) {
        if (s.unit == FaultUnit::kBit) ++bit;
        else if (s.unit == FaultUnit::kBpCounter) ++bp;
        else ++bdt;
    }
    // One condition register: 6 cond bits + 3 counter bits + 1 parity bit.
    EXPECT_EQ(bdt, 10u);
    // One BIT entry: 32 (pc) + 8 (di) + 32 (bta) + 32+32 (bti/bfi) + parity.
    EXPECT_EQ(bit, 137u);
    EXPECT_EQ(bp, 2u * 64u);
    const auto noBp = enumerateSites(unit, nullptr);
    EXPECT_EQ(noBp.size(), bdt + bit);
}

// ------------------------------------------------------------- campaigns ----

PipelineConfig fastConfig() {
    PipelineConfig cfg;
    cfg.icache.missPenalty = 0;
    cfg.dcache.missPenalty = 0;
    cfg.redirectBubbles = 0;
    return cfg;
}

/// Countdown loop with two fillers: condition distance 3, folds at mem_end.
constexpr const char* kLoopSrc = R"(
main:   li   s0, 30
loop:   addiu s0, s0, -1
        addiu t1, t1, 1
        addiu t2, t2, 2
        bnez  s0, loop
        li   v0, 1
        li   a0, 0
        sys
)";
constexpr std::uint32_t kLoopBranchPc = kTextBase + 4 * 4;

/// Loop guarded by a register written exactly once: after the setup write,
/// the BDT entry for s1 is never refreshed, so an injected direction-bit
/// flip stays stale until the fold consumes it — the worst-case SDC victim.
/// (In kLoopSrc the producer rewrites the entry every iteration at MEM,
/// which scrubs any flip before fetch can read it.)
constexpr const char* kConstGuardSrc = R"(
main:   li   s1, 1
        li   s0, 30
loop:   addiu s0, s0, -1
        addiu t1, t1, 1
        beqz  s0, done
        bnez  s1, loop
done:   li   v0, 1
        li   a0, 0
        sys
)";
constexpr std::uint32_t kConstGuardBranchPc = kTextBase + 5 * 4;

FaultRunFactory toyFactory(std::shared_ptr<const Program> program,
                           std::uint32_t branchPc, bool protectedMode) {
    return [program, branchPc, protectedMode]() {
        FaultRun run;
        run.program = program.get();
        run.memory.loadProgram(*program);
        auto bimodal = std::make_unique<BimodalPredictor>(64, 64);
        run.bimodalTarget = bimodal.get();
        run.predictor = std::move(bimodal);
        AsbrConfig cfg;
        cfg.updateStage = ValueStage::kMemEnd;
        cfg.bitCapacity = 4;
        cfg.parityProtected = protectedMode;
        run.unit = std::make_unique<AsbrUnit>(cfg);
        const std::uint32_t pcs[] = {branchPc};
        run.unit->loadBank(0, extractBranchInfos(*program, pcs));
        run.config = fastConfig();
        return run;
    };
}

std::shared_ptr<const Program> toyProgram() {
    return std::make_shared<const Program>(assemble(kLoopSrc));
}

TEST(CampaignTest, ContextAnchorsPipelineToGoldenModel) {
    const CampaignContext context = computeContext(toyFactory(toyProgram(), kLoopBranchPc, false));
    EXPECT_GT(context.cleanCycles, 0u);
    EXPECT_EQ(context.golden.exitCode, 0);
    EXPECT_EQ(context.cleanRecoveries, 0u);
}

TEST(CampaignTest, SameSeedIsBitReproducible) {
    const auto program = toyProgram();
    CampaignConfig config;
    config.seed = 42;
    config.injections = 12;
    const CampaignResult a = runCampaign(toyFactory(program, kLoopBranchPc, false), config);
    const CampaignResult b = runCampaign(toyFactory(program, kLoopBranchPc, false), config);
    EXPECT_EQ(a.outcomes, b.outcomes);
    ASSERT_EQ(a.records.size(), b.records.size());
    for (std::size_t i = 0; i < a.records.size(); ++i) {
        EXPECT_EQ(a.records[i].injection.site, b.records[i].injection.site);
        EXPECT_EQ(a.records[i].injection.cycle, b.records[i].injection.cycle);
        EXPECT_EQ(a.records[i].outcome, b.records[i].outcome);
        EXPECT_EQ(a.records[i].cycles, b.records[i].cycles);
    }
    std::uint64_t sum = 0;
    for (const std::uint64_t n : a.outcomes) sum += n;
    EXPECT_EQ(sum, config.injections);
}

/// Find a cycle where flipping the loop predicate's kNez direction bit
/// silently corrupts the result on unprotected hardware.
std::uint64_t findSdcCycle(const FaultRunFactory& factory,
                           const CampaignContext& context,
                           const FaultSite& site) {
    for (std::uint64_t cycle = 1;
         cycle <= context.cleanCycles; ++cycle) {
        const InjectionRecord r =
            runInjection(factory, {site, cycle}, context, 4);
        if (r.outcome == FaultOutcome::kSdc) return cycle;
    }
    return 0;
}

FaultSite loopPredicateSite() {
    FaultSite site;
    site.unit = FaultUnit::kBdtCond;
    site.reg = reg::s0 + 1;  // s1, the once-written guard register
    site.cond = static_cast<std::uint32_t>(Cond::kNez);
    return site;
}

std::shared_ptr<const Program> constGuardProgram() {
    return std::make_shared<const Program>(assemble(kConstGuardSrc));
}

TEST(CampaignTest, UnprotectedConditionFlipCausesSdc) {
    const auto program = constGuardProgram();
    const FaultRunFactory factory =
        toyFactory(program, kConstGuardBranchPc, false);
    const CampaignContext context = computeContext(factory);
    const std::uint64_t cycle =
        findSdcCycle(factory, context, loopPredicateSite());
    ASSERT_NE(cycle, 0u)
        << "no cycle produced an SDC — the stale-direction hazard is gone?";
    const InjectionRecord r =
        runInjection(factory, {loopPredicateSite(), cycle}, context, 4);
    EXPECT_EQ(r.outcome, FaultOutcome::kSdc);
    EXPECT_EQ(r.recoveries, 0u);
    EXPECT_FALSE(r.detail.empty());
}

TEST(CampaignTest, ProtectionConvertsSdcToDetectedRecovered) {
    const auto program = constGuardProgram();
    const FaultRunFactory unprotectedFactory =
        toyFactory(program, kConstGuardBranchPc, false);
    const CampaignContext unprotectedContext =
        computeContext(unprotectedFactory);
    const std::uint64_t cycle = findSdcCycle(
        unprotectedFactory, unprotectedContext, loopPredicateSite());
    ASSERT_NE(cycle, 0u);

    const FaultRunFactory protectedFactory =
        toyFactory(program, kConstGuardBranchPc, true);
    const CampaignContext protectedContext = computeContext(protectedFactory);
    // With zero faults, protection must not change timing at all.
    EXPECT_EQ(protectedContext.cleanCycles, unprotectedContext.cleanCycles);

    const InjectionRecord r = runInjection(
        protectedFactory, {loopPredicateSite(), cycle}, protectedContext, 4);
    EXPECT_EQ(r.outcome, FaultOutcome::kDetectedRecovered)
        << faultOutcomeName(r.outcome) << " — " << r.detail;
    EXPECT_GE(r.recoveries, 1u);
    // Recovery costs cycles (quarantine kills folding + scrub bubbles).
    EXPECT_GE(r.cycles, protectedContext.cleanCycles);
}

TEST(CampaignTest, CorruptedDirectionIndexAbortsUnprotected) {
    // Flipping the DI register field makes the BIT entry disagree with the
    // fetched instruction — the fold logic's integrity check must trap.
    const auto program = toyProgram();
    const FaultRunFactory factory = toyFactory(program, kLoopBranchPc, false);
    const CampaignContext context = computeContext(factory);
    FaultSite site;
    site.unit = FaultUnit::kBit;
    site.entry = 0;
    site.field = BitField::kDi;
    site.bit = 0;  // conditionReg bit
    const InjectionRecord r = runInjection(factory, {site, 1}, context, 4);
    EXPECT_EQ(r.outcome, FaultOutcome::kDetectedAborted)
        << faultOutcomeName(r.outcome);
    EXPECT_FALSE(r.detail.empty());
}

TEST(CampaignTest, ProtectedCampaignHasNoSilentCorruption) {
    const auto program = toyProgram();
    CampaignConfig config;
    config.seed = 2001;
    config.injections = 24;
    const CampaignResult unprotectedResult =
        runCampaign(toyFactory(program, kLoopBranchPc, false), config);
    const CampaignResult protectedResult =
        runCampaign(toyFactory(program, kLoopBranchPc, true), config);
    EXPECT_EQ(protectedResult.count(FaultOutcome::kSdc), 0u);
    EXPECT_EQ(protectedResult.count(FaultOutcome::kDetectedAborted), 0u);
    EXPECT_EQ(protectedResult.count(FaultOutcome::kHang), 0u);
    // Same sampling seed → same sites/cycles in both campaigns.
    ASSERT_EQ(unprotectedResult.records.size(),
              protectedResult.records.size());
    for (std::size_t i = 0; i < unprotectedResult.records.size(); ++i)
        EXPECT_EQ(unprotectedResult.records[i].injection.site,
                  protectedResult.records[i].injection.site);
}

// ------------------------------------------------- zero-fault overhead ----

TEST(ProtectionTest, ZeroFaultsMeansZeroOverhead) {
    const auto program = toyProgram();
    const auto runOnce = [&](bool prot) {
        FaultRun run = toyFactory(program, kLoopBranchPc, prot)();
        PipelineSim sim(*run.program, run.memory, *run.predictor, run.config,
                        run.unit.get());
        const PipelineResult r = sim.run();
        EXPECT_EQ(run.unit->stats().parityRecoveries, 0u);
        EXPECT_EQ(r.stats.parityStallCycles, 0u);
        return r.stats.cycles;
    };
    EXPECT_EQ(runOnce(false), runOnce(true));
}

TEST(ProtectionTest, ParityStorageCountedOnlyWhenProtected) {
    AsbrConfig base;
    AsbrConfig prot = base;
    prot.parityProtected = true;
    const AsbrUnit unprotectedUnit(base);
    const AsbrUnit protectedUnit(prot);
    EXPECT_EQ(protectedUnit.storageBits(),
              unprotectedUnit.storageBits() +
                  BranchDirectionTable::parityStorageBits() +
                  unprotectedUnit.bit().parityStorageBits());
}

// ---------------------------------------------------------- fault report ----

TEST(FaultReportTest, SerializeValidateRoundTrip) {
    const auto program = toyProgram();
    CampaignConfig config;
    config.seed = 7;
    config.injections = 8;
    const CampaignResult result =
        runCampaign(toyFactory(program, kLoopBranchPc, false), config);

    FaultReportMeta meta;
    meta.benchmark = "adpcm-enc";
    meta.predictor = "bimodal";
    meta.seed = 2001;
    meta.samples = 100;
    meta.bitEntries = 4;
    meta.updateStage = "mem_end";

    const JsonValue doc = faultReportJson(meta, config, result);
    EXPECT_TRUE(validateFaultReportJson(doc).ok());

    // Text round trip (what the CLI writes and CI re-validates).
    const JsonParseResult parsed = parseJson(doc.dump(2));
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_TRUE(validateFaultReportJson(*parsed.value).ok());
}

TEST(FaultReportTest, ValidatorRejectsCorruptDocuments) {
    const auto program = toyProgram();
    CampaignConfig config;
    config.injections = 4;
    const CampaignResult result =
        runCampaign(toyFactory(program, kLoopBranchPc, false), config);
    FaultReportMeta meta;
    meta.benchmark = "adpcm-enc";
    meta.predictor = "bimodal";
    meta.updateStage = "mem_end";

    JsonValue good = faultReportJson(meta, config, result);
    ASSERT_TRUE(validateFaultReportJson(good).ok());

    JsonValue wrongSchema = good;
    wrongSchema.set("schema", JsonValue{"asbr.sim_report"});
    EXPECT_FALSE(validateFaultReportJson(wrongSchema).ok());

    // Outcome histogram no longer accounts for every injection.
    JsonValue badSum = good;
    JsonObject outcomes = badSum.find("outcomes")->asObject();
    outcomes[0].second =
        JsonValue{outcomes[0].second.asUint() + 1};
    badSum.set("outcomes", JsonValue{std::move(outcomes)});
    EXPECT_FALSE(validateFaultReportJson(badSum).ok());

    JsonValue noMeta = good;
    JsonObject stripped;
    for (const auto& [key, value] : good.asObject())
        if (key != "meta") stripped.emplace_back(key, value);
    EXPECT_FALSE(validateFaultReportJson(JsonValue{std::move(stripped)}).ok());

    EXPECT_FALSE(validateFaultReportJson(JsonValue{"not an object"}).ok());
}

}  // namespace
}  // namespace asbr

// Unit tests for the two-pass assembler.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "isa/disasm.hpp"

namespace asbr {
namespace {

TEST(AsmTest, EmptySource) {
    const Program p = assemble("");
    EXPECT_TRUE(p.code.empty());
    EXPECT_TRUE(p.data.empty());
    EXPECT_EQ(p.entry, kTextBase);
}

TEST(AsmTest, BasicInstructions) {
    const Program p = assemble(R"(
        .text
main:   addiu t0, zero, 5
        addu  t1, t0, t0
        sw    t1, 0(sp)
        lw    t2, 0(sp)
        nop
        sys
    )");
    ASSERT_EQ(p.code.size(), 6u);
    EXPECT_EQ(p.code[0], (Instruction{Op::kAddiu, reg::t0, reg::zero, 0, 5}));
    EXPECT_EQ(p.code[1], (Instruction{Op::kAddu, 9, 8, 8, 0}));
    EXPECT_EQ(p.code[2], (Instruction{Op::kSw, 0, reg::sp, 9, 0}));
    EXPECT_EQ(p.code[3], (Instruction{Op::kLw, 10, reg::sp, 0, 0}));
    EXPECT_EQ(p.code[4].op, Op::kNop);
    EXPECT_EQ(p.code[5].op, Op::kSys);
    EXPECT_EQ(p.entry, kTextBase);
    EXPECT_EQ(p.symbol("main"), kTextBase);
}

TEST(AsmTest, CommentsAndBlankLines) {
    const Program p = assemble(R"(
        # full line comment
        nop   # trailing comment
        nop   ; alt comment
    )");
    EXPECT_EQ(p.code.size(), 2u);
}

TEST(AsmTest, BranchToLabelForwardAndBack) {
    const Program p = assemble(R"(
loop:   addiu t0, t0, -1
        bnez  t0, loop
        beqz  t0, done
        nop
done:   jr ra
    )");
    ASSERT_EQ(p.code.size(), 5u);
    // bnez at index 1; target loop at index 0: offset = 0 - 2 = -2.
    EXPECT_EQ(p.code[1].imm, -2);
    // beqz at index 2; target done at index 4: offset = 4 - 3 = 1.
    EXPECT_EQ(p.code[2].imm, 1);
}

TEST(AsmTest, JumpAndCall) {
    const Program p = assemble(R"(
main:   jal func
        sys
func:   jr ra
    )");
    EXPECT_EQ(p.code[0].op, Op::kJal);
    EXPECT_EQ(static_cast<std::uint32_t>(p.code[0].imm) * kInstrBytes,
              p.symbol("func"));
}

TEST(AsmTest, DataDirectivesAndSymbols) {
    const Program p = assemble(R"(
        .data
w:      .word 1, -2, 0x10
h:      .half 258
b:      .byte 1, 2, 3
        .align 2
aligned: .word 7
buf:    .space 16
after:  .word after
    )");
    EXPECT_EQ(p.symbol("w"), kDataBase);
    EXPECT_EQ(p.symbol("h"), kDataBase + 12);
    EXPECT_EQ(p.symbol("b"), kDataBase + 14);
    EXPECT_EQ(p.symbol("aligned"), kDataBase + 20);
    EXPECT_EQ(p.symbol("buf"), kDataBase + 24);
    EXPECT_EQ(p.symbol("after"), kDataBase + 40);
    // Little-endian contents.
    EXPECT_EQ(p.data[0], 1);
    EXPECT_EQ(p.data[4], 0xFE);  // -2
    EXPECT_EQ(p.data[5], 0xFF);
    EXPECT_EQ(p.data[8], 0x10);
    EXPECT_EQ(p.data[12], 2);  // 258 = 0x0102
    EXPECT_EQ(p.data[13], 1);
    EXPECT_EQ(p.data[14], 1);
    EXPECT_EQ(p.data[16], 3);
    // .word after == address of 'after'.
    const std::uint32_t afterAddr = p.symbol("after");
    EXPECT_EQ(p.data[40], static_cast<std::uint8_t>(afterAddr & 0xFF));
}

TEST(AsmTest, PseudoLi) {
    const Program p = assemble(R"(
        li t0, 5
        li t1, -5
        li t2, 40000
        li t3, 0x12340000
        li t4, 0x12345678
        li t5, -100000
    )");
    ASSERT_EQ(p.code.size(), 8u);
    EXPECT_EQ(p.code[0].op, Op::kAddiu);
    EXPECT_EQ(p.code[1].op, Op::kAddiu);
    EXPECT_EQ(p.code[2].op, Op::kOri);   // fits uimm16
    EXPECT_EQ(p.code[3].op, Op::kLui);   // low half zero
    EXPECT_EQ(p.code[4].op, Op::kLui);   // lui+ori
    EXPECT_EQ(p.code[5].op, Op::kOri);
    EXPECT_EQ(p.code[5].imm, 0x5678);
    EXPECT_EQ(p.code[6].op, Op::kLui);   // negative 32-bit
    EXPECT_EQ(p.code[7].op, Op::kOri);
}

TEST(AsmTest, PseudoLaMoveNegNotB) {
    const Program p = assemble(R"(
        .data
var:    .word 42
        .text
main:   la   t0, var
        la   t1, var+4
        move t2, t0
        neg  t3, t2
        not  t4, t2
        b    main
    )");
    ASSERT_EQ(p.code.size(), 8u);
    EXPECT_EQ(p.code[0].op, Op::kLui);
    EXPECT_EQ(p.code[1].op, Op::kOri);
    EXPECT_EQ(p.code[3].imm, static_cast<std::int32_t>((kDataBase + 4) & 0xFFFF));
    EXPECT_EQ(p.code[4], (Instruction{Op::kAddu, 10, 8, 0, 0}));
    EXPECT_EQ(p.code[5], (Instruction{Op::kSubu, 11, 0, 10, 0}));
    EXPECT_EQ(p.code[6], (Instruction{Op::kNor, 12, 10, 0, 0}));
    EXPECT_EQ(p.code[7].op, Op::kJ);
}

TEST(AsmTest, MultipleLabelsOneAddress) {
    const Program p = assemble(R"(
a: b_: c:
        nop
    )");
    EXPECT_EQ(p.symbol("a"), p.symbol("b_"));
    EXPECT_EQ(p.symbol("a"), p.symbol("c"));
}

TEST(AsmTest, EntrySymbolSelection) {
    AsmOptions opts;
    opts.entrySymbol = "start";
    const Program p = assemble(R"(
helper: nop
start:  nop
    )", opts);
    EXPECT_EQ(p.entry, kTextBase + 4);
}

TEST(AsmTest, SourceLineTracking) {
    const Program p = assemble("nop\nnop\n  addiu t0, t0, 1\n");
    EXPECT_EQ(p.sourceLine(kTextBase), 1);
    EXPECT_EQ(p.sourceLine(kTextBase + 8), 3);
}

TEST(AsmTest, Errors) {
    EXPECT_THROW(assemble("bogus t0, t1"), AsmError);
    EXPECT_THROW(assemble("addu t0, t1"), AsmError);           // arity
    EXPECT_THROW(assemble("addu q0, t1, t2"), AsmError);       // bad reg
    EXPECT_THROW(assemble("beqz t0, nowhere"), AsmError);      // undefined label
    EXPECT_THROW(assemble("l: nop\nl: nop"), AsmError);        // duplicate label
    EXPECT_THROW(assemble("lw t0, 4(t1"), AsmError);           // missing ')'
    EXPECT_THROW(assemble("addiu t0, t1, 100000"), AsmError);  // imm range
    EXPECT_THROW(assemble(".word 1"), AsmError);               // data in .text
    EXPECT_THROW(assemble(".frobnicate"), AsmError);           // unknown directive
}

TEST(AsmTest, ErrorsCarryLineNumbers) {
    try {
        assemble("nop\nnop\nbogus\n");
        FAIL() << "expected AsmError";
    } catch (const AsmError& e) {
        EXPECT_EQ(e.line(), 3);
    }
}

// Disassembler text (sans labels) reassembles to the identical instruction.
TEST(AsmTest, DisasmReassembleRoundTrip) {
    const Program p = assemble(R"(
main:   addiu sp, sp, -16
        sw    ra, 12(sp)
        li    a0, 7
        sltiu v0, a0, 10
        srav  t0, a0, v0
        lhu   t1, 2(sp)
        jr    ra
    )");
    for (const Instruction& ins : p.code) {
        const Program q = assemble(disassemble(ins));
        ASSERT_EQ(q.code.size(), 1u);
        EXPECT_EQ(q.code[0], ins) << disassemble(ins);
    }
}

}  // namespace
}  // namespace asbr

# Unbounded-loop fixture: the trip counter round-trips through memory every
# iteration, so neither a .loopbound annotation nor the interval inference
# can bound the loop.  Plain `asbr-verify` must still exit 0 (the branch
# itself is fold-legal: its producer is threshold instructions ahead), but
# `asbr-verify --strict` must fail on the unbounded-loop lint.
        .text
main:   li   t0, 5
        sw   t0, count
loop:   lw   s0, count
        addiu s0, s0, -1
        sw   s0, count
        nop
        nop
        bnez s0, loop
        li   v0, 1
        li   a0, 0
        sys
        .data
count:  .word 0

# Deliberately-illegal fold fixture: the predicate-defining addiu sits
# immediately before the branch on every path and every execution, so the
# distance is 1 < threshold — asbr-verify must flag the branch Illegal and
# exit nonzero.
        .text
main:   li   t0, 3
loop:   addiu t0, t0, -1
        bgtz t0, loop
        li   v0, 1
        li   a0, 0
        sys

# Fold-legal fixture with calls: the branch condition is produced in the
# callee well before the return, so the interprocedural path (producer ->
# epilogue -> jr -> return point -> branch) stays >= threshold and the
# verifier must prove it safe without dynamic evidence.
        .text
main:   li   s0, 6
loop:   jal  step
        nop
        bgtz v0, loop
        li   v0, 1
        li   a0, 0
        sys
step:   addiu s0, s0, -1
        move v0, s0
        nop
        nop
        jr   ra

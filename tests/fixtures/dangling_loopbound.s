# Dangling-annotation fixture: the .loopbound is attached to a straight-line
# instruction, not a loop head, so it silently bounds nothing.  Plain
# `asbr-verify` must still exit 0 (every branch is fold-legal), but
# `asbr-verify --strict` must fail on the dangling-loopbound lint.  The real
# loop is bounded by the interval inference, so no unbounded-loop lint
# fires alongside.
        .text
main:   li   s0, 6
        .loopbound 8
        li   s1, 0
loop:   addiu s0, s0, -1
        nop
        nop
        bnez s0, loop
        li   v0, 1
        li   a0, 0
        sys

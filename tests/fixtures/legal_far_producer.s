# Fold-legal fixture: every conditional branch's producer is at least
# threshold (3) instructions ahead on every static path, so asbr-verify
# must report ProvablySafe across the board and exit 0.
        .text
main:   li   t0, 10
        li   t1, 0
loop:   addiu t1, t1, 1
        subu  t2, t1, t0
        nop
        nop
        bltz t2, loop
        li   v0, 1
        li   a0, 0
        sys

# Dispatch-table fixture: the jalr target register is loaded from a
# read-only two-entry table of handler addresses, with the index provably
# confined to [0,1] by the andi mask.  The value-set analysis must resolve
# the jalr to exactly {even, odd}, turning the conservative "indirect
# control flow" WCET failure into a bounded:true result (the call site is
# charged the more expensive handler), and `asbr-verify` must still verify
# the program clean.
        .text
main:   lw   t0, sel
        andi t0, t0, 1
        sll  t0, t0, 2
        la   t1, table
        addu t1, t1, t0
        lw   t2, 0(t1)
        jalr t2
        move s0, v0
        li   v0, 1
        li   a0, 0
        sys
even:   li   v0, 2
        jr   ra
odd:    li   v0, 3
        jr   ra
        .data
sel:    .word 1
table:  .word even, odd

// Durable-execution tests: the write-ahead job journal, resume, watchdog /
// retry / quarantine semantics behind asbr-sweep --journal and asbr-faults
// campaign --journal (docs/robustness.md).
//
// The load-bearing property is the same byte-identity ci/resume.sh proves
// with the real binaries: a run that crashed (journal truncated mid-record)
// and was resumed must serialize exactly the bytes of the run that never
// crashed, at any thread count.  On top of that: torn/garbage journal lines
// must degrade to "job not finished" rather than corrupt state, quarantine
// must be sticky across resume until --max-attempts is raised, and an
// interrupt must skip cleanly instead of recording a failure.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "driver/cli.hpp"
#include "driver/deadline.hpp"
#include "driver/engine.hpp"
#include "driver/journal.hpp"
#include "driver/names.hpp"
#include "report/fault_report.hpp"
#include "report/sweep_report.hpp"
#include "util/ensure.hpp"

namespace {

using namespace asbr;
using namespace asbr::driver;

SimJob tinyJob(BenchId id, const std::string& predictor, bool asbr) {
    CliOptions options;
    options.adpcmSamples = 1'000;
    options.g721Samples = 400;
    SimJob job;
    job.workload = id;
    job.seed = options.seed;
    job.samples = samplesFor(options, id);
    job.predictor = predictor;
    job.figure = "test";
    job.asbr = asbr;
    return job;
}

std::vector<SimJob> tinyGrid() {
    std::vector<SimJob> jobs;
    jobs.push_back(tinyJob(BenchId::kAdpcmEncode, "bimodal", false));
    SimJob bit2 = tinyJob(BenchId::kAdpcmEncode, "bimodal", true);
    bit2.bitEntries = 2;
    jobs.push_back(bit2);
    SimJob bit4 = bit2;
    bit4.bitEntries = 4;
    jobs.push_back(bit4);
    jobs.push_back(tinyJob(BenchId::kAdpcmDecode, "bi512", true));
    return jobs;
}

/// Fresh scratch directory under the gtest temp root.
std::string freshDir(const std::string& name) {
    const std::string dir = testing::TempDir() + "asbr_durability_" + name;
    std::filesystem::remove_all(dir);
    return dir;
}

std::string journalPath(const std::string& dir) {
    return dir + "/journal.jsonl";
}

std::string readFile(const std::string& path) {
    std::ifstream in(path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
}

void writeFile(const std::string& path, const std::string& text) {
    std::ofstream out(path, std::ios::trunc);
    out << text;
}

/// Keep the first `lines` journal lines and append `tail` verbatim —
/// simulates a crash that tore the write at an arbitrary byte.
void truncateJournal(const std::string& dir, std::size_t lines,
                     const std::string& tail) {
    const std::string text = readFile(journalPath(dir));
    std::string kept;
    std::size_t seen = 0;
    std::size_t start = 0;
    while (seen < lines) {
        const std::size_t nl = text.find('\n', start);
        if (nl == std::string::npos) break;
        kept.append(text, start, nl - start + 1);
        start = nl + 1;
        ++seen;
    }
    writeFile(journalPath(dir), kept + tail);
}

/// Truncate right after the first "done" record (parallel runs interleave
/// records, so a fixed line count could keep zero completed jobs) and tear
/// the next line mid-byte.
void truncateAfterFirstDone(const std::string& dir, const std::string& tail) {
    const std::string text = readFile(journalPath(dir));
    std::istringstream in(text);
    std::string line;
    std::size_t lines = 0;
    bool sawDone = false;
    while (!sawDone && std::getline(in, line)) {
        ++lines;
        sawDone = line.rfind(R"({"status":"done")", 0) == 0;
    }
    ASSERT_TRUE(sawDone) << "journal holds no completed record to keep";
    truncateJournal(dir, lines, tail);
}

/// The exact document asbr-sweep serializes from a durable outcome.
std::string sweepDocBytes(const DurableRunResult& outcome) {
    std::vector<SweepCell> cells;
    for (const CellOutcome& cell : outcome.cells) {
        SweepCell out;
        out.job = cell.key;
        out.status = cell.status == CellStatus::kOk ? "ok" : "failed";
        out.attempts = cell.attempts;
        out.report = cell.report;
        out.error = cell.error;
        cells.push_back(std::move(out));
    }
    return sweepReportJson("durability_test", JsonValue(JsonObject{}), cells)
        .dump(2);
}

DurablePolicy journalPolicy(const std::string& dir, bool resume) {
    DurablePolicy policy;
    policy.journalDir = dir;
    policy.resume = resume;
    return policy;
}

TEST(BackoffTest, ScheduleIsDeterministicAndBounded) {
    EXPECT_EQ(backoffDelayMs(0), 0u);
    EXPECT_EQ(backoffDelayMs(1), 0u);  // first retry is immediate
    EXPECT_EQ(backoffDelayMs(2), 25u);
    EXPECT_EQ(backoffDelayMs(3), 50u);
    EXPECT_EQ(backoffDelayMs(4), 100u);
    EXPECT_EQ(backoffDelayMs(5), 200u);
    EXPECT_EQ(backoffDelayMs(6), 400u);
    EXPECT_EQ(backoffDelayMs(7), 400u);  // capped
    EXPECT_EQ(backoffDelayMs(64), 400u);  // no shift overflow
}

TEST(JobKeyTest, KeysAreDistinctAcrossAGrid) {
    SimEngine engine;
    const std::vector<SimJob> jobs = tinyGrid();
    std::vector<std::string> keys;
    for (const SimJob& job : jobs) keys.push_back(engine.jobKey(job));
    for (std::size_t i = 0; i < keys.size(); ++i)
        for (std::size_t j = i + 1; j < keys.size(); ++j)
            EXPECT_NE(keys[i], keys[j]) << "jobs " << i << " and " << j;
    // Keys are filesystem-safe: journal artifacts are named after them.
    for (const std::string& key : keys)
        EXPECT_EQ(key.find('/'), std::string::npos) << key;
}

TEST(JobJournalTest, ReplayFoldsRecordsAndSkipsGarbage) {
    const std::string dir = freshDir("replay");
    const std::string digest = fnv1a64Hex("grid");
    {
        JobJournal journal(dir, false, digest, 3);
        journal.recordStart("a", 1);
        journal.recordFailed("a", 1, "boom");
        journal.recordStart("a", 2);
        journal.recordDone("a", 2, "artifacts/a.json", fnv1a64Hex("x"));
        journal.recordStart("b", 1);  // dangling: crashed mid-attempt
    }
    // A torn trailing write plus unparseable garbage in the middle.
    std::ofstream(journalPath(dir), std::ios::app)
        << "not json at all\n"
        << R"({"status":"done","jobKey":"c","att)";  // no newline: torn

    JobJournal journal(dir, true, digest, 3);
    EXPECT_EQ(journal.skippedLines(), 2u);

    const JournalEntry* a = journal.entry("a");
    ASSERT_NE(a, nullptr);
    EXPECT_TRUE(a->done);
    EXPECT_EQ(a->doneAttempt, 2u);
    EXPECT_EQ(a->failedAttempts, 1u);
    EXPECT_EQ(a->lastError, "boom");
    EXPECT_EQ(a->artifactPath, "artifacts/a.json");

    // The dangling "running" record must not count as an attempt.
    const JournalEntry* b = journal.entry("b");
    ASSERT_NE(b, nullptr);
    EXPECT_FALSE(b->done);
    EXPECT_EQ(b->failedAttempts, 0u);

    EXPECT_EQ(journal.entry("c"), nullptr);  // torn record never landed
}

TEST(JobJournalTest, FreshModeRefusesAnExistingJournal) {
    const std::string dir = freshDir("fresh");
    { JobJournal journal(dir, false, fnv1a64Hex("grid"), 1); }
    EXPECT_THROW(JobJournal(dir, false, fnv1a64Hex("grid"), 1), EnsureError);
}

TEST(JobJournalTest, ResumeRefusesManifestMismatch) {
    const std::string dir = freshDir("manifest");
    { JobJournal journal(dir, false, fnv1a64Hex("grid"), 2); }
    // Same digest + count resumes fine...
    { JobJournal journal(dir, true, fnv1a64Hex("grid"), 2); }
    // ...but a different grid or cardinality is refused loudly.
    EXPECT_THROW(JobJournal(dir, true, fnv1a64Hex("other"), 2), EnsureError);
    EXPECT_THROW(JobJournal(dir, true, fnv1a64Hex("grid"), 3), EnsureError);
    // Resuming a directory with no journal at all is also an error.
    EXPECT_THROW(JobJournal(freshDir("missing"), true, fnv1a64Hex("grid"), 1),
                 EnsureError);
}

TEST(JobJournalTest, ArtifactDigestMismatchIsRejected) {
    const std::string dir = freshDir("artifact");
    JobJournal journal(dir, false, fnv1a64Hex("grid"), 1);
    const std::string rel = JobJournal::artifactPathFor("job-a");
    journal.writeArtifact(rel, "payload");
    EXPECT_TRUE(journal.readArtifact(rel, fnv1a64Hex("payload")).has_value());
    EXPECT_FALSE(journal.readArtifact(rel, fnv1a64Hex("tampered")).has_value());
    EXPECT_FALSE(
        journal.readArtifact("artifacts/nope.json", fnv1a64Hex("payload"))
            .has_value());
}

TEST(DurableRun, ResumeAfterTornJournalByteMatchesOneShot) {
    const std::vector<SimJob> jobs = tinyGrid();

    SimEngine plain({.threads = 1});
    const std::string oneShot = sweepDocBytes(plain.runDurable(jobs, {}));

    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
        const std::string dir =
            freshDir("resume_t" + std::to_string(threads));
        {
            SimEngine first({.threads = threads});
            const DurableRunResult full =
                first.runDurable(jobs, journalPolicy(dir, false));
            EXPECT_EQ(full.countWith(CellStatus::kOk), jobs.size());
        }
        // Crash simulation: everything up to the first completed record
        // survives, the next record is torn mid-byte.
        truncateAfterFirstDone(dir, R"({"status":"done","jobKey":)");

        SimEngine second({.threads = threads});
        const DurableRunResult resumed =
            second.runDurable(jobs, journalPolicy(dir, true));
        EXPECT_GE(second.stats().jobsResumed, 1u);
        EXPECT_EQ(resumed.resumedJobs, second.stats().jobsResumed);
        EXPECT_EQ(sweepDocBytes(resumed), oneShot)
            << "resumed sweep diverged at --threads=" << threads;
    }
}

TEST(DurableRun, CorruptArtifactIsSilentlyRecomputed) {
    const std::vector<SimJob> jobs = tinyGrid();
    const std::string dir = freshDir("corrupt_artifact");
    SimEngine plain({.threads = 1});
    const std::string oneShot = sweepDocBytes(plain.runDurable(jobs, {}));
    {
        SimEngine first({.threads = 1});
        (void)first.runDurable(jobs, journalPolicy(dir, false));
    }
    // Flip every artifact's bytes; the recorded digests no longer match, so
    // resume must recompute rather than splice corrupt documents.
    for (const auto& entry :
         std::filesystem::directory_iterator(dir + "/artifacts"))
        writeFile(entry.path().string(), "{\"corrupt\": true}");

    SimEngine second({.threads = 1});
    const DurableRunResult resumed =
        second.runDurable(jobs, journalPolicy(dir, true));
    EXPECT_EQ(second.stats().jobsResumed, 0u);
    EXPECT_EQ(sweepDocBytes(resumed), oneShot);
}

TEST(DurableRun, PersistentFailureQuarantinesWithoutAborting) {
    std::vector<SimJob> jobs = tinyGrid();
    jobs[2].predictor = "no-such-predictor";  // resolves never, fails always

    const std::string dir = freshDir("quarantine");
    DurablePolicy policy = journalPolicy(dir, false);
    policy.maxAttempts = 2;

    SimEngine engine({.threads = 1});
    const DurableRunResult outcome = engine.runDurable(jobs, policy);
    ASSERT_EQ(outcome.cells.size(), jobs.size());
    EXPECT_EQ(outcome.countWith(CellStatus::kOk), jobs.size() - 1);
    EXPECT_EQ(outcome.countWith(CellStatus::kFailed), 1u);
    EXPECT_FALSE(outcome.interrupted);

    const CellOutcome& failed = outcome.cells[2];
    EXPECT_EQ(failed.status, CellStatus::kFailed);
    EXPECT_EQ(failed.attempts, 2u);
    EXPECT_FALSE(failed.error.empty());

    // The serialized report carries the quarantine, and still validates.
    const std::string doc = sweepDocBytes(outcome);
    const JsonParseResult parsed = parseJson(doc);
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_TRUE(validateSweepReportJson(*parsed.value).ok());
    const JsonValue* failedJobs = parsed.value->find("failed_jobs");
    ASSERT_NE(failedJobs, nullptr);
    ASSERT_EQ(failedJobs->asArray().size(), 1u);

    // Resume at the same budget: the quarantine is sticky (no re-run)...
    SimEngine again({.threads = 1});
    const DurableRunResult sticky =
        again.runDurable(jobs, journalPolicy(dir, true));
    EXPECT_EQ(sticky.cells[2].status, CellStatus::kFailed);
    EXPECT_EQ(sticky.cells[2].attempts, 2u);

    // ...until --max-attempts is raised, which re-runs (and fails again,
    // with the attempt counter advancing past the journaled failures).
    DurablePolicy raised = journalPolicy(dir, true);
    raised.maxAttempts = 3;
    SimEngine third({.threads = 1});
    const DurableRunResult retried = third.runDurable(jobs, raised);
    EXPECT_EQ(retried.cells[2].status, CellStatus::kFailed);
    EXPECT_EQ(retried.cells[2].attempts, 3u);
}

TEST(DurableRun, WallClockWatchdogTripsAndQuarantines) {
    // A G.721 run is orders of magnitude longer than 1 ms of host time, so
    // the deadline trips at one of its 2^16-cycle checks on every attempt.
    CliOptions options;
    options.g721Samples = 20'000;
    SimJob job;
    job.workload = BenchId::kG721Encode;
    job.samples = samplesFor(options, job.workload);
    job.predictor = "bimodal";
    job.figure = "test";

    DurablePolicy policy;
    policy.jobTimeoutMs = 1;
    policy.maxAttempts = 2;
    SimEngine engine({.threads = 1});
    const DurableRunResult outcome = engine.runDurable({job}, policy);
    ASSERT_EQ(outcome.cells.size(), 1u);
    EXPECT_EQ(outcome.cells[0].status, CellStatus::kFailed);
    EXPECT_EQ(outcome.cells[0].attempts, 2u);
    EXPECT_EQ(outcome.cells[0].error,
              watchdogMessage("job", "wall-clock", 1, "ms"));
}

TEST(DurableRun, InterruptSkipsPendingJobsThenResumeCompletes) {
    const std::vector<SimJob> jobs = tinyGrid();
    const std::string dir = freshDir("interrupt");

    std::atomic<bool> interrupted{true};  // raised before anything ran
    DurablePolicy policy = journalPolicy(dir, false);
    policy.interrupted = &interrupted;

    SimEngine engine({.threads = 1});
    const DurableRunResult outcome = engine.runDurable(jobs, policy);
    EXPECT_TRUE(outcome.interrupted);
    EXPECT_EQ(outcome.countWith(CellStatus::kSkipped), jobs.size());

    // Nothing beyond the manifest may have been journaled: a skipped job
    // must not consume an attempt.
    std::istringstream lines(readFile(journalPath(dir)));
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line)) ++count;
    EXPECT_EQ(count, 1u);

    SimEngine fresh({.threads = 1});
    const std::string oneShot = sweepDocBytes(fresh.runDurable(jobs, {}));
    SimEngine resumed({.threads = 1});
    const DurableRunResult done =
        resumed.runDurable(jobs, journalPolicy(dir, true));
    EXPECT_FALSE(done.interrupted);
    EXPECT_EQ(sweepDocBytes(done), oneShot);
}

TEST(DurableCampaign, ResumeAfterTruncationByteMatchesOneShot) {
    const SimJob job = tinyJob(BenchId::kAdpcmEncode, "bimodal", true);
    CampaignConfig campaign;
    campaign.injections = 8;
    campaign.seed = 7;

    FaultReportMeta meta;  // fixed header; only records/outcomes matter
    meta.benchmark = benchToken(job.workload);
    meta.predictor = job.predictor;
    meta.seed = job.seed;
    meta.samples = job.samples;
    meta.updateStage = valueStageName(job.updateStage);

    SimEngine plain({.threads = 1});
    const std::string oneShot =
        faultReportJson(meta, campaign, plain.runCampaign(job, campaign))
            .dump(2);

    const std::string dir = freshDir("campaign");
    {
        SimEngine first({.threads = 1});
        const DurableCampaignResult full =
            first.runCampaignDurable(job, campaign, journalPolicy(dir, false));
        EXPECT_TRUE(full.failed.empty());
        EXPECT_EQ(
            faultReportJson(meta, campaign, full.result, full.failed).dump(2),
            oneShot);
    }
    // Crash after the first completed injection, tearing the next line.
    truncateAfterFirstDone(dir, R"({"status":"runn)");

    SimEngine second({.threads = 8});
    const DurableCampaignResult resumed =
        second.runCampaignDurable(job, campaign, journalPolicy(dir, true));
    EXPECT_GE(resumed.resumedJobs, 1u);
    EXPECT_TRUE(resumed.failed.empty());
    EXPECT_EQ(
        faultReportJson(meta, campaign, resumed.result, resumed.failed).dump(2),
        oneShot)
        << "resumed campaign diverged from the uninterrupted run";
}

TEST(DurableCampaign, ManifestPinsCampaignConfig) {
    const SimJob job = tinyJob(BenchId::kAdpcmEncode, "bimodal", true);
    CampaignConfig campaign;
    campaign.injections = 4;
    campaign.seed = 7;

    const std::string dir = freshDir("campaign_manifest");
    SimEngine engine({.threads = 1});
    (void)engine.runCampaignDurable(job, campaign, journalPolicy(dir, false));

    CampaignConfig different = campaign;
    different.seed = 8;
    EXPECT_THROW((void)engine.runCampaignDurable(job, different,
                                                 journalPolicy(dir, true)),
                 EnsureError);
}

}  // namespace

// Tests for the abstract-interpretation subsystem: the interval x sign
// domain, dominator tree and natural-loop detection, the value-analysis
// fixpoint (branch directions, dead arms, unreachable blocks, feasible-edge
// pruning of the reaching-producer dataflow), the static fold table and its
// AsbrUnit fetch path, the two-class selection policy, and the
// asbr.analysis_report schema round-trip.
#include <gtest/gtest.h>

#include <climits>
#include <set>

#include "analysis/absint/absint.hpp"
#include "analysis/absint/domain.hpp"
#include "analysis/dominators.hpp"
#include "analysis/loops.hpp"
#include "analysis/verify.hpp"
#include "asbr/asbr_unit.hpp"
#include "asbr/extract.hpp"
#include "asm/assembler.hpp"
#include "bp/predictor.hpp"
#include "bp/bimodal.hpp"
#include "mem/memory.hpp"
#include "profile/profiler.hpp"
#include "profile/selection.hpp"
#include "report/analysis_report.hpp"
#include "sim/pipeline.hpp"

namespace asbr {
namespace {

using analysis::AbsValue;
using analysis::BranchDirection;
using analysis::TriBool;

constexpr const char* kExit = R"(
        li   v0, 1
        li   a0, 0
        sys
)";

std::uint32_t pcAt(const Program& p, std::size_t index) {
    return p.textBase + static_cast<std::uint32_t>(index) * kInstrBytes;
}

/// PC of the n-th conditional branch in program order.
std::uint32_t nthBranchPc(const Program& p, std::size_t n) {
    for (std::size_t i = 0; i < p.code.size(); ++i)
        if (isCondBranch(p.code[i].op) && n-- == 0) return pcAt(p, i);
    ADD_FAILURE() << "program has too few branches";
    return 0;
}

struct Analyzed {
    Program program;
    analysis::Cfg cfg;
    analysis::DominatorTree doms;
    analysis::LoopForest loops;
    analysis::ValueAnalysis va;
};

Analyzed analyze(const std::string& src) {
    Analyzed a;
    a.program = assemble(src);
    a.cfg = analysis::buildCfg(a.program);
    a.doms = analysis::computeDominators(a.cfg);
    a.loops = analysis::computeLoops(a.cfg, a.doms);
    a.va = analysis::analyzeValues(a.cfg, a.loops);
    return a;
}

BranchDirection directionOf(const Analyzed& a, std::size_t n) {
    const std::uint32_t pc = nthBranchPc(a.program, n);
    return a.va.directionAt(a.cfg.indexOf(pc));
}

// --------------------------------------------------------------- domain ----

TEST(AbsDomainTest, NormalizationReducesComponents) {
    // A non-negative interval drops the negative sign.
    const AbsValue v = AbsValue::range(0, 10);
    EXPECT_EQ(v.signs, analysis::kSignZero | analysis::kSignPos);
    // A strictly positive interval is only positive.
    EXPECT_EQ(AbsValue::range(3, 9).signs, analysis::kSignPos);
    // Contradictory components collapse to bottom.
    AbsValue w = AbsValue::range(1, 5);
    w.signs = analysis::kSignNeg;
    // Re-normalization happens through every public constructor/operation.
    EXPECT_TRUE(w.meet(AbsValue::top()).isBottom());
}

TEST(AbsDomainTest, JoinMeetWidenBasics) {
    const AbsValue a = AbsValue::constant(2);
    const AbsValue b = AbsValue::constant(7);
    const AbsValue j = a.join(b);
    EXPECT_TRUE(j.containsValue(2));
    EXPECT_TRUE(j.containsValue(7));
    EXPECT_TRUE(j.contains(a));
    EXPECT_FALSE(j.containsValue(-1));

    // Meet of disjoint intervals is bottom; meet is exact intersection.
    EXPECT_TRUE(AbsValue::range(0, 3).meet(AbsValue::range(5, 9)).isBottom());
    const AbsValue m = AbsValue::range(0, 6).meet(AbsValue::range(4, 9));
    EXPECT_EQ(m.lo, 4);
    EXPECT_EQ(m.hi, 6);

    // Widening jumps the unstable bound past the new value and stabilizes:
    // repeatedly growing the high bound by one must climb the threshold
    // ladder to a fixpoint in a handful of steps, while the stable low
    // bound (and with it the >= 0 sign) survives every step.
    constexpr std::int64_t kMax = INT32_MAX;
    AbsValue x = AbsValue::constant(0);
    for (int i = 0; i < 64; ++i) {
        const AbsValue next =
            x.join(AbsValue::range(0, std::min(kMax, x.hi + 1)));
        const AbsValue widened = x.widen(next);
        if (widened == x) break;
        x = widened;
        ASSERT_LT(i, 63) << "widening did not terminate";
    }
    EXPECT_TRUE(x.containsValue(0));
    EXPECT_TRUE(x.containsValue(1'000'000));
    EXPECT_FALSE(x.containsValue(-1)) << "widening lost the sign bound";

    // The transfer function, by contrast, must honour two's-complement
    // wraparound: once an increment can cross INT32_MAX the positive-only
    // claim is gone.  (This is why unbounded loop counters stay kDynamic.)
    const AbsValue wrapped =
        analysis::absAluImmOp(Op::kAddiu, AbsValue::constant(INT32_MAX), 1);
    EXPECT_TRUE(wrapped.containsValue(INT32_MIN));
}

TEST(AbsDomainTest, EvalCondOverAllSixConditions) {
    const AbsValue neg = AbsValue::range(-9, -1);
    const AbsValue zero = AbsValue::constant(0);
    const AbsValue pos = AbsValue::range(1, 9);
    const AbsValue any = AbsValue::top();

    EXPECT_EQ(evalCondAbs(Cond::kEqz, zero), TriBool::kTrue);
    EXPECT_EQ(evalCondAbs(Cond::kEqz, pos), TriBool::kFalse);
    EXPECT_EQ(evalCondAbs(Cond::kEqz, any), TriBool::kUnknown);
    EXPECT_EQ(evalCondAbs(Cond::kNez, neg), TriBool::kTrue);
    EXPECT_EQ(evalCondAbs(Cond::kNez, zero), TriBool::kFalse);
    EXPECT_EQ(evalCondAbs(Cond::kLez, neg), TriBool::kTrue);
    EXPECT_EQ(evalCondAbs(Cond::kLez, zero), TriBool::kTrue);
    EXPECT_EQ(evalCondAbs(Cond::kLez, pos), TriBool::kFalse);
    EXPECT_EQ(evalCondAbs(Cond::kGtz, pos), TriBool::kTrue);
    EXPECT_EQ(evalCondAbs(Cond::kGtz, neg), TriBool::kFalse);
    EXPECT_EQ(evalCondAbs(Cond::kLtz, neg), TriBool::kTrue);
    EXPECT_EQ(evalCondAbs(Cond::kLtz, zero), TriBool::kFalse);
    EXPECT_EQ(evalCondAbs(Cond::kGez, pos), TriBool::kTrue);
    EXPECT_EQ(evalCondAbs(Cond::kGez, zero), TriBool::kTrue);
    EXPECT_EQ(evalCondAbs(Cond::kGez, neg), TriBool::kFalse);
}

TEST(AbsDomainTest, RefineByCondPrunesTheInterval) {
    const AbsValue v = AbsValue::range(-5, 5);
    const AbsValue gtz = refineByCond(Cond::kGtz, v);
    EXPECT_EQ(gtz.lo, 1);
    EXPECT_EQ(gtz.hi, 5);
    const AbsValue lez = refineByCond(Cond::kLez, v);
    EXPECT_EQ(lez.lo, -5);
    EXPECT_EQ(lez.hi, 0);
    // No value of a positive range satisfies eqz: bottom = infeasible edge.
    EXPECT_TRUE(refineByCond(Cond::kEqz, AbsValue::range(2, 8)).isBottom());
}

TEST(AbsDomainTest, TransferMirrorsExecEdgeCases) {
    const AbsValue intMin = AbsValue::constant(INT32_MIN);
    const AbsValue minusOne = AbsValue::constant(-1);
    const AbsValue zero = AbsValue::constant(0);
    const AbsValue seven = AbsValue::constant(7);

    // exec.cpp: division by zero yields 0; INT_MIN / -1 yields INT_MIN.
    EXPECT_TRUE(absAluOp(Op::kDiv, seven, zero).containsValue(0));
    EXPECT_TRUE(absAluOp(Op::kDiv, intMin, minusOne).containsValue(INT32_MIN));
    // rem by zero yields the dividend; INT_MIN % -1 yields 0.
    EXPECT_TRUE(absAluOp(Op::kRem, seven, zero).containsValue(7));
    EXPECT_TRUE(absAluOp(Op::kRem, intMin, minusOne).containsValue(0));
    // Shift amounts are masked to 5 bits (33 == 1).
    const AbsValue sll33 =
        absAluOp(Op::kSllv, seven, AbsValue::constant(33));
    EXPECT_TRUE(sll33.containsValue(14));
    // addu wraps modulo 2^32.
    const AbsValue wrapped =
        absAluOp(Op::kAddu, AbsValue::constant(INT32_MAX),
                 AbsValue::constant(1));
    EXPECT_TRUE(wrapped.containsValue(INT32_MIN));
    // lui is an exact constant.
    const AbsValue lui = absAluImmOp(Op::kLui, AbsValue::top(), 5);
    EXPECT_TRUE(lui.isConstant());
    EXPECT_TRUE(lui.containsValue(5 << 16));
}

// ------------------------------------------------- dominators and loops ----

TEST(DominatorTest, DiamondJoinIsDominatedByTheFork) {
    const Analyzed a = analyze(std::string(R"(
main:   li   s0, 1
        beqz s0, right
left:   li   s1, 1
        j    join
right:  li   s1, 2
join:   move s2, s1
)") + kExit);
    const std::size_t fork = a.cfg.blockAt(a.program.entry);
    const std::size_t join = a.cfg.blockAt(a.program.symbol("join"));
    const std::size_t left = a.cfg.blockAt(a.program.symbol("left"));
    EXPECT_TRUE(a.doms.dominates(fork, join));
    EXPECT_TRUE(a.doms.dominates(fork, left));
    EXPECT_FALSE(a.doms.dominates(left, join));
    EXPECT_EQ(a.doms.idom[join], fork);
}

TEST(LoopTest, NestedLoopsGetDepthsAndWideningPoints) {
    const Analyzed a = analyze(std::string(R"(
main:   li   s0, 3
outer:  li   s1, 4
inner:  addiu s1, s1, -1
        bgtz s1, inner
        addiu s0, s0, -1
        bgtz s0, outer
)") + kExit);
    ASSERT_EQ(a.loops.loops.size(), 2u);
    const std::size_t innerBlock = a.cfg.blockAt(a.program.symbol("inner"));
    const std::size_t outerBlock = a.cfg.blockAt(a.program.symbol("outer"));
    EXPECT_EQ(a.loops.depthOf[innerBlock], 2u);
    EXPECT_EQ(a.loops.depthOf[outerBlock], 1u);
    EXPECT_TRUE(a.loops.isWideningPoint(innerBlock));
    EXPECT_TRUE(a.loops.isWideningPoint(outerBlock));
    // The inner loop's parent is the outer loop.
    const std::size_t innerLoop = a.loops.innermost[innerBlock];
    ASSERT_NE(innerLoop, analysis::kNoBlock);
    const std::size_t parent = a.loops.loops[innerLoop].parent;
    ASSERT_NE(parent, analysis::kNoBlock);
    EXPECT_EQ(a.loops.loops[parent].head, outerBlock);
}

// -------------------------------------------------------- value analysis ----

TEST(ValueAnalysisTest, ConstantConditionGivesStaticDirections) {
    const Analyzed a = analyze(std::string(R"(
main:   li   s0, 5
        li   s1, 0
        nop
        bgtz s0, L1       # 5 > 0: always taken
L1:     bnez s1, L2       # 0 != 0: never taken
L2:     move s2, s0
)") + kExit);
    EXPECT_TRUE(a.va.converged);
    EXPECT_EQ(directionOf(a, 0), BranchDirection::kAlwaysTaken);
    EXPECT_EQ(directionOf(a, 1), BranchDirection::kNeverTaken);
}

TEST(ValueAnalysisTest, LoopCounterBranchStaysDynamicAndConverges) {
    const Analyzed a = analyze(std::string(R"(
main:   li   s0, 10
loop:   addiu s0, s0, -1
        nop
        nop
        bgtz s0, loop
)") + kExit);
    EXPECT_TRUE(a.va.converged);
    EXPECT_EQ(directionOf(a, 0), BranchDirection::kDynamic);
}

TEST(ValueAnalysisTest, MonotoneLoopKeepsProvableDirection) {
    // s0 is re-masked to [0, 1023] on every iteration, so its guard stays
    // always-taken even though the loop requires widening (of the s1
    // counter) to converge.  An unmasked `addiu s0, s0, 1` would NOT be
    // provable: the increment wraps at INT32_MAX, so the sound verdict for
    // an unbounded counter is kDynamic (see LoopCounterBranchStaysDynamic).
    const Analyzed a = analyze(std::string(R"(
main:   li   s0, 1
        li   s1, 8
loop:   addiu s0, s0, 1
        andi s0, s0, 1023 # bounded growth: cannot wrap negative
        addiu s1, s1, -1
        nop
        bgez s0, cont     # s0 in [0, 1023] on every iteration: always taken
cont:   bgtz s1, loop
)") + kExit);
    EXPECT_TRUE(a.va.converged);
    EXPECT_EQ(directionOf(a, 0), BranchDirection::kAlwaysTaken);
    EXPECT_EQ(directionOf(a, 1), BranchDirection::kDynamic);
}

TEST(ValueAnalysisTest, DeadArmAndUnreachableBlockAreLinted) {
    const Analyzed a = analyze(std::string(R"(
main:   li   s0, 3
        nop
        nop
        bgtz s0, live     # always taken: fall-through arm is dead
dead:   li   s1, 99       # unreachable
live:   move s2, s0
)") + kExit);
    ASSERT_EQ(a.va.deadArms.size(), 1u);
    EXPECT_FALSE(a.va.deadArms[0].takenArm);  // the fall-through is dead
    const std::size_t deadBlock = a.cfg.blockAt(a.program.symbol("dead"));
    EXPECT_FALSE(a.va.reachable(deadBlock));
    EXPECT_NE(std::find(a.va.unreachableBlocks.begin(),
                        a.va.unreachableBlocks.end(), deadBlock),
              a.va.unreachableBlocks.end());
}

TEST(ValueAnalysisTest, ProvenExitHaltsThePath) {
    // After `sys` with v0 == 1 (exit) nothing executes: the trailing block
    // is unreachable even though the CFG has a fall-through edge.
    const Analyzed a = analyze(std::string(R"(
main:   li   v0, 1
        li   a0, 0
        sys
after:  li   s0, 1
        nop
        nop
        bgtz s0, after
)"));
    const std::size_t afterBlock = a.cfg.blockAt(a.program.symbol("after"));
    EXPECT_FALSE(a.va.reachable(afterBlock));
    EXPECT_EQ(a.va.directionAt(a.cfg.indexOf(nthBranchPc(a.program, 0))),
              BranchDirection::kUnreachable);
}

// ----------------------------------- feasible-edge dataflow refinement ----

TEST(RefinementTest, InfeasiblePathProducerNoLongerRejectsTheFold) {
    // The short-distance producer of s1 sits behind a never-taken branch:
    // PR 1's all-paths dataflow charges it, the pruned dataflow does not.
    const std::string src = std::string(R"(
main:   li   s0, 0
        li   s1, 5
loop:   addiu s1, s1, -1
        nop
        nop
        bnez s0, reset    # s0 == 0 always: never taken
back:   bgtz s1, loop
        j    done
reset:  addiu s1, s1, 0   # short-distance producer on the infeasible path
        j    back
done:)") + kExit;
    const Program p = assemble(src);
    const analysis::FoldLegalityVerifier verifier(p);
    analysis::VerifyConfig config;
    config.threshold = 3;

    const std::uint32_t guardPc = nthBranchPc(p, 1);  // back: bgtz s1
    const analysis::BranchVerdict v = verifier.verdictFor(guardPc, config);
    EXPECT_LT(v.unrefinedMinDistance, config.threshold)
        << "fixture lost its short infeasible path";
    EXPECT_GE(v.staticMinDistance, config.threshold)
        << "edge pruning failed to lift the distance";
    EXPECT_EQ(v.verdict, analysis::FoldLegality::kProvablySafe);

    // The win is surfaced as a refinement-win lint; the never-taken guard
    // also produces a dead-arm lint and `reset` an unreachable-block lint.
    bool sawWin = false, sawDeadArm = false, sawUnreachable = false;
    for (const analysis::StaticLint& lint : verifier.lints(config)) {
        if (lint.kind == analysis::StaticLint::Kind::kRefinementWin &&
            lint.pc == guardPc)
            sawWin = true;
        if (lint.kind == analysis::StaticLint::Kind::kDeadBranchArm)
            sawDeadArm = true;
        if (lint.kind == analysis::StaticLint::Kind::kUnreachableBlock)
            sawUnreachable = true;
    }
    EXPECT_TRUE(sawWin);
    EXPECT_TRUE(sawDeadArm);
    EXPECT_TRUE(sawUnreachable);
}

// ------------------------------------------------------ static fold path ----

TEST(StaticFoldTest, TableLookupAndStorageAccounting) {
    StaticFoldTable table;
    StaticFoldEntry e1{0x1000, true, Instruction{}, 0x2000};
    StaticFoldEntry e2{0x1010, false, Instruction{}, 0x1014};
    table.load({e1, e2});
    EXPECT_EQ(table.size(), 2u);
    ASSERT_NE(table.lookup(0x1000), nullptr);
    EXPECT_TRUE(table.lookup(0x1000)->taken);
    EXPECT_EQ(table.lookup(0x1234), nullptr);
    EXPECT_EQ(table.storageBits(), 2u * (30 + 1 + 32 + 30));
    EXPECT_THROW(table.load({e1, e1}), EnsureError);
}

TEST(StaticFoldTest, ExtractStaticFoldPicksTheDecidedArm) {
    const Program p = assemble(std::string(R"(
main:   li   s0, 1
        nop
        nop
        bgtz s0, target
        addiu s1, s1, 1   # BFI
target: addiu s2, s2, 2   # BTI
)") + kExit);
    const std::uint32_t pc = nthBranchPc(p, 0);
    const StaticFoldEntry taken = extractStaticFold(p, pc, true);
    EXPECT_EQ(taken.replacementPc, p.symbol("target"));
    EXPECT_EQ(taken.replacement.rd, 18);  // s2
    const StaticFoldEntry notTaken = extractStaticFold(p, pc, false);
    EXPECT_EQ(notTaken.replacementPc, pc + kInstrBytes);
    EXPECT_EQ(notTaken.replacement.rd, 17);  // s1
}

TEST(StaticFoldTest, UnitFoldsFromStaticTableWithoutBdtDependence) {
    const Program p = assemble(std::string(R"(
main:   li   s0, 1
        nop
        nop
        bgtz s0, target
        addiu s1, s1, 1
target: addiu s2, s2, 2
)") + kExit);
    const std::uint32_t pc = nthBranchPc(p, 0);
    AsbrUnit unit;
    unit.loadStaticFolds({extractStaticFold(p, pc, true)}, 1);

    // A pending producer of the condition register blocks a BIT fold; the
    // static fold must not care.
    unit.onProducerDecoded(16);  // s0
    const auto fold = unit.onFetch(pc, p.at(pc));
    ASSERT_TRUE(fold.has_value());
    EXPECT_TRUE(fold->taken);
    EXPECT_EQ(fold->replacementPc, p.symbol("target"));
    EXPECT_EQ(unit.stats().staticFolds, 1u);
    EXPECT_EQ(unit.stats().folds, 1u);
    EXPECT_EQ(unit.stats().blockedInvalid, 0u);
    EXPECT_EQ(unit.bitSlotsReclaimed(), 1u);
    EXPECT_EQ(unit.storageBits(),
              AsbrUnit().storageBits() + (30 + 1 + 32 + 30));

    // reset() clears statistics but keeps the customization (like loadBank).
    unit.reset();
    EXPECT_EQ(unit.stats().staticFolds, 0u);
    EXPECT_TRUE(unit.onFetch(pc, p.at(pc)).has_value());
}

TEST(StaticFoldTest, PipelineResultsUnchangedByStaticFolding) {
    // Folding a never-taken branch statically must not change architecture:
    // run the pipeline with and without the static fold and compare.
    const std::string src = std::string(R"(
main:   li   s0, 0
        li   s2, 0
        li   s3, 10
loop:   addiu s2, s2, 1
        nop
        nop
        bnez s0, skip     # never taken
        addiu s2, s2, 2
skip:   addiu s3, s3, -1
        bgtz s3, loop
        move a0, s2
        li   v0, 3
        sys
)") + kExit;
    const Program p = assemble(src);
    const std::uint32_t pc = nthBranchPc(p, 0);

    auto runWith = [&](bool staticFold) {
        Memory mem;
        mem.loadProgram(p);
        auto predictor = makeBimodal2048();
        AsbrUnit unit;
        if (staticFold)
            unit.loadStaticFolds({extractStaticFold(p, pc, false)});
        PipelineSim sim(p, mem, *predictor, {}, &unit);
        PipelineResult r = sim.run();
        EXPECT_TRUE(r.exited);
        return std::pair<std::string, std::uint64_t>(
            r.output, staticFold ? unit.stats().staticFolds : 0);
    };
    const auto [baseOut, baseFolds] = runWith(false);
    const auto [foldOut, foldCount] = runWith(true);
    EXPECT_EQ(baseOut, foldOut);
    EXPECT_EQ(foldCount, 10u) << "the branch executes once per iteration";
}

// ------------------------------------------------------ selection policy ----

TEST(SelectionTest, StaticVerdictsSplitTheSelection) {
    const std::string src = std::string(R"(
main:   li   s0, 0
        li   s3, 20
loop:   addiu s3, s3, -1
        nop
        nop
        bnez s0, never    # never taken, hot, distance >= 3
        nop
        nop
        bgtz s3, loop     # dynamic loop guard
never:  move a0, s3
        li   v0, 3
        sys
)") + kExit;
    const Program p = assemble(src);
    Memory mem;
    mem.loadProgram(p);
    const ProgramProfile profile = profileProgram(p, mem);

    SelectionConfig config;
    config.minExecFraction = 0.0;
    const FoldSelection selection =
        selectWithStaticVerdicts(p, profile, {}, config);

    const std::uint32_t neverPc = nthBranchPc(p, 0);
    ASSERT_EQ(selection.statics.size(), 1u);
    EXPECT_EQ(selection.statics[0].pc, neverPc);
    EXPECT_FALSE(selection.statics[0].taken);
    EXPECT_GT(selection.statics[0].execs, 0u);
    // The old policy would have given it a BIT slot; that slot is reclaimed
    // and the dynamic list no longer contains the branch.
    EXPECT_EQ(selection.bitSlotsReclaimed, 1u);
    for (const Candidate& c : selection.dynamic) EXPECT_NE(c.pc, neverPc);
    // The loop guard is still selected dynamically.
    bool guardSelected = false;
    for (const Candidate& c : selection.dynamic)
        if (c.pc == nthBranchPc(p, 1)) guardSelected = true;
    EXPECT_TRUE(guardSelected);
}

// ------------------------------------------------------- analysis report ----

TEST(AnalysisReportTest, RoundTripsThroughValidatorAndParser) {
    const Program p = assemble(std::string(R"(
main:   li   s0, 4
loop:   addiu s0, s0, -1
        nop
        nop
        bgtz s0, loop
)") + kExit);
    const analysis::FoldLegalityVerifier verifier(p);
    analysis::VerifyConfig config;
    AnalysisReportMeta meta;
    meta.benchmark = "unit-test";

    const JsonValue doc = analysisReportJson(meta, verifier, config);
    const ReportValidation valid = validateAnalysisReportJson(doc);
    EXPECT_TRUE(valid.ok()) << (valid.errors.empty() ? "" : valid.errors[0]);

    // Serialized text parses back and still validates.
    const JsonParseResult parsed = parseJson(doc.dump(2));
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_TRUE(validateAnalysisReportJson(*parsed.value).ok());

    // Summary invariants hold on this known program.
    const JsonValue* summary = doc.find("summary");
    ASSERT_NE(summary, nullptr);
    EXPECT_EQ(summary->find("branches")->asUint(), 1u);
    EXPECT_EQ(summary->find("dynamic")->asUint(), 1u);
    EXPECT_TRUE(doc.find("fixpoint")->find("converged")->asBool());
}

TEST(AnalysisReportTest, ValidatorRejectsTamperedDocuments) {
    const Program p = assemble(std::string("main:   li s0, 1\n") + kExit);
    const analysis::FoldLegalityVerifier verifier(p);
    AnalysisReportMeta meta;
    meta.benchmark = "tamper";
    JsonValue doc = analysisReportJson(meta, verifier, {});

    JsonValue bad = doc;
    bad.set("schema", JsonValue("asbr.other"));
    EXPECT_FALSE(validateAnalysisReportJson(bad).ok());

    JsonValue badSummary = doc;
    JsonObject s = badSummary.find("summary")->asObject();
    for (auto& [k, v] : s)
        if (k == "statically_decided") v = JsonValue(std::uint64_t{99});
    badSummary.set("summary", JsonValue(std::move(s)));
    EXPECT_FALSE(validateAnalysisReportJson(badSummary).ok());

    EXPECT_FALSE(validateAnalysisReportJson(JsonValue("not an object")).ok());
}

}  // namespace
}  // namespace asbr

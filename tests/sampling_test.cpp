// Decode-cache and sampled-simulation tests (docs/simulation.md).
//
// The decode cache must be invisible: rebinding discards stale records, and
// customizer-injected fold replacements are decoded fresh — never served
// from or written into the cache — so a scripted fold at one fetch does not
// change what later fetches of the same PC execute.  Sampling must be
// architecturally exact (same program output as a full run, ASBR included)
// and its report byte-identical across engine thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "asm/assembler.hpp"
#include "bp/predictor.hpp"
#include "bp/bimodal.hpp"
#include "driver/artifacts.hpp"
#include "driver/engine.hpp"
#include "mem/memory.hpp"
#include "report/sampling_report.hpp"
#include "sim/decode_cache.hpp"
#include "sim/pipeline.hpp"
#include "sim/sampling.hpp"
#include "util/metrics.hpp"

namespace {

using namespace asbr;

constexpr const char* kExit = R"(
        li   v0, 1
        sys
)";

// ----------------------------------------------------------- decode cache --

TEST(DecodeCacheTest, LazyFillThenHit) {
    const Program p = assemble(std::string(R"(
main:   li   t0, 3
        addiu t0, t0, 1
        move a0, t0
)") + kExit);
    DecodeCache cache(p);
    EXPECT_TRUE(cache.bound());
    const DecodedOp& first = cache.lookup(p.textBase);
    EXPECT_EQ(first.pc, p.textBase);
    EXPECT_EQ(first.fallthrough, p.textBase + 4);
    EXPECT_EQ(cache.stats().lookups, 1u);
    EXPECT_EQ(cache.stats().fills, 1u);
    cache.lookup(p.textBase);
    EXPECT_EQ(cache.stats().lookups, 2u);
    EXPECT_EQ(cache.stats().fills, 1u);
    EXPECT_EQ(cache.stats().hits(), 1u);
}

TEST(DecodeCacheTest, RebindDiscardsStaleRecords) {
    const Program a = assemble(std::string("main:   li   a0, 1\n") + kExit);
    const Program b = assemble(std::string("main:   li   a0, 2\n") + kExit);
    ASSERT_EQ(a.textBase, b.textBase);
    DecodeCache cache(a);
    EXPECT_EQ(cache.lookup(a.textBase).ins.imm, 1);
    // Program reload: records decoded from image A must never be served —
    // the lookup after rebind refills (a second fill, not a stale hit).
    cache.bind(b);
    EXPECT_EQ(cache.lookup(b.textBase).ins.imm, 2);
    EXPECT_EQ(cache.stats().fills, 2u);
    EXPECT_EQ(cache.stats().hits(), 0u);
}

TEST(DecodeCacheTest, DecodeOneResolvesBranchTargets) {
    const Program p = assemble(std::string(R"(
main:   li   t0, 2
loop:   addiu t0, t0, -1
        bnez t0, loop
        move a0, t0
)") + kExit);
    const std::uint32_t branchPc = p.symbol("loop") + 4;
    const DecodedOp dec = decodeOne(p.at(branchPc), branchPc);
    EXPECT_TRUE(dec.condBranch);
    EXPECT_EQ(dec.cls, ExecClass::kCondBranch);
    EXPECT_EQ(dec.target, p.symbol("loop"));
    EXPECT_EQ(dec.fallthrough, branchPc + 4);
    EXPECT_EQ(dec.fetchNext, branchPc + 4);  // predictor decides, not decode
}

// A scripted customizer that folds the branch at `branchPc` exactly once,
// injecting the branch-target instruction (BTI semantics).  If the pipeline
// ever cached the replacement under the branch's fetch address, every later
// iteration would execute the replacement instead of the branch and the
// loop would terminate after one pass.
struct OneShotBtiFold final : FetchCustomizer {
    std::uint32_t branchPc = 0;
    Instruction replacement{};
    std::uint32_t replacementPc = 0;
    bool armed = true;
    int folds = 0;

    std::optional<FoldOutcome> onFetch(std::uint32_t pc,
                                       const Instruction&) override {
        if (pc != branchPc || !armed) return std::nullopt;
        armed = false;
        ++folds;
        return FoldOutcome{replacement, replacementPc, true};
    }
    void onProducerDecoded(std::uint8_t) override {}
    void onValueAvailable(std::uint8_t, std::int32_t, ValueStage,
                          ValueStage) override {}
    void reset() override {
        armed = true;
        folds = 0;
    }
};

TEST(DecodeCacheTest, FoldReplacementIsNotCachedUnderBranchPc) {
    const Program p = assemble(std::string(R"(
main:   li   t0, 5
        li   t1, 0
loop:   addiu t1, t1, 2
        addiu t0, t0, -1
        bnez t0, loop
        move a0, t1
)") + kExit);
    const std::uint32_t loop = p.symbol("loop");
    OneShotBtiFold fold;
    fold.branchPc = loop + 8;  // the bnez
    fold.replacement = p.at(loop);
    fold.replacementPc = loop;

    Memory mem;
    mem.loadProgram(p);
    auto bp = makeBimodal2048();
    PipelineSim sim(p, mem, *bp, PipelineConfig{}, &fold);
    const PipelineResult r = sim.run();
    ASSERT_TRUE(r.exited);
    // 5 iterations of t1 += 2 regardless of the one-shot fold; a polluted
    // decode cache would exit after a single pass (exit code 4).
    EXPECT_EQ(r.exitCode, 10);
    EXPECT_EQ(fold.folds, 1);
    EXPECT_EQ(r.stats.foldedBranches, 1u);
    EXPECT_GT(r.stats.decodeCacheHits, 0u);
}

// Folds the same never-taken branch on *every* fetch (replacement executes
// at the branch's own PC — the self-referencing case): repeated bypass of
// one cache slot, with the architectural result of the unfolded run.
struct EveryFetchNopFold final : FetchCustomizer {
    std::uint32_t branchPc = 0;
    int folds = 0;

    std::optional<FoldOutcome> onFetch(std::uint32_t pc,
                                       const Instruction&) override {
        if (pc != branchPc) return std::nullopt;
        ++folds;
        return FoldOutcome{Instruction{}, pc, false};
    }
    void onProducerDecoded(std::uint8_t) override {}
    void onValueAvailable(std::uint8_t, std::int32_t, ValueStage,
                          ValueStage) override {}
    void reset() override { folds = 0; }
};

TEST(DecodeCacheTest, RepeatedSelfReferencingFoldMatchesBaseline) {
    const Program p = assemble(std::string(R"(
main:   li   t0, 5
        li   t1, 0
        li   t2, 1
loop:   beqz t2, done
        addiu t1, t1, 2
        addiu t0, t0, -1
        bnez t0, loop
done:   move a0, t1
)") + kExit);
    Memory baseMem;
    baseMem.loadProgram(p);
    auto baseBp = makeBimodal2048();
    PipelineSim base(p, baseMem, *baseBp);
    const PipelineResult expected = base.run();

    EveryFetchNopFold fold;
    fold.branchPc = p.symbol("loop");
    Memory mem;
    mem.loadProgram(p);
    auto bp = makeBimodal2048();
    PipelineSim sim(p, mem, *bp, PipelineConfig{}, &fold);
    const PipelineResult r = sim.run();
    ASSERT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, expected.exitCode);
    EXPECT_EQ(r.output, expected.output);
    EXPECT_EQ(r.stats.committed, expected.stats.committed);
    EXPECT_GE(fold.folds, 5);
    EXPECT_GT(r.stats.foldedBranches, 0u);
}

// --------------------------------------------------------------- sampling --

driver::Prepared tinyWorkload(BenchId id = BenchId::kAdpcmEncode) {
    return driver::prepare(id, /*scheduled=*/true, /*seed=*/2001,
                           /*samples=*/1'000);
}

constexpr SamplingConfig kTinyWindows{500, 2'000, 8'000};

TEST(SamplingTest, SampledRunMatchesFullRunArchitecturally) {
    const driver::Prepared prepared = tinyWorkload();
    auto fullBp = makeBimodal2048();
    const PipelineResult full = driver::runPipeline(prepared, *fullBp);

    auto bp = makeBimodal2048();
    const SampledResult s = driver::runSampledPipeline(
        prepared, *bp, /*customizer=*/nullptr, kTinyWindows);
    EXPECT_TRUE(s.exited);
    EXPECT_EQ(s.exitCode, full.exitCode);
    EXPECT_EQ(s.output, full.output);
    EXPECT_EQ(s.totalInstructions, full.stats.committed);
    ASSERT_GE(s.windows.size(), 2u);
    // Warmup instructions are detailed but neither measured nor
    // fast-forwarded, so the two tracked classes undercount the total.
    EXPECT_LT(s.measuredInstructions + s.fastForwardInstructions,
              s.totalInstructions);
    std::uint64_t windowInstructions = 0;
    std::uint64_t windowCycles = 0;
    for (const SampleWindow& w : s.windows) {
        windowInstructions += w.instructions;
        windowCycles += w.cycles;
    }
    EXPECT_EQ(windowInstructions, s.measuredInstructions);
    EXPECT_EQ(windowCycles, s.measuredCycles);
    EXPECT_GT(s.cpiEstimate, 1.0);
}

TEST(SamplingTest, AsbrSampledRunKeepsDirectionBitsExact) {
    driver::SimJob job;
    job.workload = BenchId::kAdpcmEncode;
    job.seed = 2001;
    job.samples = 1'000;
    job.asbr = true;
    driver::SimEngine engine;
    const auto workload = engine.workloadFor(job);
    const auto selection = engine.selectionFor(job);

    auto fullBp = makeBimodal2048();
    auto fullUnit = selection->makeUnit(false);
    const PipelineResult full =
        driver::runPipeline(workload->prepared(), *fullBp, fullUnit.get());

    auto bp = makeBimodal2048();
    auto unit = selection->makeUnit(false);
    const SampledResult s = driver::runSampledPipeline(
        workload->prepared(), *bp, unit.get(), kTinyWindows);
    // The fast-forward path replays the full pipeline event stream into the
    // ASBR unit, so the BDT — and therefore the program output — is exact.
    EXPECT_EQ(s.output, full.output);
    EXPECT_EQ(s.exitCode, full.exitCode);
    // A fold removes the branch from the committed stream (the replacement
    // commits in its place *and* covers the following instruction), so the
    // detailed full run commits fewer instructions than the architectural
    // count the fast-forward path reports.
    EXPECT_GE(s.totalInstructions, full.stats.committed);
    EXPECT_GT(s.stats.foldedBranches, 0u);
    const double refCpi = static_cast<double>(full.stats.cycles) /
                          static_cast<double>(full.stats.committed);
    EXPECT_NEAR(s.cpiEstimate, refCpi, refCpi * 0.05);
}

std::vector<driver::SimJob> sampledBatch() {
    std::vector<driver::SimJob> jobs;
    for (const BenchId id : {BenchId::kAdpcmEncode, BenchId::kAdpcmDecode}) {
        for (const bool asbr : {false, true}) {
            driver::SimJob job;
            job.workload = id;
            job.seed = 2001;
            job.samples = 1'000;
            job.asbr = asbr;
            job.sampled = true;
            job.sampling = kTinyWindows;
            job.sampleReference = true;
            jobs.push_back(job);
        }
    }
    return jobs;
}

std::vector<std::string> sampledReports(std::size_t threads) {
    driver::SimEngine engine({.threads = threads});
    std::vector<std::string> docs;
    for (const driver::JobResult& r : engine.run(sampledBatch())) {
        EXPECT_NE(r.sampled, nullptr);
        std::optional<SamplingReference> reference;
        if (r.hasReference)
            reference =
                SamplingReference{r.referenceCycles, r.referenceCommitted};
        docs.push_back(samplingReportJson(r.report.meta, kTinyWindows,
                                          *r.sampled, reference)
                           .dump(2));
    }
    return docs;
}

TEST(SamplingTest, ReportByteIdenticalAcrossThreadCounts) {
    const std::vector<std::string> serial = sampledReports(1);
    const std::vector<std::string> parallel = sampledReports(8);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i)
        EXPECT_EQ(serial[i], parallel[i]) << "job " << i;
}

TEST(SamplingTest, ReportValidatesAndCatchesTampering) {
    const std::string doc = sampledReports(1).front();
    const JsonParseResult parsed = parseJson(doc);
    ASSERT_TRUE(parsed.ok());
    EXPECT_TRUE(validateSamplingReportJson(*parsed.value).ok());

    // An edited error verdict must be caught: within_bound is recomputed
    // from the integer fields by the validator.
    std::string flipped = doc;
    const std::string key = "\"within_bound\": true";
    const std::size_t at = flipped.find(key);
    ASSERT_NE(at, std::string::npos);
    flipped.replace(at, key.size(), "\"within_bound\": false");
    const JsonParseResult reparsed = parseJson(flipped);
    ASSERT_TRUE(reparsed.ok());
    EXPECT_FALSE(validateSamplingReportJson(*reparsed.value).ok());

    std::string badVersion = doc;
    const std::string ver = "\"version\": 1";
    const std::size_t vat = badVersion.find(ver);
    ASSERT_NE(vat, std::string::npos);
    badVersion.replace(vat, ver.size(), "\"version\": 99");
    const JsonParseResult reparsed2 = parseJson(badVersion);
    ASSERT_TRUE(reparsed2.ok());
    EXPECT_FALSE(validateSamplingReportJson(*reparsed2.value).ok());
}

TEST(SamplingTest, PublishRegistersSimCounters) {
    MetricRegistry registry;
    SampledResult{}.publish(registry);
    SimSpeed{}.publish(registry);
    std::vector<std::string> names;
    for (const auto& entry : registry.catalogue()) names.push_back(entry.name);
    EXPECT_NE(std::find(names.begin(), names.end(), "sim.sampled_windows"),
              names.end());
    EXPECT_NE(std::find(names.begin(), names.end(), "sim.mips"), names.end());
}

}  // namespace

// Unit tests for the ep32 ISA definition, encoding and disassembly.
#include <gtest/gtest.h>

#include "isa/disasm.hpp"
#include "isa/encoding.hpp"
#include "isa/isa.hpp"
#include "util/rng.hpp"

namespace asbr {
namespace {

TEST(IsaTest, OpClassification) {
    EXPECT_TRUE(isCondBranch(Op::kBeqz));
    EXPECT_TRUE(isCondBranch(Op::kBgez));
    EXPECT_FALSE(isCondBranch(Op::kJ));
    EXPECT_TRUE(isJump(Op::kJ));
    EXPECT_TRUE(isJump(Op::kJalr));
    EXPECT_FALSE(isJump(Op::kBnez));
    EXPECT_TRUE(isControl(Op::kBnez));
    EXPECT_TRUE(isControl(Op::kJr));
    EXPECT_FALSE(isControl(Op::kAddu));
    EXPECT_TRUE(isLoad(Op::kLb));
    EXPECT_TRUE(isLoad(Op::kLw));
    EXPECT_FALSE(isLoad(Op::kSw));
    EXPECT_TRUE(isStore(Op::kSb));
    EXPECT_TRUE(isStore(Op::kSw));
    EXPECT_FALSE(isStore(Op::kLw));
    EXPECT_TRUE(isMulDiv(Op::kMul));
    EXPECT_TRUE(isMulDiv(Op::kRemu));
    EXPECT_FALSE(isMulDiv(Op::kAddu));
}

TEST(IsaTest, BranchCondMapping) {
    EXPECT_EQ(branchCond(Op::kBeqz), Cond::kEqz);
    EXPECT_EQ(branchCond(Op::kBnez), Cond::kNez);
    EXPECT_EQ(branchCond(Op::kBlez), Cond::kLez);
    EXPECT_EQ(branchCond(Op::kBgtz), Cond::kGtz);
    EXPECT_EQ(branchCond(Op::kBltz), Cond::kLtz);
    EXPECT_EQ(branchCond(Op::kBgez), Cond::kGez);
    for (int c = 0; c < kNumConds; ++c) {
        const auto cond = static_cast<Cond>(c);
        EXPECT_EQ(branchCond(condToBranchOp(cond)), cond);
    }
}

TEST(IsaTest, EvalCond) {
    EXPECT_TRUE(evalCond(Cond::kEqz, 0));
    EXPECT_FALSE(evalCond(Cond::kEqz, 1));
    EXPECT_TRUE(evalCond(Cond::kNez, -5));
    EXPECT_FALSE(evalCond(Cond::kNez, 0));
    EXPECT_TRUE(evalCond(Cond::kLez, 0));
    EXPECT_TRUE(evalCond(Cond::kLez, -1));
    EXPECT_FALSE(evalCond(Cond::kLez, 1));
    EXPECT_TRUE(evalCond(Cond::kGtz, 1));
    EXPECT_FALSE(evalCond(Cond::kGtz, 0));
    EXPECT_TRUE(evalCond(Cond::kLtz, -1));
    EXPECT_FALSE(evalCond(Cond::kLtz, 0));
    EXPECT_TRUE(evalCond(Cond::kGez, 0));
    EXPECT_FALSE(evalCond(Cond::kGez, -1));
}

TEST(IsaTest, NegateCondIsInvolutionAndComplement) {
    for (int c = 0; c < kNumConds; ++c) {
        const auto cond = static_cast<Cond>(c);
        EXPECT_EQ(negateCond(negateCond(cond)), cond);
        for (std::int32_t v : {-7, -1, 0, 1, 42}) {
            EXPECT_NE(evalCond(cond, v), evalCond(negateCond(cond), v))
                << condName(cond) << " value " << v;
        }
    }
}

TEST(IsaTest, DestRegRules) {
    EXPECT_EQ(destReg({Op::kAddu, 5, 1, 2, 0}), 5);
    EXPECT_EQ(destReg({Op::kLw, 7, 29, 0, 4}), 7);
    EXPECT_EQ(destReg({Op::kSw, 0, 29, 7, 4}), std::nullopt);
    EXPECT_EQ(destReg({Op::kBeqz, 0, 4, 0, -2}), std::nullopt);
    EXPECT_EQ(destReg({Op::kJ, 0, 0, 0, 100}), std::nullopt);
    EXPECT_EQ(destReg({Op::kJal, 0, 0, 0, 100}), reg::ra);
    EXPECT_EQ(destReg({Op::kJalr, 12, 9, 0, 0}), 12);
    EXPECT_EQ(destReg({Op::kSys, 0, 0, 0, 0}), std::nullopt);
    EXPECT_EQ(destReg({Op::kNop, 0, 0, 0, 0}), std::nullopt);
}

TEST(IsaTest, SrcRegRules) {
    auto srcsOf = [](Instruction ins) {
        const SrcRegs s = srcRegs(ins);
        std::vector<std::uint8_t> v(s.regs.begin(), s.regs.begin() + s.count);
        return v;
    };
    EXPECT_EQ(srcsOf({Op::kAddu, 5, 1, 2, 0}), (std::vector<std::uint8_t>{1, 2}));
    EXPECT_EQ(srcsOf({Op::kAddiu, 5, 1, 0, 7}), (std::vector<std::uint8_t>{1}));
    EXPECT_EQ(srcsOf({Op::kLw, 7, 29, 0, 4}), (std::vector<std::uint8_t>{29}));
    EXPECT_EQ(srcsOf({Op::kSw, 0, 29, 7, 4}), (std::vector<std::uint8_t>{29, 7}));
    EXPECT_EQ(srcsOf({Op::kBnez, 0, 4, 0, -2}), (std::vector<std::uint8_t>{4}));
    EXPECT_EQ(srcsOf({Op::kJr, 0, 31, 0, 0}), (std::vector<std::uint8_t>{31}));
    EXPECT_EQ(srcsOf({Op::kLui, 8, 0, 0, 5}), std::vector<std::uint8_t>{});
    EXPECT_EQ(srcsOf({Op::kJ, 0, 0, 0, 9}), std::vector<std::uint8_t>{});
    EXPECT_EQ(srcsOf({Op::kSys, 0, 0, 0, 0}),
              (std::vector<std::uint8_t>{reg::v0, reg::a0}));
}

TEST(IsaTest, NameRoundTrip) {
    for (int i = 0; i < kNumOps; ++i) {
        const auto op = static_cast<Op>(i);
        EXPECT_EQ(opFromName(opName(op)), op);
    }
    EXPECT_EQ(opFromName("bogus"), std::nullopt);
}

TEST(IsaTest, RegNameForms) {
    EXPECT_EQ(regFromName("zero"), 0);
    EXPECT_EQ(regFromName("$zero"), 0);
    EXPECT_EQ(regFromName("a0"), reg::a0);
    EXPECT_EQ(regFromName("$4"), 4);
    EXPECT_EQ(regFromName("r4"), 4);
    EXPECT_EQ(regFromName("31"), 31);
    EXPECT_EQ(regFromName("sp"), reg::sp);
    EXPECT_EQ(regFromName("32"), std::nullopt);
    EXPECT_EQ(regFromName("x1"), std::nullopt);
    for (std::uint8_t r = 0; r < kNumRegs; ++r) EXPECT_EQ(regFromName(regName(r)), r);
}

TEST(EncodingTest, RoundTripRepresentatives) {
    const std::vector<Instruction> cases = {
        {Op::kAddu, 5, 1, 2, 0},     {Op::kNor, 31, 30, 29, 0},
        {Op::kMulh, 2, 3, 4, 0},     {Op::kAddiu, 8, 9, 0, -32768},
        {Op::kAddiu, 8, 9, 0, 32767}, {Op::kAndi, 8, 9, 0, 65535},
        {Op::kLui, 1, 0, 0, 0xFFFF}, {Op::kSll, 2, 3, 0, 31},
        {Op::kLw, 7, 29, 0, -4},     {Op::kLbu, 7, 29, 0, 123},
        {Op::kSw, 0, 29, 7, -100},   {Op::kSb, 0, 4, 31, 32767},
        {Op::kBeqz, 0, 4, 0, -1},    {Op::kBgez, 0, 17, 0, 4000},
        {Op::kJ, 0, 0, 0, (1 << 26) - 1},
        {Op::kJal, 0, 0, 0, 1},      {Op::kJr, 0, 31, 0, 0},
        {Op::kJalr, 12, 9, 0, 0},    {Op::kSys, 0, 0, 0, 0},
        {Op::kNop, 0, 0, 0, 0},
    };
    for (const Instruction& ins : cases) {
        EXPECT_EQ(decode(encode(ins)), ins) << disassemble(ins);
    }
}

TEST(EncodingTest, RejectsOutOfRangeFields) {
    EXPECT_THROW(encode({Op::kAddiu, 1, 2, 0, 40000}), EnsureError);
    EXPECT_THROW(encode({Op::kAddiu, 1, 2, 0, -40000}), EnsureError);
    EXPECT_THROW(encode({Op::kAndi, 1, 2, 0, -1}), EnsureError);
    EXPECT_THROW(encode({Op::kAndi, 1, 2, 0, 70000}), EnsureError);
    EXPECT_THROW(encode({Op::kSll, 1, 2, 0, 32}), EnsureError);
    EXPECT_THROW(encode({Op::kJ, 0, 0, 0, 1 << 26}), EnsureError);
    EXPECT_THROW(encode({Op::kJ, 0, 0, 0, -1}), EnsureError);
}

TEST(EncodingTest, DecodeRejectsBadOpcodeField) {
    EXPECT_THROW(decode(0xFFFF'FFFFu), EnsureError);
}

// Property sweep: random well-formed instructions round-trip through the
// encoder for every opcode class.
TEST(EncodingTest, RandomRoundTripSweep) {
    Xorshift64 rng(12345);
    for (int iter = 0; iter < 5000; ++iter) {
        Instruction ins;
        ins.op = static_cast<Op>(rng.below(kNumOps));
        ins.rd = static_cast<std::uint8_t>(rng.below(kNumRegs));
        ins.rs = static_cast<std::uint8_t>(rng.below(kNumRegs));
        ins.rt = static_cast<std::uint8_t>(rng.below(kNumRegs));
        if (ins.op == Op::kJ || ins.op == Op::kJal) {
            ins.imm = static_cast<std::int32_t>(rng.below(1u << 26));
            ins.rd = ins.rs = ins.rt = 0;
        } else if (ins.op == Op::kSll || ins.op == Op::kSrl || ins.op == Op::kSra) {
            ins.imm = static_cast<std::int32_t>(rng.below(32));
            ins.rt = 0;
        } else if (ins.op == Op::kAndi || ins.op == Op::kOri ||
                   ins.op == Op::kXori || ins.op == Op::kLui) {
            ins.imm = static_cast<std::int32_t>(rng.below(65536));
            ins.rt = 0;
        } else if (ins.op <= Op::kRemu || ins.op == Op::kJalr || ins.op == Op::kJr) {
            ins.imm = 0;
            if (ins.op == Op::kJalr || ins.op == Op::kJr) ins.rt = 0;
        } else if (ins.op == Op::kSys || ins.op == Op::kNop) {
            ins = {ins.op, 0, 0, 0, 0};
        } else {
            ins.imm = static_cast<std::int32_t>(rng.range(-32768, 32767));
            ins.rt = 0;
        }
        if (isStore(ins.op)) {
            ins.rd = 0;  // stores carry data in rt
        } else if (ins.op > Op::kRemu) {
            ins.rt = 0;
        }
        EXPECT_EQ(decode(encode(ins)), ins) << disassemble(ins);
    }
}

TEST(DisasmTest, Formats) {
    EXPECT_EQ(disassemble({Op::kAddu, 8, 9, 10, 0}), "addu t0, t1, t2");
    EXPECT_EQ(disassemble({Op::kAddiu, 8, 9, 0, -4}), "addiu t0, t1, -4");
    EXPECT_EQ(disassemble({Op::kLw, 4, 29, 0, 8}), "lw a0, 8(sp)");
    EXPECT_EQ(disassemble({Op::kSw, 0, 29, 4, 8}), "sw a0, 8(sp)");
    EXPECT_EQ(disassemble({Op::kBnez, 0, 4, 0, -3}), "bnez a0, -3");
    EXPECT_EQ(disassemble({Op::kJr, 0, 31, 0, 0}), "jr ra");
    EXPECT_EQ(disassemble({Op::kNop, 0, 0, 0, 0}), "nop");
    EXPECT_EQ(disassembleAt({Op::kBnez, 0, 4, 0, 2}, 0x1000),
              "00001000: bnez a0, 0x100c");
}

}  // namespace
}  // namespace asbr

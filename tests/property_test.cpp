// Property-based tests over randomly generated programs and parameterized
// sweeps of the ASBR/pipeline configuration space.
//
// The central invariant: for ANY program, folding ANY subset of extractable
// branches at ANY BDT update stage never changes architectural results —
// outputs, exit code, final registers — and the committed-instruction count
// drops by exactly the number of committed folds.
#include <gtest/gtest.h>

#include <map>

#include "analysis/verify.hpp"
#include "asbr/asbr_unit.hpp"
#include "asbr/extract.hpp"
#include "asm/assembler.hpp"
#include "bp/predictor.hpp"
#include "bp/bimodal.hpp"
#include "bp/gshare.hpp"
#include "bp/static_predictors.hpp"
#include "mem/memory.hpp"
#include "program_gen.hpp"
#include "sim/functional.hpp"
#include "sim/pipeline.hpp"
#include "util/rng.hpp"
#include "workloads/input_gen.hpp"
#include "workloads/workloads.hpp"

namespace asbr {
namespace {

struct RunResult {
    std::string output;
    std::int32_t exitCode = 0;
    ArchState finalState;
    std::uint64_t committed = 0;
    std::uint64_t folded = 0;
};

RunResult runPipelineWith(const Program& p, AsbrUnit* unit,
                          BranchPredictor& predictor) {
    Memory mem;
    mem.loadProgram(p);
    PipelineConfig cfg;
    cfg.maxCycles = 50'000'000;
    PipelineSim sim(p, mem, predictor, cfg, unit);
    const PipelineResult r = sim.run();
    return {r.output, r.exitCode, r.finalState, r.stats.committed,
            r.stats.foldedBranches};
}

// Fold a random subset of extractable branches at a random update stage and
// require bit-identical architectural behaviour.
TEST(AsbrProperty, RandomProgramsFoldWithoutSemanticChange) {
    for (std::uint64_t seed = 1; seed <= 25; ++seed) {
        ProgramGen gen(seed * 7919);
        const std::string src = gen.generate();
        const Program p = assemble(src);

        Xorshift64 rng(seed);
        std::vector<std::uint32_t> selected;
        for (const std::uint32_t pc : allConditionalBranches(p))
            if (rng.chance(0.7)) selected.push_back(pc);
        if (selected.size() > 16) selected.resize(16);

        const auto stage = static_cast<ValueStage>(rng.below(3));
        AsbrConfig cfg;
        cfg.updateStage = stage;
        AsbrUnit unit(cfg);
        unit.loadBank(0, extractBranchInfos(p, selected));

        auto basePredictor = makeBimodal(64, 64);
        auto foldPredictor = makeBimodal(64, 64);
        const RunResult base = runPipelineWith(p, nullptr, *basePredictor);
        const RunResult folded = runPipelineWith(p, &unit, *foldPredictor);

        EXPECT_EQ(base.output, folded.output) << "seed " << seed << "\n" << src;
        EXPECT_EQ(base.exitCode, folded.exitCode) << "seed " << seed;
        for (int r = 0; r < kNumRegs; ++r)
            EXPECT_EQ(base.finalState.regs[r], folded.finalState.regs[r])
                << "seed " << seed << " reg " << r;
        EXPECT_EQ(base.committed, folded.committed + folded.folded)
            << "seed " << seed;

        // And both agree with the functional ISS.
        Memory mem;
        mem.loadProgram(p);
        FunctionalSim iss(p, mem);
        const FunctionalResult fr = iss.run(50'000'000);
        EXPECT_EQ(fr.output, base.output) << "seed " << seed;
    }
}

// ---------------------------------------------------------------------------
// Static branch-direction verdicts vs the functional ISS: a branch the
// abstract interpreter (src/analysis/absint) calls AlwaysTaken must never be
// observed not-taken, NeverTaken never taken, and kUnreachable never
// executed at all.  This is the soundness contract the static fold class
// rests on — a violated verdict would inject the wrong instruction stream.
// ---------------------------------------------------------------------------

/// Observed directions per branch pc: bit 0 = seen not-taken, bit 1 = taken.
std::map<std::uint32_t, unsigned> observeDirections(const Program& p,
                                                    Memory& mem) {
    std::map<std::uint32_t, unsigned> seen;
    FunctionalSim sim(p, mem);
    sim.setTraceHook([&seen](const Instruction&, const StepResult& step) {
        if (step.isBranch) seen[step.pc] |= step.branchTaken ? 2u : 1u;
    });
    const FunctionalResult r = sim.run(200'000'000);
    EXPECT_TRUE(r.exited);
    return seen;
}

void expectVerdictsConsistent(const Program& p,
                              const std::map<std::uint32_t, unsigned>& seen,
                              const std::string& label) {
    const analysis::FoldLegalityVerifier verifier(p);
    const analysis::ValueAnalysis& va = verifier.values();
    EXPECT_TRUE(va.converged) << label;
    for (const auto& [pc, dirs] : seen) {
        const auto d = va.directionAt(verifier.cfg().indexOf(pc));
        EXPECT_NE(d, analysis::BranchDirection::kUnreachable)
            << label << ": branch 0x" << std::hex << pc
            << " executed but was called unreachable";
        if (d == analysis::BranchDirection::kAlwaysTaken)
            EXPECT_EQ(dirs & 1u, 0u)
                << label << ": AlwaysTaken branch 0x" << std::hex << pc
                << " observed not-taken";
        if (d == analysis::BranchDirection::kNeverTaken)
            EXPECT_EQ(dirs & 2u, 0u)
                << label << ": NeverTaken branch 0x" << std::hex << pc
                << " observed taken";
    }
}

TEST(AbsintProperty, WorkloadDirectionsNeverContradictStaticVerdicts) {
    const auto pcm = generateSpeech(1200, 17);
    for (const BenchId id : kAllBenchesExtended) {
        const Program p = buildBench(id);
        Memory mem;
        mem.loadProgram(p);
        if (benchIsEncoder(id)) {
            loadPcmInput(mem, p, pcm);
        } else {
            const BenchId enc =
                id == BenchId::kAdpcmDecode  ? BenchId::kAdpcmEncode
                : id == BenchId::kG721Decode ? BenchId::kG721Encode
                                             : BenchId::kG711Encode;
            loadCodeInput(mem, p, runEncoderRef(enc, pcm));
        }
        const auto seen = observeDirections(p, mem);
        EXPECT_FALSE(seen.empty());
        expectVerdictsConsistent(p, seen, benchName(id));
    }
}

TEST(AbsintProperty, RandomProgramDirectionsNeverContradictStaticVerdicts) {
    for (std::uint64_t seed = 500; seed < 520; ++seed) {
        ProgramGen gen(seed);
        const Program p = assemble(gen.generate());
        Memory mem;
        mem.loadProgram(p);
        const auto seen = observeDirections(p, mem);
        expectVerdictsConsistent(p, seen, "seed " + std::to_string(seed));
    }
}

// Pipeline-vs-ISS equivalence across every predictor, with random programs.
TEST(PipelineProperty, AllPredictorsAreTimingOnly) {
    for (std::uint64_t seed = 100; seed < 110; ++seed) {
        ProgramGen gen(seed);
        const Program p = assemble(gen.generate());
        Memory refMem;
        refMem.loadProgram(p);
        FunctionalSim iss(p, refMem);
        const FunctionalResult fr = iss.run(50'000'000);

        std::unique_ptr<BranchPredictor> predictors[] = {
            makeNotTaken(), std::make_unique<AlwaysTakenPredictor>(64),
            makeBimodal(16, 16), makeGshare2048()};
        for (auto& predictor : predictors) {
            const RunResult r = runPipelineWith(p, nullptr, *predictor);
            EXPECT_EQ(r.output, fr.output)
                << "seed " << seed << " predictor " << predictor->name();
            EXPECT_EQ(r.committed, fr.instructions)
                << "seed " << seed << " predictor " << predictor->name();
        }
    }
}

// ---------------------------------------------------------------------------
// Parameterized sweeps
// ---------------------------------------------------------------------------

// Fold-threshold matrix: (update stage, def-to-branch distance) -> folds?
struct ThresholdCase {
    ValueStage stage;
    int fillers;       // distance = fillers + 1
    bool shouldFold;
};

class ThresholdMatrix : public ::testing::TestWithParam<ThresholdCase> {};

TEST_P(ThresholdMatrix, FoldExactlyWhenDistanceReachesThreshold) {
    const ThresholdCase param = GetParam();
    std::string src = "main:   li   s0, 50\n";
    src += "loop:   addiu s0, s0, -1\n";
    for (int i = 0; i < param.fillers; ++i) src += "        addiu t1, t1, 1\n";
    src += "        bnez s0, loop\n";
    src += "        li v0, 1\n        li a0, 0\n        sys\n";
    const Program p = assemble(src);
    const std::uint32_t branchPc =
        kTextBase + (2 + static_cast<std::uint32_t>(param.fillers)) * 4;

    AsbrConfig cfg;
    cfg.updateStage = param.stage;
    AsbrUnit unit(cfg);
    unit.loadBank(0, extractBranchInfos(p, std::vector<std::uint32_t>{branchPc}));

    Memory mem;
    mem.loadProgram(p);
    NotTakenPredictor bp;
    PipelineConfig pcfg;
    pcfg.icache.missPenalty = 0;
    pcfg.dcache.missPenalty = 0;
    pcfg.redirectBubbles = 0;
    PipelineSim sim(p, mem, bp, pcfg, &unit);
    const PipelineResult r = sim.run();
    EXPECT_EQ(r.exitCode, 0);
    if (param.shouldFold) {
        EXPECT_GE(unit.stats().folds, 49u);
    } else {
        EXPECT_EQ(unit.stats().folds, 0u);
        EXPECT_GE(unit.stats().blockedInvalid, 49u);
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllStagesAndDistances, ThresholdMatrix,
    ::testing::Values(
        // EX-end update: threshold 2.
        ThresholdCase{ValueStage::kExEnd, 0, false},
        ThresholdCase{ValueStage::kExEnd, 1, true},
        ThresholdCase{ValueStage::kExEnd, 2, true},
        ThresholdCase{ValueStage::kExEnd, 3, true},
        // Post-EX forwarding: threshold 3.
        ThresholdCase{ValueStage::kMemEnd, 0, false},
        ThresholdCase{ValueStage::kMemEnd, 1, false},
        ThresholdCase{ValueStage::kMemEnd, 2, true},
        ThresholdCase{ValueStage::kMemEnd, 3, true},
        // Commit update: threshold 4.
        ThresholdCase{ValueStage::kCommit, 0, false},
        ThresholdCase{ValueStage::kCommit, 1, false},
        ThresholdCase{ValueStage::kCommit, 2, false},
        ThresholdCase{ValueStage::kCommit, 3, true}),
    [](const ::testing::TestParamInfo<ThresholdCase>& info) {
        const char* stage =
            info.param.stage == ValueStage::kExEnd
                ? "ExEnd"
                : (info.param.stage == ValueStage::kMemEnd ? "MemEnd"
                                                           : "Commit");
        return std::string(stage) + "_dist" +
               std::to_string(info.param.fillers + 1);
    });

// Cache geometry sweep: a sequential sweep over the full capacity always
// misses exactly once per line, for every (size, line, assoc) combination.
struct CacheGeometry {
    std::uint32_t size;
    std::uint32_t line;
    std::uint32_t assoc;
};

class CacheGeometrySweep : public ::testing::TestWithParam<CacheGeometry> {};

TEST_P(CacheGeometrySweep, SequentialSweepColdMissesOnly) {
    const CacheGeometry g = GetParam();
    Cache cache({g.size, g.line, g.assoc, 10});
    for (std::uint32_t addr = 0; addr < g.size; addr += 4) cache.access(addr);
    EXPECT_EQ(cache.stats().misses, g.size / g.line);
    for (std::uint32_t addr = 0; addr < g.size; addr += 4) cache.access(addr);
    EXPECT_EQ(cache.stats().misses, g.size / g.line);  // all resident now
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometrySweep,
    ::testing::Values(CacheGeometry{1024, 16, 1}, CacheGeometry{1024, 32, 2},
                      CacheGeometry{4096, 32, 1}, CacheGeometry{4096, 64, 4},
                      CacheGeometry{8192, 32, 2}, CacheGeometry{8192, 16, 8},
                      CacheGeometry{16384, 64, 2}),
    [](const ::testing::TestParamInfo<CacheGeometry>& info) {
        return "s" + std::to_string(info.param.size) + "_l" +
               std::to_string(info.param.line) + "_a" +
               std::to_string(info.param.assoc);
    });

// Bimodal size sweep: on a per-site-biased stream with many branch sites,
// accuracy must be monotone (within tolerance) in table size, since larger
// tables reduce destructive aliasing.
class BimodalSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

double biasedStreamAccuracy(BranchPredictor& p) {
    Xorshift64 rng(31337);
    // 600 branch sites, each with a stable direction.
    std::vector<std::uint32_t> pcs;
    std::vector<bool> bias;
    for (int i = 0; i < 600; ++i) {
        pcs.push_back(0x1000 + static_cast<std::uint32_t>(i) * 4);
        bias.push_back(rng.chance(0.5));
    }
    int correct = 0;
    const int n = 30'000;
    for (int i = 0; i < n; ++i) {
        const std::size_t k = rng.below(pcs.size());
        const bool taken = rng.chance(bias[k] ? 0.95 : 0.05);
        if (p.predict(pcs[k]).taken == taken) ++correct;
        p.update(pcs[k], taken, pcs[k] + 64);
    }
    return static_cast<double>(correct) / n;
}

TEST_P(BimodalSizeSweep, LargerTablesNotWorse) {
    const std::uint32_t counters = GetParam();
    BimodalPredictor small(counters, 64);
    BimodalPredictor big(counters * 4, 64);
    EXPECT_GE(biasedStreamAccuracy(big) + 0.02, biasedStreamAccuracy(small))
        << "counters " << counters;
}

INSTANTIATE_TEST_SUITE_P(Sizes, BimodalSizeSweep,
                         ::testing::Values(16u, 64u, 256u, 1024u));

}  // namespace
}  // namespace asbr

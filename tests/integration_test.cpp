// Cross-module integration tests: the full compile -> profile -> select ->
// extract -> fold flow on compiled C programs, including BIT bank switching
// driven from C via the __bitbank intrinsic, realistic cache/latency
// configs, and the paper's cost argument.
#include <gtest/gtest.h>

#include "asbr/asbr_unit.hpp"
#include "asbr/extract.hpp"
#include "bp/predictor.hpp"
#include "bp/bimodal.hpp"
#include "bp/static_predictors.hpp"
#include "cc/compile.hpp"
#include "mem/memory.hpp"
#include "profile/profiler.hpp"
#include "profile/selection.hpp"
#include "sim/functional.hpp"
#include "sim/pipeline.hpp"
#include "workloads/input_gen.hpp"
#include "workloads/workloads.hpp"

namespace asbr {
namespace {

PipelineResult runPipe(const Program& p, BranchPredictor& bp,
                       FetchCustomizer* customizer = nullptr,
                       PipelineConfig cfg = {}) {
    Memory mem;
    mem.loadProgram(p);
    PipelineSim sim(p, mem, bp, cfg, customizer);
    return sim.run();
}

// End-to-end flow on a control-dominated C program.
TEST(IntegrationTest, FullAsbrFlowOnCompiledProgram) {
    const cc::Compiled compiled = cc::compile(R"(
int lfsr = 0xACE1;
int hist[4];
int next_bit() {
    int bit = (lfsr ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1;
    lfsr = (lfsr >> 1) | (bit << 15);
    return bit;
}
int main() {
    int ones = 0;
    int runs = 0;
    int prev = 0;
    for (int i = 0; i < 4000; i++) {
        int b = next_bit();
        int streak = b == prev;
        if (b) ones++;
        if (!streak) runs++;
        prev = b;
        hist[(ones ^ runs) & 3] += 1;
    }
    __putint(ones);
    __putchar(44);
    __putint(runs);
    return 0;
}
)");
    const Program& p = compiled.program;

    // Profile and select.
    Memory profMem;
    profMem.loadProgram(p);
    const ProgramProfile profile = profileProgram(p, profMem);
    ASSERT_GT(profile.branches.size(), 3u);

    auto reference = makeBimodal2048();
    const PipelineResult refRun = runPipe(p, *reference);
    std::map<std::uint32_t, double> accuracy;
    for (const auto& [pc, site] : refRun.stats.branchSites)
        accuracy[pc] = site.accuracy();

    SelectionConfig selCfg;
    selCfg.bitCapacity = 8;
    selCfg.minExecFraction = 0.0;
    const auto candidates = selectFoldableBranches(p, profile, accuracy, selCfg);
    ASSERT_FALSE(candidates.empty());

    // Fold them and verify against both baselines.
    AsbrUnit unit;
    unit.loadBank(0, extractBranchInfos(p, candidatePcs(candidates)));
    auto aux = makeBimodal(256, 512);
    const PipelineResult folded = runPipe(p, *aux, &unit);

    EXPECT_EQ(folded.output, refRun.output);
    EXPECT_GT(unit.stats().folds, 0u);
    EXPECT_EQ(refRun.stats.committed,
              folded.stats.committed + folded.stats.foldedBranches);

    Memory issMem;
    issMem.loadProgram(p);
    FunctionalSim iss(p, issMem);
    EXPECT_EQ(iss.run().output, folded.output);
}

// The __bitbank intrinsic switches BIT banks from C at loop transitions.
TEST(IntegrationTest, BitBankSwitchingFromC) {
    const cc::Compiled compiled = cc::compile(R"(
int phase1;
int phase2;
int main() {
    __bitbank(0);
    for (int i = 0; i < 300; i++) {
        int v = (i * 13) & 7;
        int w = v * 2;
        int q = w - v;
        if (q & 1) phase1++;
    }
    __bitbank(1);
    for (int j = 0; j < 300; j++) {
        int v = (j * 29) & 15;
        int w = v * 2;
        int q = w - v;
        if (q & 2) phase2++;
    }
    __putint(phase1);
    __putchar(32);
    __putint(phase2);
    return 0;
}
)");
    const Program& p = compiled.program;
    Memory profMem;
    profMem.loadProgram(p);
    const ProgramProfile profile = profileProgram(p, profMem);

    // Split candidates between the banks by address (first loop vs second).
    SelectionConfig selCfg;
    selCfg.bitCapacity = 16;
    selCfg.minExecFraction = 0.0;
    const auto candidates = selectFoldableBranches(p, profile, {}, selCfg);
    ASSERT_GE(candidates.size(), 2u);
    std::vector<std::uint32_t> sorted = candidatePcs(candidates);
    std::sort(sorted.begin(), sorted.end());
    const std::vector<std::uint32_t> bank0(sorted.begin(),
                                           sorted.begin() + sorted.size() / 2);
    const std::vector<std::uint32_t> bank1(sorted.begin() + sorted.size() / 2,
                                           sorted.end());

    AsbrConfig cfg;
    cfg.bitCapacity = 8;
    cfg.bitBanks = 2;
    AsbrUnit unit(cfg);
    unit.loadBank(0, extractBranchInfos(p, bank0));
    unit.loadBank(1, extractBranchInfos(p, bank1));

    auto bp = makeBimodal(256, 512);
    const PipelineResult r = runPipe(p, *bp, &unit);
    auto baseline = makeBimodal(256, 512);
    const PipelineResult base = runPipe(p, *baseline);

    EXPECT_EQ(r.output, base.output);
    EXPECT_EQ(unit.stats().bankSwitches, 2u);
    EXPECT_GT(unit.stats().folds, 0u);
}

// Folding must stay semantics-preserving under harsh timing: tiny caches,
// long mul/div latencies, many redirect bubbles.
TEST(IntegrationTest, FoldingRobustUnderHarshTimingConfigs) {
    const cc::Compiled compiled = cc::compile(R"(
int data[64];
int main() {
    int acc = 1;
    for (int i = 0; i < 64; i++) data[i] = (i * 2654435761) >> 24;
    for (int round = 0; round < 40; round++) {
        for (int i = 0; i < 64; i++) {
            int v = data[i];
            int w = v * 3;
            int q = w % 7;
            if (v & 1) acc += q;
            else acc ^= v;
        }
    }
    __putint(acc);
    return 0;
}
)");
    const Program& p = compiled.program;
    Memory profMem;
    profMem.loadProgram(p);
    const ProgramProfile profile = profileProgram(p, profMem);
    SelectionConfig selCfg;
    selCfg.minExecFraction = 0.0;
    const auto candidates = selectFoldableBranches(p, profile, {}, selCfg);
    ASSERT_FALSE(candidates.empty());

    PipelineConfig harsh;
    harsh.icache = {256, 16, 1, 20};
    harsh.dcache = {256, 16, 1, 25};
    harsh.mulLatency = 9;
    harsh.divLatency = 37;
    harsh.redirectBubbles = 3;

    auto basePred = makeBimodal(64, 64);
    const PipelineResult base = runPipe(p, *basePred, nullptr, harsh);

    for (const ValueStage stage :
         {ValueStage::kExEnd, ValueStage::kMemEnd, ValueStage::kCommit}) {
        AsbrConfig cfg;
        cfg.updateStage = stage;
        AsbrUnit unit(cfg);
        unit.loadBank(0, extractBranchInfos(p, candidatePcs(candidates)));
        auto pred = makeBimodal(64, 64);
        const PipelineResult r = runPipe(p, *pred, &unit, harsh);
        EXPECT_EQ(r.output, base.output) << "stage " << static_cast<int>(stage);
        EXPECT_EQ(base.stats.committed,
                  r.stats.committed + r.stats.foldedBranches);
    }
}

// The paper's cost claim, measured: a small auxiliary predictor + ASBR beats
// the big general-purpose predictor on a hard-branch workload at a fraction
// of the storage.
TEST(IntegrationTest, SmallPredictorPlusAsbrBeatsBigPredictor) {
    const cc::Compiled compiled = cc::compile(R"(
int x = 123456789;
int hits;
int main() {
    for (int i = 0; i < 20000; i++) {
        x = x * 1103515245 + 12345;
        int bit = (x >> 16) & 1;
        int pad1 = i * 3;
        int pad2 = pad1 ^ i;
        if (bit) hits += pad2 & 7;
        else hits -= 1;
    }
    __putint(hits);
    return 0;
}
)");
    const Program& p = compiled.program;
    Memory profMem;
    profMem.loadProgram(p);
    const ProgramProfile profile = profileProgram(p, profMem);
    SelectionConfig selCfg;
    selCfg.minExecFraction = 0.0;
    const auto candidates = selectFoldableBranches(p, profile, {}, selCfg);
    ASSERT_FALSE(candidates.empty());

    auto big = makeBimodal2048();
    const PipelineResult bigRun = runPipe(p, *big);

    AsbrUnit unit;
    unit.loadBank(0, extractBranchInfos(p, candidatePcs(candidates)));
    auto small = makeBimodal(256, 512);
    const PipelineResult smallRun = runPipe(p, *small, &unit);

    EXPECT_EQ(smallRun.output, bigRun.output);
    EXPECT_LT(smallRun.stats.cycles, bigRun.stats.cycles);
    EXPECT_LT(small->storageBits() + unit.storageBits(), big->storageBits());
}

// mcc + scheduling + ASBR with the ProfiledStaticPredictor as auxiliary —
// exercising the static-prediction extension point.
TEST(IntegrationTest, ProfiledStaticAuxiliaryPredictor) {
    const cc::Compiled compiled = cc::compile(R"(
int total;
int main() {
    for (int i = 0; i < 5000; i++) {
        int v = (i * 17) % 9;
        if (v > 4) total += v;
        else total -= 1;
    }
    __putint(total);
    return 0;
}
)");
    const Program& p = compiled.program;

    // Build the static predictor from a profile (most-likely direction).
    Memory profMem;
    profMem.loadProgram(p);
    const ProgramProfile profile = profileProgram(p, profMem);
    std::vector<ProfiledStaticPredictor::Entry> entries;
    for (const auto& [pc, bp] : profile.branches) {
        const Instruction& ins = p.at(pc);
        const std::uint32_t target =
            pc + kInstrBytes + static_cast<std::uint32_t>(ins.imm) * kInstrBytes;
        entries.push_back({pc, bp.takenRate() > 0.5, target});
    }
    ProfiledStaticPredictor staticPredictor(entries);
    const PipelineResult r = runPipe(p, staticPredictor);

    auto notTaken = makeNotTaken();
    const PipelineResult nt = runPipe(p, *notTaken);
    EXPECT_EQ(r.output, nt.output);
    // Profile-directed static prediction beats always-not-taken here.
    EXPECT_LT(r.stats.cycles, nt.stats.cycles);
}

// The static fold class end to end on a real workload: G.721 encode carries
// branches the abstract interpreter proves never-taken.  Folding them from
// the static table must (a) actually fire, (b) change nothing
// architecturally, and (c) cost no cycles versus the dynamic-only policy —
// the statically folded branches free BIT slots and never block.
TEST(IntegrationTest, StaticFoldsFireOnG721AtNoCycleCost) {
    const Program p = buildBench(BenchId::kG721Encode);
    const auto pcm = generateSpeech(1500, 11);

    Memory profMem;
    profMem.loadProgram(p);
    loadPcmInput(profMem, p, pcm);
    const ProgramProfile profile = profileProgram(p, profMem);

    SelectionConfig config;
    config.bitCapacity = 16;
    const FoldSelection selection =
        selectWithStaticVerdicts(p, profile, {}, config);
    ASSERT_FALSE(selection.statics.empty())
        << "g721-enc lost its statically-decided branches";

    auto run = [&](bool useStatics) {
        Memory mem;
        mem.loadProgram(p);
        loadPcmInput(mem, p, pcm);
        auto predictor = makeBimodal2048();
        AsbrUnit unit;
        if (useStatics) {
            unit.loadBank(0,
                          extractBranchInfos(p, candidatePcs(selection.dynamic)));
            std::vector<StaticFoldEntry> entries;
            for (const StaticFoldCandidate& s : selection.statics)
                entries.push_back(extractStaticFold(p, s.pc, s.taken));
            unit.loadStaticFolds(std::move(entries),
                                 selection.bitSlotsReclaimed);
        } else {
            const auto dynOnly = selectFoldableBranches(p, profile, {}, config);
            unit.loadBank(0, extractBranchInfos(p, candidatePcs(dynOnly)));
        }
        PipelineSim sim(p, mem, *predictor, {}, &unit);
        const PipelineResult r = sim.run();
        EXPECT_TRUE(r.exited && r.exitCode == 0);
        return std::tuple<std::string, std::uint64_t, std::uint64_t>(
            r.output, r.stats.cycles, unit.stats().staticFolds);
    };

    const auto [baseOut, baseCycles, baseStatics] = run(false);
    const auto [out, cycles, statics] = run(true);
    EXPECT_EQ(baseStatics, 0u);
    EXPECT_GT(statics, 0u);
    EXPECT_EQ(out, baseOut);
    EXPECT_LE(cycles, baseCycles);
}

}  // namespace
}  // namespace asbr

// Tests for the static timing engine: cost-model derivation, loop-bound
// inference and annotation precedence, the unbounded-loop lint, cost-aware
// selection, and the soundness property the whole PR rests on — the static
// cycle bound covers the measured pipeline cycle count on every workload
// and on randomly generated programs.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>

#include "analysis/timing/cost_model.hpp"
#include "analysis/timing/wcet.hpp"
#include "analysis/verify.hpp"
#include "asbr/asbr_unit.hpp"
#include "asbr/extract.hpp"
#include "asm/assembler.hpp"
#include "bp/predictor.hpp"
#include "bp/bimodal.hpp"
#include "driver/artifacts.hpp"
#include "driver/names.hpp"
#include "mem/memory.hpp"
#include "profile/selection.hpp"
#include "program_gen.hpp"
#include "sim/pipeline.hpp"
#include "workloads/workloads.hpp"

namespace asbr {
namespace {

using analysis::timing::BoundSource;
using analysis::timing::TimingCostModel;
using analysis::timing::WcetEngine;
using analysis::timing::WcetResult;

/// Verifier + engine over one program (the verifier owns the CFG and the
/// value analysis the engine borrows).
struct Timing {
    analysis::FoldLegalityVerifier verifier;
    WcetEngine engine;

    explicit Timing(const Program& p)
        : verifier(p),
          engine(verifier.cfg(), verifier.values(),
                 TimingCostModel::fromPipeline(PipelineConfig{})) {}
};

constexpr const char* kExit = "        li v0, 1\n        li a0, 0\n        sys\n";

std::string countdownLoop(const std::string& beforeHead = "") {
    return "main:   li   s0, 37\n" + beforeHead +
           "loop:   addiu s0, s0, -1\n"
           "        addiu t1, t1, 1\n"
           "        addiu t2, t2, 1\n"
           "        bnez s0, loop\n" +
           kExit;
}

// ----------------------------------------------------------- cost model ----

TEST(CostModelTest, ConstantsDeriveFromPipelineConfig) {
    PipelineConfig cfg;
    cfg.mulLatency = 7;
    cfg.divLatency = 21;
    cfg.redirectBubbles = 2;
    cfg.icache.missPenalty = 5;
    cfg.dcache.missPenalty = 9;
    cfg.icache.lineBytes = 16;
    const TimingCostModel m = TimingCostModel::fromPipeline(cfg);
    EXPECT_EQ(m.mulStall, cfg.mulLatency - 1);
    EXPECT_EQ(m.divStall, cfg.divLatency - 1);
    EXPECT_EQ(m.mispredictPenalty, 2 + cfg.redirectBubbles);
    EXPECT_EQ(m.icacheMissPenalty, cfg.icache.missPenalty);
    EXPECT_EQ(m.dcacheMissPenalty, cfg.dcache.missPenalty);
    EXPECT_EQ(m.icacheLineBytes, cfg.icache.lineBytes);
}

TEST(CostModelTest, DefaultsMatchDefaultPipeline) {
    // The declarative defaults must stay in sync with PipelineConfig's —
    // they are the documented contract in cost_model.hpp.
    const TimingCostModel derived = TimingCostModel::fromPipeline(PipelineConfig{});
    const TimingCostModel defaults;
    EXPECT_EQ(derived.mulStall, defaults.mulStall);
    EXPECT_EQ(derived.divStall, defaults.divStall);
    EXPECT_EQ(derived.mispredictPenalty, defaults.mispredictPenalty);
    EXPECT_EQ(derived.icacheMissPenalty, defaults.icacheMissPenalty);
    EXPECT_EQ(derived.dcacheMissPenalty, defaults.dcacheMissPenalty);
    EXPECT_EQ(derived.icacheLineBytes, defaults.icacheLineBytes);
}

// ----------------------------------------------------------- loop bounds ----

TEST(LoopBoundTest, CountdownLoopIsInferred) {
    const Program p = assemble(countdownLoop());
    Timing t(p);
    ASSERT_EQ(t.engine.loops().size(), 1u);
    const auto& loop = t.engine.loops().front();
    EXPECT_EQ(loop.bound.source, BoundSource::kInferred);
    // The head runs 37 times; the interval inference may over-approximate
    // by a widening step but must stay sound and useful.
    EXPECT_GE(loop.bound.iterations, 37u);
    EXPECT_LE(loop.bound.iterations, 64u);
}

TEST(LoopBoundTest, AnnotationOverridesInference) {
    const Program p = assemble(countdownLoop("        .loopbound 100\n"));
    Timing t(p);
    ASSERT_EQ(t.engine.loops().size(), 1u);
    const auto& loop = t.engine.loops().front();
    EXPECT_EQ(loop.bound.source, BoundSource::kAnnotation);
    EXPECT_EQ(loop.bound.iterations, 100u);
}

std::string memoryCountedLoop(const std::string& beforeHead = "") {
    // The trip counter lives in memory: the interval fixpoint sees an
    // lw-written register and cannot bound the loop.
    return "main:   li   t0, 5\n"
           "        sw   t0, count\n" +
           beforeHead +
           "loop:   lw   s0, count\n"
           "        addiu s0, s0, -1\n"
           "        sw   s0, count\n"
           "        addiu t1, t1, 1\n"
           "        bnez s0, loop\n" +
           kExit + "        .data\ncount: .word 0\n";
}

TEST(LoopBoundTest, MemoryCountedLoopIsUnbounded) {
    const Program p = assemble(memoryCountedLoop());
    Timing t(p);
    ASSERT_EQ(t.engine.loops().size(), 1u);
    EXPECT_FALSE(t.engine.loops().front().bound.bounded());
    EXPECT_FALSE(t.engine.compute({}).bounded);
}

TEST(LoopBoundTest, ObservedBoundFillsUnboundedLoopOnly) {
    const Program p = assemble(memoryCountedLoop());
    Timing t(p);
    Memory mem;
    mem.loadProgram(p);
    const auto observed =
        analysis::timing::observeLoopBounds(p, mem, t.engine.loops());
    ASSERT_EQ(observed.size(), 1u);
    EXPECT_EQ(observed.begin()->second, 5u);
    t.engine.applyObservedBounds(observed);
    const auto& loop = t.engine.loops().front();
    EXPECT_EQ(loop.bound.source, BoundSource::kProfile);
    EXPECT_EQ(loop.bound.iterations, 5u);
    EXPECT_TRUE(t.engine.compute({}).bounded);
}

// ----------------------------------------------------------------- lints ----

bool hasUnboundedLint(const Program& p) {
    const analysis::FoldLegalityVerifier verifier(p);
    for (const auto& lint : verifier.lints(analysis::VerifyConfig{}))
        if (lint.kind == analysis::StaticLint::Kind::kUnboundedLoop)
            return true;
    return false;
}

TEST(LintTest, UnboundedLoopIsLintedUntilAnnotated) {
    EXPECT_TRUE(hasUnboundedLint(assemble(memoryCountedLoop())));
    EXPECT_FALSE(hasUnboundedLint(
        assemble(memoryCountedLoop("        .loopbound 5\n"))));
    EXPECT_FALSE(hasUnboundedLint(assemble(countdownLoop())));
}

// ------------------------------------------------------------- selection ----

TEST(StaticCostSelectionTest, RanksByCostAndRespectsCapacity) {
    // Two foldable countdown loops; the outer-like one (bigger trip count)
    // must outrank the smaller one in the BIT when capacity is 1.
    const std::string src =
        "main:   li   s0, 50\n"
        "loopa:  addiu s0, s0, -1\n"
        "        addiu t1, t1, 1\n"
        "        addiu t2, t2, 1\n"
        "        bnez s0, loopa\n"
        "        li   s1, 5\n"
        "loopb:  addiu s1, s1, -1\n"
        "        addiu t1, t1, 1\n"
        "        addiu t2, t2, 1\n"
        "        bnez s1, loopb\n" +
        std::string(kExit);
    const Program p = assemble(src);
    Timing t(p);
    const WcetResult baseline = t.engine.compute({});
    ASSERT_TRUE(baseline.bounded) << baseline.reason;

    SelectionConfig config;
    config.bitCapacity = 1;
    const FoldSelection sel =
        selectBranchesByStaticCost(p, baseline.branches, config);
    ASSERT_EQ(sel.dynamic.size(), 1u);
    // The ranking is totalCost-descending, so the capacity-1 pick is the
    // highest-cost branch in the baseline ranking.
    EXPECT_EQ(sel.dynamic.front().pc, baseline.branches.front().pc);
    EXPECT_GT(sel.dynamic.front().score, 0.0);

    const FoldSelection both = selectBranchesByStaticCost(p, baseline.branches);
    EXPECT_EQ(both.dynamic.size(), 2u);
    EXPECT_GE(both.dynamic[0].score, both.dynamic[1].score);
}

TEST(StaticCostSelectionTest, StaticallyDecidedBranchGoesToStaticTable) {
    const std::string src =
        "main:   li   t0, 1\n"
        "        addiu t1, t1, 1\n"
        "        addiu t2, t2, 1\n"
        "        bnez t0, skip\n"
        "        addiu t3, t3, 7\n"
        "skip:\n" +
        countdownLoop().substr(5);  // drop the duplicate "main:" label
    const Program p = assemble(src);
    Timing t(p);
    const WcetResult baseline = t.engine.compute({});
    ASSERT_TRUE(baseline.bounded) << baseline.reason;
    const FoldSelection sel = selectBranchesByStaticCost(p, baseline.branches);
    ASSERT_EQ(sel.statics.size(), 1u);
    EXPECT_TRUE(sel.statics.front().taken);
    for (const Candidate& c : sel.dynamic)
        EXPECT_NE(c.pc, sel.statics.front().pc);
}

// -------------------------------------------------------------- soundness ----

std::set<std::uint32_t> foldedPcSet(const FoldSelection& sel) {
    std::set<std::uint32_t> pcs;
    for (const StaticFoldCandidate& s : sel.statics) pcs.insert(s.pc);
    for (const Candidate& c : sel.dynamic) pcs.insert(c.pc);
    return pcs;
}

std::unique_ptr<AsbrUnit> unitFor(const Program& p, const FoldSelection& sel) {
    AsbrConfig config;
    config.updateStage = ValueStage::kMemEnd;  // threshold 3
    auto unit = std::make_unique<AsbrUnit>(config);
    std::vector<std::uint32_t> pcs;
    for (const Candidate& c : sel.dynamic) pcs.push_back(c.pc);
    unit->loadBank(0, extractBranchInfos(p, pcs));
    std::vector<StaticFoldEntry> statics;
    for (const StaticFoldCandidate& s : sel.statics)
        statics.push_back(extractStaticFold(p, s.pc, s.taken));
    unit->loadStaticFolds(std::move(statics), sel.bitSlotsReclaimed);
    return unit;
}

TEST(WcetSoundnessTest, BoundCoversMeasuredCyclesOnAllWorkloads) {
    for (const BenchId id : kAllBenchesExtended) {
        const driver::Prepared prepared = driver::prepare(id, true, 2001, 48);
        Timing t(prepared.program);
        Memory observeMem = driver::makeMemory(prepared);
        t.engine.applyObservedBounds(analysis::timing::observeLoopBounds(
            prepared.program, observeMem, t.engine.loops()));

        const WcetResult baseline = t.engine.compute({});
        ASSERT_TRUE(baseline.bounded) << benchName(id) << ": "
                                      << baseline.reason;

        SelectionConfig selConfig;
        const FoldSelection sel =
            selectBranchesByStaticCost(prepared.program, baseline.branches,
                                       selConfig);
        const std::set<std::uint32_t> foldedPcs = foldedPcSet(sel);
        const WcetResult folded = t.engine.compute(foldedPcs);
        ASSERT_TRUE(folded.bounded) << benchName(id) << ": " << folded.reason;

        const auto baselinePredictor = driver::makePredictorByToken("bimodal");
        const std::uint64_t measuredBaseline =
            driver::runPipeline(prepared, *baselinePredictor).stats.cycles;
        const auto foldedPredictor = driver::makePredictorByToken("bimodal");
        const auto unit = unitFor(prepared.program, sel);
        const std::uint64_t measuredFolded =
            driver::runPipeline(prepared, *foldedPredictor, unit.get())
                .stats.cycles;

        EXPECT_GE(baseline.cycles, measuredBaseline) << benchName(id);
        EXPECT_GE(folded.cycles, measuredFolded) << benchName(id);
        EXPECT_FALSE(foldedPcs.empty()) << benchName(id);
        EXPECT_LT(folded.cycles, baseline.cycles) << benchName(id);
    }
}

TEST(WcetSoundnessTest, BoundCoversMeasuredCyclesOnRandomPrograms) {
    int inferredOnly = 0;
    for (std::uint64_t seed = 1; seed <= 22; ++seed) {
        ProgramGen gen(seed * 104729);
        const Program p = assemble(gen.generate());
        Timing t(p);

        // Prefer fully static bounds; fall back to observed ones so every
        // seed still exercises the solver soundness property.
        WcetResult baseline = t.engine.compute({});
        if (baseline.bounded) {
            ++inferredOnly;
        } else {
            Memory observeMem;
            observeMem.loadProgram(p);
            t.engine.applyObservedBounds(analysis::timing::observeLoopBounds(
                p, observeMem, t.engine.loops()));
            baseline = t.engine.compute({});
        }
        ASSERT_TRUE(baseline.bounded)
            << "seed " << seed << ": " << baseline.reason;

        Memory mem;
        mem.loadProgram(p);
        const auto predictor = makeBimodal(64, 64);
        PipelineSim sim(p, mem, *predictor, PipelineConfig{});
        const PipelineResult r = sim.run();
        ASSERT_TRUE(r.exited && r.exitCode == 0) << "seed " << seed;
        EXPECT_GE(baseline.cycles, r.stats.cycles) << "seed " << seed;

        const FoldSelection sel =
            selectBranchesByStaticCost(p, baseline.branches);
        const WcetResult folded = t.engine.compute(foldedPcSet(sel));
        ASSERT_TRUE(folded.bounded) << "seed " << seed;
        EXPECT_LE(folded.cycles, baseline.cycles) << "seed " << seed;
    }
    // The generator emits countdown loops on purpose — inference must carry
    // the clear majority of the seeds without dynamic help.
    EXPECT_GE(inferredOnly, 15);
}

}  // namespace
}  // namespace asbr

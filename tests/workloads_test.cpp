// Workload validation: the mcc-compiled benchmarks running on the simulated
// core must produce bit-identical results to the native golden references,
// with and without condition scheduling and with ASBR folding enabled.
#include <gtest/gtest.h>

#include "asbr/asbr_unit.hpp"
#include "asbr/extract.hpp"
#include "bp/predictor.hpp"
#include "bp/bimodal.hpp"
#include "profile/profiler.hpp"
#include "profile/selection.hpp"
#include "sim/functional.hpp"
#include "sim/pipeline.hpp"
#include "workloads/input_gen.hpp"
#include "workloads/workloads.hpp"

namespace asbr {
namespace {

constexpr std::size_t kTestSamples = 3000;

std::vector<std::int16_t> testInput() { return generateSpeech(kTestSamples, 7); }

/// Run a benchmark program functionally over the given input; returns the
/// output buffer read back from simulated memory.
template <typename LoadFn, typename ReadFn>
auto runFunctional(const Program& p, LoadFn load, ReadFn read, std::size_t n) {
    Memory mem;
    mem.loadProgram(p);
    load(mem, p);
    FunctionalSim sim(p, mem);
    const FunctionalResult r = sim.run(500'000'000);
    EXPECT_TRUE(r.exited);
    EXPECT_EQ(r.exitCode, 0);
    return read(mem, p, n);
}

TEST(InputGenTest, DeterministicAndBounded) {
    const auto a = generateSpeech(5000, 42);
    const auto b = generateSpeech(5000, 42);
    const auto c = generateSpeech(5000, 43);
    EXPECT_EQ(a, b);
    EXPECT_NE(a, c);
    // Should carry real signal energy, not silence or rail-to-rail noise.
    std::int64_t sumAbs = 0;
    int extremes = 0;
    for (std::int16_t s : a) {
        sumAbs += s < 0 ? -s : s;
        if (s == -32768 || s == 32767) ++extremes;
    }
    EXPECT_GT(sumAbs / static_cast<std::int64_t>(a.size()), 200);
    EXPECT_LT(extremes, 500);
}

TEST(WorkloadsTest, AdpcmEncoderMatchesReference) {
    const auto pcm = testInput();
    const Program p = buildBench(BenchId::kAdpcmEncode);
    const auto simCodes = runFunctional(
        p,
        [&pcm](Memory& m, const Program& prog) { loadPcmInput(m, prog, pcm); },
        [](const Memory& m, const Program& prog, std::size_t n) {
            return readCodes(m, prog, n);
        },
        pcm.size());
    EXPECT_EQ(simCodes, adpcmEncodeRef(pcm));
}

TEST(WorkloadsTest, AdpcmDecoderMatchesReference) {
    const auto pcm = testInput();
    const auto codes = adpcmEncodeRef(pcm);
    const Program p = buildBench(BenchId::kAdpcmDecode);
    const auto simPcm = runFunctional(
        p,
        [&codes](Memory& m, const Program& prog) { loadCodeInput(m, prog, codes); },
        [](const Memory& m, const Program& prog, std::size_t n) {
            return readPcm(m, prog, n);
        },
        codes.size());
    EXPECT_EQ(simPcm, adpcmDecodeRef(codes));
}

TEST(WorkloadsTest, AdpcmRoundTripTracksInput) {
    // Codec sanity: decode(encode(x)) approximates x.
    const auto pcm = testInput();
    const auto decoded = adpcmDecodeRef(adpcmEncodeRef(pcm));
    std::int64_t err = 0, energy = 0;
    for (std::size_t i = 100; i < pcm.size(); ++i) {
        err += std::abs(pcm[i] - decoded[i]);
        energy += std::abs(static_cast<int>(pcm[i]));
    }
    EXPECT_LT(err, energy / 2);  // reconstruction error well below signal
}

TEST(WorkloadsTest, G721EncoderMatchesReference) {
    const auto pcm = testInput();
    const Program p = buildBench(BenchId::kG721Encode);
    const auto simCodes = runFunctional(
        p,
        [&pcm](Memory& m, const Program& prog) { loadPcmInput(m, prog, pcm); },
        [](const Memory& m, const Program& prog, std::size_t n) {
            return readCodes(m, prog, n);
        },
        pcm.size());
    EXPECT_EQ(simCodes, g721EncodeRef(pcm));
}

TEST(WorkloadsTest, G721DecoderMatchesReference) {
    const auto pcm = testInput();
    const auto codes = g721EncodeRef(pcm);
    const Program p = buildBench(BenchId::kG721Decode);
    const auto simPcm = runFunctional(
        p,
        [&codes](Memory& m, const Program& prog) { loadCodeInput(m, prog, codes); },
        [](const Memory& m, const Program& prog, std::size_t n) {
            return readPcm(m, prog, n);
        },
        codes.size());
    EXPECT_EQ(simPcm, g721DecodeRef(codes));
}

TEST(WorkloadsTest, G721EncoderDecoderRoundTrip) {
    const auto pcm = testInput();
    const auto decoded = g721DecodeRef(g721EncodeRef(pcm));
    // G.721 is a waveform codec: after convergence the output should track
    // the input with bounded error.
    std::int64_t err = 0, energy = 0;
    for (std::size_t i = 500; i < pcm.size(); ++i) {
        err += std::abs(pcm[i] - decoded[i]);
        energy += std::abs(static_cast<int>(pcm[i]));
    }
    EXPECT_LT(err, energy);
}

TEST(WorkloadsTest, SchedulingDoesNotChangeOutputs) {
    const auto pcm = testInput();
    for (const bool schedule : {false, true}) {
        const Program p = buildBench(BenchId::kG721Encode, schedule);
        const auto codes = runFunctional(
            p,
            [&pcm](Memory& m, const Program& prog) { loadPcmInput(m, prog, pcm); },
            [](const Memory& m, const Program& prog, std::size_t n) {
                return readCodes(m, prog, n);
            },
            pcm.size());
        EXPECT_EQ(codes, g721EncodeRef(pcm)) << "schedule=" << schedule;
    }
}

// The headline correctness property of the whole reproduction: enabling ASBR
// folding on profiler-selected branches changes *nothing* about program
// results while removing branches from the pipeline.
TEST(WorkloadsTest, AsbrFoldingPreservesBenchmarkResults) {
    const auto pcm = generateSpeech(1500, 11);
    for (const BenchId id : {BenchId::kAdpcmEncode, BenchId::kG721Encode}) {
        const Program p = buildBench(id);

        Memory profMem;
        profMem.loadProgram(p);
        loadPcmInput(profMem, p, pcm);
        const ProgramProfile profile = profileProgram(p, profMem);

        SelectionConfig selCfg;
        selCfg.threshold = 3;
        selCfg.bitCapacity = 16;
        const auto candidates = selectFoldableBranches(p, profile, {}, selCfg);
        ASSERT_FALSE(candidates.empty()) << benchName(id);

        AsbrUnit unit({ValueStage::kMemEnd, 16, 1});
        unit.loadBank(0, extractBranchInfos(p, candidatePcs(candidates)));

        Memory baseMem, asbrMem;
        baseMem.loadProgram(p);
        asbrMem.loadProgram(p);
        loadPcmInput(baseMem, p, pcm);
        loadPcmInput(asbrMem, p, pcm);

        auto basePred = makeBimodal2048();
        auto asbrPred = makeBimodal(512, 512);
        PipelineSim base(p, baseMem, *basePred);
        PipelineSim folded(p, asbrMem, *asbrPred, PipelineConfig{}, &unit);
        const PipelineResult rb = base.run();
        const PipelineResult rf = folded.run();

        EXPECT_GT(unit.stats().folds, 0u) << benchName(id);
        EXPECT_EQ(readCodes(baseMem, p, pcm.size()),
                  readCodes(asbrMem, p, pcm.size()))
            << benchName(id);
        EXPECT_EQ(rb.exitCode, rf.exitCode);
        EXPECT_EQ(rb.stats.committed,
                  rf.stats.committed + rf.stats.foldedBranches);
    }
}

TEST(WorkloadsTest, G711EncoderMatchesReference) {
    const auto pcm = testInput();
    const Program p = buildBench(BenchId::kG711Encode);
    const auto simCodes = runFunctional(
        p,
        [&pcm](Memory& m, const Program& prog) { loadPcmInput(m, prog, pcm); },
        [](const Memory& m, const Program& prog, std::size_t n) {
            return readCodes(m, prog, n);
        },
        pcm.size());
    EXPECT_EQ(simCodes, g711EncodeRef(pcm));
}

TEST(WorkloadsTest, G711DecoderMatchesReference) {
    const auto pcm = testInput();
    const auto codes = g711EncodeRef(pcm);
    const Program p = buildBench(BenchId::kG711Decode);
    const auto simPcm = runFunctional(
        p,
        [&codes](Memory& m, const Program& prog) { loadCodeInput(m, prog, codes); },
        [](const Memory& m, const Program& prog, std::size_t n) {
            return readPcm(m, prog, n);
        },
        codes.size());
    EXPECT_EQ(simPcm, g711DecodeRef(codes));
}

TEST(WorkloadsTest, G711RoundTripWithinUlawError) {
    // mu-law is logarithmic: relative error bounded (~1/16 of magnitude),
    // exact around zero.
    EXPECT_EQ(ulawToLinear(linearToUlaw(0)), 0);
    for (std::int32_t v : {-30000, -5000, -100, -1, 1, 100, 5000, 30000}) {
        const std::int16_t round =
            ulawToLinear(linearToUlaw(static_cast<std::int16_t>(v)));
        EXPECT_NEAR(round, v, std::abs(v) / 8.0 + 40) << v;
    }
}

TEST(WorkloadsTest, G711UlawCodesCoverFullByte) {
    // Encoder output spans the 8-bit code space on a realistic signal.
    const auto codes = g711EncodeRef(testInput());
    bool sawSign[2] = {false, false};
    for (std::uint8_t c : codes) sawSign[(c >> 7) & 1] = true;
    EXPECT_TRUE(sawSign[0]);
    EXPECT_TRUE(sawSign[1]);
}

TEST(WorkloadsTest, BenchMetadataConsistent) {
    for (const BenchId id : kAllBenchesExtended) {
        EXPECT_FALSE(benchSource(id).empty());
        EXPECT_GT(benchMaxSamples(id), 0u);
        EXPECT_NE(benchName(id), nullptr);
    }
    EXPECT_TRUE(benchIsEncoder(BenchId::kAdpcmEncode));
    EXPECT_FALSE(benchIsEncoder(BenchId::kG721Decode));
}

TEST(WorkloadsTest, ProgramsHaveControlDominatedProfile) {
    // The paper targets control-dominated code: conditional branches should
    // be a sizeable fraction of dynamic instructions.
    const auto pcm = generateSpeech(1000, 3);
    for (const BenchId id : {BenchId::kAdpcmEncode, BenchId::kG721Encode}) {
        const Program p = buildBench(id);
        Memory mem;
        mem.loadProgram(p);
        loadPcmInput(mem, p, pcm);
        const ProgramProfile prof = profileProgram(p, mem);
        std::uint64_t branchExecs = 0;
        for (const auto& [pc, bp] : prof.branches) branchExecs += bp.execs;
        const double fraction =
            static_cast<double>(branchExecs) /
            static_cast<double>(prof.instructions);
        EXPECT_GT(fraction, 0.08) << benchName(id);
        EXPECT_LT(fraction, 0.5) << benchName(id);
    }
}

}  // namespace
}  // namespace asbr

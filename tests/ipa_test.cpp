// Tests for the interprocedural analysis engine (analysis/ipa): SSA
// construction (dominance frontiers, pruned φ placement, renaming), SCCP
// precision relative to the dense fixpoint, value-set resolution of
// dispatch-table jalr calls, call-graph summaries, and — the load-bearing
// part — soundness of the whole pipeline against the functional ISS: every
// observed indirect-jump target must lie inside the predicted value set,
// and no observed branch outcome may contradict a static direction
// verdict.  Runs on all six paper workloads plus randomly generated
// dispatch programs.
//
// Also covers the dominator/loop-forest behaviour on irreducible and
// self-loop CFGs, asserting the WCET engine's `irreducible` failure reason
// fires exactly when the forest contains a widening point that heads no
// natural loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "analysis/timing/wcet.hpp"
#include "analysis/verify.hpp"
#include "asm/assembler.hpp"
#include "driver/artifacts.hpp"
#include "mem/memory.hpp"
#include "program_gen.hpp"
#include "report/ipa_report.hpp"
#include "sim/functional.hpp"
#include "workloads/workloads.hpp"

namespace asbr {
namespace {

using analysis::BranchDirection;
using analysis::Cfg;
using analysis::InstrIndex;
using analysis::kNoBlock;
namespace ipa = analysis::ipa;

constexpr const char* kExit = R"(
        li   v0, 1
        li   a0, 0
        sys
)";

/// The read-only two-entry dispatch table (mirrors
/// tests/fixtures/jalr_dispatch.s).
const std::string kDispatchSrc = std::string(R"(
main:   lw   t0, sel
        andi t0, t0, 1
        sll  t0, t0, 2
        la   t1, table
        addu t1, t1, t0
        lw   t2, 0(t1)
        jalr t2
        move s0, v0
)") + kExit + R"(
even:   li   v0, 2
        jr   ra
odd:    li   v0, 3
        jr   ra
        .data
sel:    .word 1
table:  .word even, odd
)";

/// Everything the ISS observed that the static pipeline makes claims about.
struct IssObservations {
    /// Indirect-control sites (jalr / non-ra jr): pc -> targets taken.
    std::map<std::uint32_t, std::set<std::uint32_t>> indirectTargets;
    std::map<std::uint32_t, bool> branchTaken;     ///< pc -> seen taken
    std::map<std::uint32_t, bool> branchNotTaken;  ///< pc -> seen not taken
    std::set<std::uint32_t> executedPcs;
};

IssObservations observe(const Program& program, Memory& memory) {
    IssObservations obs;
    FunctionalSim sim(program, memory);
    sim.setTraceHook([&](const Instruction& ins, const StepResult& r) {
        obs.executedPcs.insert(r.pc);
        if (ins.op == Op::kJalr ||
            (ins.op == Op::kJr && ins.rs != reg::ra)) {
            obs.indirectTargets[r.pc].insert(r.nextPc);
        }
        if (r.isBranch) {
            if (r.branchTaken)
                obs.branchTaken[r.pc] = true;
            else
                obs.branchNotTaken[r.pc] = true;
        }
    });
    const FunctionalResult result = sim.run();
    EXPECT_TRUE(result.exited);
    EXPECT_EQ(result.exitCode, 0);
    return obs;
}

/// The soundness contract between one IPA run and one ISS run:
///  - an observed indirect target at a *resolved* site must be predicted;
///  - AlwaysTaken forbids an observed fall-through, NeverTaken an observed
///    taken, kUnreachable any execution at all.
void checkSoundness(const ipa::IpaAnalysis& ipaResult,
                    const IssObservations& obs, const std::string& label) {
    const Cfg& cfg = ipaResult.cfg;
    for (const auto& [pc, targets] : obs.indirectTargets) {
        const auto it = ipaResult.resolution.map.find(cfg.indexOf(pc));
        if (it == ipaResult.resolution.map.end()) continue;  // explicitly top
        for (const std::uint32_t target : targets) {
            const InstrIndex ti = cfg.indexOf(target);
            const auto& predicted = it->second.targets;
            EXPECT_TRUE(std::find(predicted.begin(), predicted.end(), ti) !=
                        predicted.end())
                << label << ": observed jalr/jr target 0x" << std::hex
                << target << " at pc 0x" << pc
                << " escapes the predicted value set";
        }
    }
    for (InstrIndex i = 0; i < cfg.numInstructions(); ++i) {
        if (!isCondBranch(cfg.program->code[i].op)) continue;
        const std::uint32_t pc = cfg.pcOf(i);
        const BranchDirection dir = ipaResult.values.directionAt(i);
        switch (dir) {
            case BranchDirection::kAlwaysTaken:
                EXPECT_FALSE(obs.branchNotTaken.count(pc))
                    << label << ": AlwaysTaken branch at 0x" << std::hex << pc
                    << " fell through in the ISS";
                break;
            case BranchDirection::kNeverTaken:
                EXPECT_FALSE(obs.branchTaken.count(pc))
                    << label << ": NeverTaken branch at 0x" << std::hex << pc
                    << " was taken in the ISS";
                break;
            case BranchDirection::kUnreachable:
                EXPECT_FALSE(obs.executedPcs.count(pc))
                    << label << ": unreachable branch at 0x" << std::hex << pc
                    << " executed in the ISS";
                break;
            case BranchDirection::kDynamic:
                break;
        }
    }
}

/// Forest-level irreducibility: on reducible graphs every DFS retreating
/// edge is a back edge, so every widening point heads a natural loop; a
/// widening point without one pins an irreducible cycle.
bool forestSaysIrreducible(const analysis::LoopForest& forest) {
    for (std::size_t b = 0; b < forest.wideningPoint.size(); ++b) {
        if (!forest.isWideningPoint(b)) continue;
        bool headsLoop = false;
        for (const analysis::Loop& loop : forest.loops)
            if (loop.head == b) headsLoop = true;
        if (!headsLoop) return true;
    }
    return false;
}

// ------------------------------------------------------------------ SSA ----

TEST(SsaTest, SelfLoopBlockIsInItsOwnDominanceFrontier) {
    const Program p = assemble(std::string(R"(
main:   li   s0, 5
Lself:  addiu s0, s0, -1
        nop
        nop
        bnez s0, Lself
)") + kExit);
    const Cfg cfg = analysis::buildCfg(p);
    const analysis::DominatorTree doms = analysis::computeDominators(cfg);
    const auto frontiers = ipa::dominanceFrontiers(cfg, doms);
    const std::size_t selfBlock = cfg.blockAt(p.symbol("Lself"));
    ASSERT_NE(selfBlock, kNoBlock);
    EXPECT_TRUE(std::find(frontiers[selfBlock].begin(),
                          frontiers[selfBlock].end(),
                          selfBlock) != frontiers[selfBlock].end())
        << "a self-loop block must appear in its own dominance frontier";

    // ... and the loop-carried counter needs a φ there whose arguments
    // include the def from the block's own body.
    const ipa::SsaForm ssa = ipa::buildSsa(cfg, doms);
    bool found = false;
    for (const std::uint32_t phiId : ssa.phisOf[selfBlock]) {
        const ipa::SsaPhi& phi = ssa.phis[phiId];
        if (phi.reg != p.code[cfg.indexOf(p.symbol("Lself"))].rd) continue;
        found = true;
        bool selfArg = false;
        for (const std::uint32_t arg : phi.args)
            if (arg != ipa::kNoDef && ssa.defs[arg].block == selfBlock)
                selfArg = true;
        EXPECT_TRUE(selfArg) << "loop-carried φ lost its back-edge argument";
    }
    EXPECT_TRUE(found) << "no φ for the loop counter at the self-loop head";
}

TEST(SsaTest, PrunedPhiPlacementAtDiamondJoin) {
    const Program p = assemble(std::string(R"(
main:   lw   t0, sel
        bnez t0, LA
        li   t1, 1
        j    LJ
LA:     li   t1, 2
LJ:     addu s7, t1, t1
)") + kExit + R"(
        .data
sel:    .word 0
)");
    const Cfg cfg = analysis::buildCfg(p);
    const analysis::DominatorTree doms = analysis::computeDominators(cfg);
    const ipa::SsaForm ssa = ipa::buildSsa(cfg, doms);

    const std::size_t join = cfg.blockAt(p.symbol("LJ"));
    ASSERT_EQ(ssa.phisOf[join].size(), 1u)
        << "exactly one φ (t1) must be live at the join; pruning must drop "
           "the rest";
    const ipa::SsaPhi& phi = ssa.phis[ssa.phisOf[join][0]];
    ASSERT_EQ(phi.args.size(), cfg.blocks[join].preds.size());

    // The use in the join block consumes the φ, and the φ merges the two
    // li defs (one per arm).
    const InstrIndex use = cfg.indexOf(p.symbol("LJ"));
    EXPECT_EQ(ssa.srcDef[use][0], phi.def);
    std::set<std::size_t> argBlocks;
    for (const std::uint32_t arg : phi.args) {
        ASSERT_NE(arg, ipa::kNoDef);
        EXPECT_FALSE(ssa.defs[arg].isPhi);
        argBlocks.insert(ssa.defs[arg].block);
    }
    EXPECT_EQ(argBlocks.size(), 2u);
}

TEST(SsaTest, ReadBeforeWriteResolvesToSyntheticEntryDef) {
    const Program p = assemble(std::string(R"(
main:   addu s0, t3, t3
)") + kExit);
    const Cfg cfg = analysis::buildCfg(p);
    const ipa::SsaForm ssa =
        ipa::buildSsa(cfg, analysis::computeDominators(cfg));
    const std::uint8_t t3 = p.code[0].rs;
    EXPECT_EQ(ssa.srcDef[0][0], ssa.entryDef[t3]);
    EXPECT_TRUE(ssa.defs[ssa.entryDef[t3]].isEntry);
    // The entry def records its consumer, feeding the never-written lint.
    EXPECT_FALSE(ssa.defs[ssa.entryDef[t3]].uses.empty());
}

// ----------------------------------------------------------------- SCCP ----

TEST(SccpTest, ProvesConstantGuardAlwaysTaken) {
    const Program p = assemble(std::string(R"(
main:   li   s0, 5
        nop
        nop
        bnez s0, LT
        addiu s1, s1, 1
LT:     move s2, s0
)") + kExit);
    const ipa::IpaAnalysis result = ipa::analyzeProgram(p);
    const InstrIndex branch = 3;
    ASSERT_TRUE(isCondBranch(p.code[branch].op));
    EXPECT_EQ(result.sccp.directionAt(branch), BranchDirection::kAlwaysTaken);
    EXPECT_EQ(result.values.directionAt(branch),
              BranchDirection::kAlwaysTaken);
}

TEST(SccpTest, DominatingBranchSharpensRepeatedTest) {
    // The second beqz re-tests a register a dominating branch already
    // decided: pure SSA constant propagation cannot see it, the
    // dominating-edge meet must.
    const Program p = assemble(std::string(R"(
main:   lw   s0, sel
        beqz s0, LZ
        nop
        beqz s0, LZ
        addiu s1, s1, 1
LZ:     move s2, s0
)") + kExit + R"(
        .data
sel:    .word 0
)");
    const ipa::IpaAnalysis result = ipa::analyzeProgram(p);
    const InstrIndex second = 3;
    ASSERT_TRUE(isCondBranch(p.code[second].op));
    EXPECT_EQ(result.sccp.directionAt(second), BranchDirection::kNeverTaken)
        << "on the fall-through of the first beqz, s0 is provably nonzero";
}

TEST(SccpTest, MergedVerdictsNeverBelowDenseOnAllWorkloads) {
    for (const BenchId id :
         {BenchId::kAdpcmEncode, BenchId::kAdpcmDecode, BenchId::kG721Encode,
          BenchId::kG721Decode, BenchId::kG711Encode, BenchId::kG711Decode}) {
        const Program p = buildBench(id);
        const ipa::IpaAnalysis result = ipa::analyzeProgram(p);
        EXPECT_TRUE(result.sccp.converged);
        EXPECT_GE(result.stats.mergedDecided, result.stats.denseDecided)
            << "reduced product lost verdicts on bench "
            << static_cast<int>(id);
        // Per-branch: a dense decision survives the merge (or strengthens
        // to unreachable); it never flips to the opposite direction.
        for (InstrIndex i = 0; i < p.code.size(); ++i) {
            if (!isCondBranch(p.code[i].op)) continue;
            const BranchDirection dense = result.denseDir[i];
            const BranchDirection merged = result.values.directionAt(i);
            if (dense == BranchDirection::kDynamic) continue;
            EXPECT_TRUE(merged == dense ||
                        merged == BranchDirection::kUnreachable)
                << "merge weakened or flipped a dense verdict at instr " << i;
        }
    }
}

// ------------------------------------------------------------ value sets ----

TEST(ValueSetTest, DispatchTableCallResolvesToBothHandlers) {
    const Program p = assemble(kDispatchSrc);
    const ipa::IpaAnalysis result = ipa::analyzeProgram(p);
    EXPECT_EQ(result.resolution.resolvedCalls, 1u);
    EXPECT_EQ(result.resolution.tableLoads, 1u);
    EXPECT_EQ(result.resolution.unresolvedSites, 0u);
    ASSERT_EQ(result.resolution.map.size(), 1u);
    const auto& [site, resolved] = *result.resolution.map.begin();
    EXPECT_EQ(p.code[site].op, Op::kJalr);
    EXPECT_TRUE(resolved.isCall);
    const std::set<InstrIndex> targets(resolved.targets.begin(),
                                       resolved.targets.end());
    const std::set<InstrIndex> expected = {
        result.cfg.indexOf(p.symbol("even")),
        result.cfg.indexOf(p.symbol("odd"))};
    EXPECT_EQ(targets, expected);
    EXPECT_FALSE(result.cfg.hasUnresolvedIndirect);
}

TEST(ValueSetTest, ResolutionTurnsIndirectWcetBounded) {
    const Program p = assemble(kDispatchSrc);
    const ipa::IpaAnalysis result = ipa::analyzeProgram(p);

    // Without the resolution the engine must refuse (that was the pre-IPA
    // behaviour); with it the same program gets a finite bound.
    const Cfg conservative = analysis::buildCfg(p);
    const analysis::LoopForest conservativeLoops = analysis::computeLoops(
        conservative, analysis::computeDominators(conservative));
    const analysis::ValueAnalysis conservativeVa =
        analysis::analyzeValues(conservative, conservativeLoops);
    const analysis::timing::WcetEngine before(
        conservative, conservativeVa, analysis::timing::TimingCostModel{});
    EXPECT_FALSE(before.compute({}).bounded);

    const analysis::timing::WcetEngine after(
        result.cfg, result.values, analysis::timing::TimingCostModel{},
        &result.resolution.map);
    const analysis::timing::WcetResult bounded = after.compute({});
    EXPECT_TRUE(bounded.bounded) << bounded.reason;
    EXPECT_GT(bounded.cycles, 0u);
    // Every function reachable from main gets a published per-entry bound.
    EXPECT_EQ(bounded.functionCycles.size(), 3u);
}

TEST(ValueSetTest, StoreIntoTablePoisonsResolution) {
    // One store overlapping the table makes it non-read-only: the site must
    // stay conservatively unresolved (soundness over precision).
    const std::string src =
        std::string(R"(
main:   la   t3, table
        sw   t3, table
        lw   t0, sel
        andi t0, t0, 1
        sll  t0, t0, 2
        la   t1, table
        addu t1, t1, t0
        lw   t2, 0(t1)
        jalr t2
        move s0, v0
)") + kExit + R"(
even:   li   v0, 2
        jr   ra
odd:    li   v0, 3
        jr   ra
        .data
sel:    .word 1
table:  .word even, odd
)";
    const ipa::IpaAnalysis result = ipa::analyzeProgram(assemble(src));
    EXPECT_TRUE(result.resolution.map.empty());
    EXPECT_EQ(result.resolution.unresolvedSites, 1u);
    EXPECT_TRUE(result.cfg.hasUnresolvedIndirect);
}

// ------------------------------------------------------------ call graph ----

TEST(CallGraphTest, SummariesReturnValueClobberAndBottomUpOrder) {
    const Program p = assemble(std::string(R"(
main:   jal  f
        nop
        move s0, v0
)") + kExit + R"(
f:      li   v0, 7
        jr   ra
)");
    const ipa::IpaAnalysis result = ipa::analyzeProgram(p);
    const ipa::CallGraph& graph = result.callGraph;
    ASSERT_EQ(graph.functions.size(), 2u);
    EXPECT_FALSE(graph.recursive);

    const std::size_t mainIdx = graph.mainIndex;
    const std::size_t fIdx =
        graph.byEntry.at(result.cfg.indexOf(p.symbol("f")));
    ASSERT_NE(mainIdx, fIdx);
    ASSERT_EQ(graph.functions[mainIdx].callees.size(), 1u);
    EXPECT_EQ(graph.functions[mainIdx].callees[0], fIdx);

    const ipa::FunctionSummary& f = graph.functions[fIdx];
    EXPECT_TRUE(f.reachableFromMain);
    EXPECT_TRUE(f.returnValue.isConstant());
    EXPECT_EQ(f.returnValue.lo, 7);
    EXPECT_NE(f.clobbered & (1u << reg::v0), 0u);
    EXPECT_FALSE(f.hasUnresolvedIndirect);

    // Bottom-up: callee before caller.
    const auto pos = [&](std::size_t fn) {
        return std::find(graph.bottomUp.begin(), graph.bottomUp.end(), fn) -
               graph.bottomUp.begin();
    };
    EXPECT_LT(pos(fIdx), pos(mainIdx));

    const std::string dot = ipa::callGraphDot(graph);
    EXPECT_NE(dot.find("digraph"), std::string::npos);
    EXPECT_NE(dot.find("->"), std::string::npos);
}

// ---------------------------------------------------------------- lints ----

TEST(LintTest, DanglingLoopBoundFiresOnlyOffLoopHeads) {
    const std::string body = R"(
loop:   addiu s0, s0, -1
        nop
        nop
        bnez s0, loop
)";
    const Program dangling = assemble(
        "main:   li   s0, 6\n        .loopbound 8\n        li s1, 0\n" +
        std::string(body) + kExit);
    const analysis::FoldLegalityVerifier bad(dangling);
    bool fired = false;
    for (const analysis::StaticLint& lint : bad.lints({}))
        if (lint.kind == analysis::StaticLint::Kind::kDanglingLoopBound)
            fired = true;
    EXPECT_TRUE(fired);
    EXPECT_TRUE(
        analysis::isErrorLint(analysis::StaticLint::Kind::kDanglingLoopBound));

    const Program anchored = assemble("main:   li   s0, 6\n        .loopbound "
                                      "8\n" +
                                      std::string(body) + kExit);
    const analysis::FoldLegalityVerifier good(anchored);
    for (const analysis::StaticLint& lint : good.lints({}))
        EXPECT_NE(lint.kind, analysis::StaticLint::Kind::kDanglingLoopBound);
}

// ---------------------------------------------- irreducible / self loops ----

TEST(IrreducibleTest, TwoEntryCycleHasNoNaturalLoopAndFailsWcet) {
    const Program p = assemble(std::string(R"(
main:   li   s0, 4
        lw   t0, sel
        bnez t0, Lb
La:     addiu s0, s0, -1
Lb:     addiu s0, s0, -1
        bgtz s0, La
)") + kExit + R"(
        .data
sel:    .word 1
)");
    const ipa::IpaAnalysis result = ipa::analyzeProgram(p);
    EXPECT_TRUE(forestSaysIrreducible(result.loops));
    // Neither cycle block dominates the other, so no natural loop may claim
    // the cycle...
    for (const analysis::Loop& loop : result.loops.loops) {
        EXPECT_NE(loop.head, result.cfg.blockAt(p.symbol("La")));
        EXPECT_NE(loop.head, result.cfg.blockAt(p.symbol("Lb")));
    }
    // ... and the WCET engine must refuse with the irreducible reason, not
    // silently bound an unanalyzable shape.
    const analysis::timing::WcetEngine engine(
        result.cfg, result.values, analysis::timing::TimingCostModel{},
        &result.resolution.map);
    const analysis::timing::WcetResult wcet = engine.compute({});
    EXPECT_FALSE(wcet.bounded);
    EXPECT_NE(wcet.reason.find("irreducible"), std::string::npos)
        << wcet.reason;

    // The program still terminates — the refusal is about analyzability,
    // not semantics.
    Memory mem;
    mem.loadProgram(p);
    observe(p, mem);
}

TEST(IrreducibleTest, SelfLoopIsReducibleAndWcetBounded) {
    const Program p = assemble(std::string(R"(
main:   li   s0, 5
Lself:  addiu s0, s0, -1
        nop
        nop
        bnez s0, Lself
)") + kExit);
    const ipa::IpaAnalysis result = ipa::analyzeProgram(p);
    EXPECT_FALSE(forestSaysIrreducible(result.loops));
    const std::size_t selfBlock = result.cfg.blockAt(p.symbol("Lself"));
    bool found = false;
    for (const analysis::Loop& loop : result.loops.loops)
        if (loop.head == selfBlock) {
            found = true;
            EXPECT_TRUE(std::find(loop.latches.begin(), loop.latches.end(),
                                  selfBlock) != loop.latches.end())
                << "a self-loop is its own latch";
        }
    EXPECT_TRUE(found);

    const analysis::timing::WcetEngine engine(
        result.cfg, result.values, analysis::timing::TimingCostModel{},
        &result.resolution.map);
    const analysis::timing::WcetResult wcet = engine.compute({});
    EXPECT_TRUE(wcet.bounded) << wcet.reason;
}

TEST(IrreducibleTest, WcetIrreducibleReasonMatchesForestOnRandomPrograms) {
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        ProgramGen gen(seed * 52361);
        if (seed % 2 == 0) gen.withIrreducible();
        const Program p = assemble(gen.generate());
        const ipa::IpaAnalysis result = ipa::analyzeProgram(p);
        const analysis::timing::WcetEngine engine(
            result.cfg, result.values, analysis::timing::TimingCostModel{},
            &result.resolution.map);
        const analysis::timing::WcetResult wcet = engine.compute({});
        const bool irreducible = forestSaysIrreducible(result.loops);
        EXPECT_EQ(seed % 2 == 0, irreducible) << "seed " << seed;
        EXPECT_EQ(wcet.reason.find("irreducible") != std::string::npos,
                  irreducible)
            << "seed " << seed << ": reason '" << wcet.reason
            << "' disagrees with the loop forest";
        if (!irreducible) {
            EXPECT_TRUE(wcet.bounded) << wcet.reason;
        }
    }
}

// ------------------------------------------------------------- soundness ----

TEST(SoundnessTest, IssAgreesWithStaticClaimsOnAllWorkloads) {
    for (const BenchId id :
         {BenchId::kAdpcmEncode, BenchId::kAdpcmDecode, BenchId::kG721Encode,
          BenchId::kG721Decode, BenchId::kG711Encode, BenchId::kG711Decode}) {
        const driver::Prepared prepared = driver::prepare(id, true, 2001, 64);
        Memory memory = driver::makeMemory(prepared);
        const IssObservations obs = observe(prepared.program, memory);
        const ipa::IpaAnalysis result = ipa::analyzeProgram(prepared.program);
        checkSoundness(result, obs,
                       "bench " + std::to_string(static_cast<int>(id)));
    }
}

TEST(SoundnessTest, IssJalrTargetsStayInsidePredictedSets) {
    // >= 20 random dispatch programs: every one must resolve its table call
    // and every ISS-observed handler must be inside the predicted set.
    for (std::uint64_t seed = 1; seed <= 24; ++seed) {
        ProgramGen gen(seed * 7477);
        const Program p = assemble(gen.withDispatch().generate());
        Memory memory;
        memory.loadProgram(p);
        const IssObservations obs = observe(p, memory);
        ASSERT_FALSE(obs.indirectTargets.empty()) << "seed " << seed;

        const ipa::IpaAnalysis result = ipa::analyzeProgram(p);
        EXPECT_GE(result.resolution.resolvedCalls, 1u)
            << "seed " << seed
            << ": the read-only dispatch table must resolve";
        checkSoundness(result, obs, "seed " + std::to_string(seed));
    }
}

// ---------------------------------------------------------------- report ----

TEST(IpaReportTest, SchemaRoundTripAndByteStability) {
    const Program p = assemble(kDispatchSrc);
    const analysis::FoldLegalityVerifier verifier(p);
    const IpaReportMeta meta{"dispatch-test"};
    const JsonValue doc = ipaReportJson(meta, verifier);
    const ReportValidation validation = validateIpaReportJson(doc);
    EXPECT_TRUE(validation.ok()) << (validation.errors.empty()
                                         ? ""
                                         : validation.errors.front());
    EXPECT_EQ(doc.dump(2), ipaReportJson(meta, verifier).dump(2));

    // A non-object document must be rejected outright.
    EXPECT_FALSE(validateIpaReportJson(JsonValue("not an object")).ok());
}

}  // namespace
}  // namespace asbr

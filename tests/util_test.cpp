// Unit tests for the util module: tables, statistics, RNG, ensure.
#include <gtest/gtest.h>

#include "util/ensure.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace asbr {
namespace {

TEST(EnsureTest, PassesAndThrows) {
    EXPECT_NO_THROW(ASBR_ENSURE(1 + 1 == 2, "fine"));
    try {
        ASBR_ENSURE(false, "the message");
        FAIL() << "expected EnsureError";
    } catch (const EnsureError& e) {
        EXPECT_NE(std::string(e.what()).find("the message"), std::string::npos);
        EXPECT_NE(std::string(e.what()).find("util_test.cpp"), std::string::npos);
    }
}

TEST(RngTest, DeterministicStreams) {
    Xorshift64 a(42), b(42), c(43);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
    bool differs = false;
    Xorshift64 a2(42);
    for (int i = 0; i < 100; ++i) differs |= a2.next() != c.next();
    EXPECT_TRUE(differs);
}

TEST(RngTest, RangesRespected) {
    Xorshift64 rng(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(rng.below(17), 17u);
        const std::int64_t v = rng.range(-5, 5);
        EXPECT_GE(v, -5);
        EXPECT_LE(v, 5);
        const double r = rng.real();
        EXPECT_GE(r, 0.0);
        EXPECT_LT(r, 1.0);
    }
    EXPECT_THROW(rng.below(0), EnsureError);
    EXPECT_THROW(rng.range(3, 2), EnsureError);
}

TEST(RngTest, ChanceRoughlyCalibrated) {
    Xorshift64 rng(11);
    int hits = 0;
    for (int i = 0; i < 10000; ++i) hits += rng.chance(0.3) ? 1 : 0;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(RngTest, ZeroSeedStillWorks) {
    Xorshift64 rng(0);
    EXPECT_NE(rng.next(), 0u);  // degenerate all-zero state avoided
}

TEST(StatsTest, RatioBasics) {
    Ratio r;
    EXPECT_DOUBLE_EQ(r.value(), 0.0);
    r.record(true);
    r.record(true);
    r.record(false);
    EXPECT_NEAR(r.value(), 2.0 / 3.0, 1e-12);
}

TEST(StatsTest, MeanStddevGeomean) {
    const double xs[] = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
    EXPECT_DOUBLE_EQ(mean(xs), 5.0);
    EXPECT_DOUBLE_EQ(stddev(xs), 2.0);
    const double gs[] = {1.0, 4.0, 16.0};
    EXPECT_NEAR(geomean(gs), 4.0, 1e-12);
    EXPECT_DOUBLE_EQ(mean({}), 0.0);
    EXPECT_DOUBLE_EQ(stddev({}), 0.0);
    EXPECT_DOUBLE_EQ(geomean({}), 0.0);
    const double bad[] = {1.0, -1.0};
    EXPECT_THROW(geomean(bad), EnsureError);
}

TEST(StatsTest, Improvement) {
    EXPECT_DOUBLE_EQ(improvement(100, 84), 0.16);
    EXPECT_DOUBLE_EQ(improvement(100, 100), 0.0);
    EXPECT_LT(improvement(100, 110), 0.0);
    EXPECT_THROW(improvement(0, 5), EnsureError);
}

TEST(TableTest, RenderAlignsColumns) {
    TextTable t("Title");
    t.setHeader({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("Title"), std::string::npos);
    EXPECT_NE(out.find("| name   | value |"), std::string::npos);
    EXPECT_NE(out.find("| longer | 22    |"), std::string::npos);
    EXPECT_EQ(t.rowCount(), 2u);
}

TEST(TableTest, CsvEscaping) {
    TextTable t;
    t.setHeader({"a", "b"});
    t.addRow({"plain", "with,comma"});
    t.addRow({"with\"quote", "multi\nline"});
    const std::string csv = t.toCsv();
    EXPECT_NE(csv.find("\"with,comma\""), std::string::npos);
    EXPECT_NE(csv.find("\"with\"\"quote\""), std::string::npos);
    EXPECT_NE(csv.find("\"multi\nline\""), std::string::npos);
}

TEST(TableTest, RowWidthValidation) {
    TextTable t;
    t.setHeader({"a", "b"});
    EXPECT_THROW(t.addRow({"only one"}), EnsureError);
    t.addRow({"1", "2"});
    EXPECT_THROW(t.setHeader({"late"}), EnsureError);
}

TEST(FormatTest, Commas) {
    EXPECT_EQ(formatWithCommas(0), "0");
    EXPECT_EQ(formatWithCommas(999), "999");
    EXPECT_EQ(formatWithCommas(1000), "1,000");
    EXPECT_EQ(formatWithCommas(12232809), "12,232,809");
    EXPECT_EQ(formatWithCommas(1234567890123ull), "1,234,567,890,123");
}

TEST(FormatTest, FixedAndPercent) {
    EXPECT_EQ(formatFixed(1.852, 2), "1.85");
    EXPECT_EQ(formatFixed(-0.5, 1), "-0.5");
    EXPECT_EQ(formatPercent(0.32), "32%");
    EXPECT_EQ(formatPercent(0.068, 1), "6.8%");
}

}  // namespace
}  // namespace asbr

// Deterministic fuzz smoke tests (docs/fault-injection.md, "Robustness").
//
// Both parsers that consume external bytes — the assembler and the JSON
// reader — are hammered with ~10k mutated inputs each.  The contract under
// test: every input either succeeds or raises the parser's *typed* error
// (AsmError / EnsureError for assemble, a JsonParseResult error for
// parseJson).  Nothing may crash, hang, or trip a sanitizer; ci/sanitize.sh
// runs this binary under ASan/UBSan.  All mutation randomness flows from
// Xorshift64 with fixed seeds, so a failure reproduces bit-for-bit.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "asm/assembler.hpp"
#include "util/ensure.hpp"
#include "util/json.hpp"
#include "util/rng.hpp"

namespace asbr {
namespace {

constexpr std::size_t kIterations = 10'000;

/// Apply 1..4 random byte-level mutations: substitute, insert, delete,
/// truncate, or splice a chunk from another corpus entry.
std::string mutate(const std::vector<std::string>& corpus, Xorshift64& rng) {
    std::string s = corpus[rng.below(corpus.size())];
    const std::size_t edits = 1 + rng.below(4);
    for (std::size_t e = 0; e < edits; ++e) {
        switch (rng.below(5)) {
            case 0:  // substitute a byte (full 0..255 range: embedded NULs,
                     // high bytes, control characters)
                if (!s.empty())
                    s[rng.below(s.size())] =
                        static_cast<char>(rng.below(256));
                break;
            case 1:  // insert a byte
                s.insert(s.begin() + static_cast<std::ptrdiff_t>(
                                         rng.below(s.size() + 1)),
                         static_cast<char>(rng.below(256)));
                break;
            case 2:  // delete a byte
                if (!s.empty())
                    s.erase(s.begin() + static_cast<std::ptrdiff_t>(
                                            rng.below(s.size())));
                break;
            case 3:  // truncate
                if (!s.empty()) s.resize(rng.below(s.size()));
                break;
            case 4: {  // splice a chunk from another corpus entry
                const std::string& other = corpus[rng.below(corpus.size())];
                if (!other.empty()) {
                    const std::size_t from = rng.below(other.size());
                    const std::size_t len =
                        1 + rng.below(other.size() - from);
                    s.insert(rng.below(s.size() + 1),
                             other.substr(from, len));
                }
                break;
            }
        }
    }
    return s;
}

TEST(FuzzTest, AssemblerNeverCrashesOnMutatedSource) {
    const std::vector<std::string> corpus = {
        R"(
main:   li   s0, 30
loop:   addiu s0, s0, -1
        addiu t1, t1, 1
        bnez  s0, loop
        li   v0, 1
        li   a0, 0
        sys
)",
        R"(
        .data
buf:    .word 1, 2, 3, 4
        .text
main:   la   t0, buf
        lw   t1, 0(t0)
        sw   t1, 4(t0)
        jal  sub
        j    done
sub:    jr   ra
done:   li   v0, 1
        li   a0, 0
        sys
)",
        "main: beqz zero, main\n",
        "# just a comment\nmain: sys\n",
        "",
    };
    Xorshift64 rng(0xA55E17B1E5EEDull);
    std::size_t ok = 0, rejected = 0;
    for (std::size_t i = 0; i < kIterations; ++i) {
        const std::string input = mutate(corpus, rng);
        try {
            (void)assemble(input);
            ++ok;
        } catch (const AsmError&) {
            ++rejected;
        } catch (const EnsureError&) {
            // Internal invariant checks are an acceptable *typed* rejection
            // (e.g. immediate range checks below the parser).
            ++rejected;
        }
        // Anything else (std::bad_alloc aside) escapes and fails the test.
    }
    // The mutator must exercise both sides of the contract.
    EXPECT_GT(ok, 0u);
    EXPECT_GT(rejected, 0u);
}

TEST(FuzzTest, JsonParserNeverCrashesOnMutatedInput) {
    const std::vector<std::string> corpus = {
        R"({"schema":"asbr.fault_report","version":1,
            "meta":{"benchmark":"adpcm-enc","seed":2001,"protected":false},
            "outcomes":{"masked":45,"sdc":1},
            "injections":[{"site":{"unit":"bdt_cond","reg":4,"cond":1},
                           "cycle":12,"outcome":"masked"}]})",
        R"([1, -2.5e10, true, false, null, "strA\n", [], {}])",
        R"({"nested":{"a":[{"b":[[[1]]]}]},"esc":"\"\\\/\b\f\n\r\t"})",
        "42",
        "\"lone string\"",
        "",
    };
    Xorshift64 rng(0xFEEDFACEull);
    std::size_t ok = 0, rejected = 0;
    for (std::size_t i = 0; i < kIterations; ++i) {
        const std::string input = mutate(corpus, rng);
        JsonParseResult result;
        try {
            result = parseJson(input);
        } catch (...) {
            FAIL() << "parseJson threw on input of " << input.size()
                   << " bytes (iteration " << i << ")";
        }
        if (result.ok()) {
            ++ok;
            // A successful parse must survive a dump/re-parse round trip.
            const JsonParseResult again = parseJson(result.value->dump());
            EXPECT_TRUE(again.ok()) << again.error;
        } else {
            ++rejected;
            EXPECT_FALSE(result.error.empty());
        }
    }
    EXPECT_GT(ok, 0u);
    EXPECT_GT(rejected, 0u);
}

}  // namespace
}  // namespace asbr

// CLI robustness (docs/fault-injection.md, "Robustness"): every asbr-* tool
// must turn bad input — unknown flags, missing files, malformed JSON,
// wrong-schema documents — into a one-line structured error and a non-zero
// exit code.  No tool may die from an uncaught exception or a signal.
//
// The tests shell out to the real binaries (ASBR_TOOLS_DIR is injected by
// CMake as the tool build directory) and inspect exit status + combined
// stdout/stderr.
#include <gtest/gtest.h>

#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <string>

namespace {

struct RunResult {
    int exitCode = -1;
    bool exitedNormally = false;  ///< false = killed by a signal (crash)
    std::string output;           ///< combined stdout + stderr
};

RunResult runTool(const std::string& tool, const std::string& args) {
    const std::string cmd =
        std::string(ASBR_TOOLS_DIR) + "/" + tool + " " + args + " 2>&1";
    std::FILE* pipe = popen(cmd.c_str(), "r");
    EXPECT_NE(pipe, nullptr) << cmd;
    RunResult result;
    if (pipe == nullptr) return result;
    char buffer[4096];
    while (std::fgets(buffer, sizeof buffer, pipe) != nullptr)
        result.output += buffer;
    const int status = pclose(pipe);
    result.exitedNormally = WIFEXITED(status);
    result.exitCode = result.exitedNormally ? WEXITSTATUS(status) : -1;
    return result;
}

/// The shared contract for every rejection: normal exit, non-zero code,
/// a diagnostic on exactly one line, and no uncaught-exception traces.
void expectCleanRejection(const RunResult& r, const std::string& what) {
    EXPECT_TRUE(r.exitedNormally) << what << " died from a signal:\n"
                                  << r.output;
    EXPECT_NE(r.exitCode, 0) << what << " accepted bad input:\n" << r.output;
    EXPECT_FALSE(r.output.empty()) << what << " rejected silently";
    EXPECT_EQ(r.output.npos, r.output.find("terminate called")) << r.output;
    EXPECT_EQ(r.output.npos, r.output.find("Segmentation")) << r.output;
}

std::string writeTemp(const std::string& name, const std::string& content) {
    const std::string path =
        testing::TempDir() + "asbr_cli_robustness_" + name;
    std::ofstream out(path);
    out << content;
    return path;
}

class CliRobustnessTest : public testing::TestWithParam<const char*> {};

TEST_P(CliRobustnessTest, UnknownFlagIsRejected) {
    const RunResult r = runTool(GetParam(), "--definitely-not-a-flag");
    expectCleanRejection(r, GetParam());
}

TEST_P(CliRobustnessTest, HelpSucceeds) {
    const RunResult r = runTool(GetParam(), "--help");
    EXPECT_TRUE(r.exitedNormally);
    EXPECT_EQ(r.exitCode, 0) << r.output;
    EXPECT_NE(r.output.find("usage"), r.output.npos) << r.output;
}

INSTANTIATE_TEST_SUITE_P(Tools, CliRobustnessTest,
                         testing::Values("asbr-stats", "asbr-verify",
                                         "asbr-faults", "asbr-sweep"));

TEST(CliRobustness, StatsUnknownCommand) {
    expectCleanRejection(runTool("asbr-stats", "frobnicate"), "asbr-stats");
}

TEST(CliRobustness, StatsValidateMissingFile) {
    expectCleanRejection(
        runTool("asbr-stats", "validate /nonexistent/report.json"),
        "asbr-stats validate");
}

TEST(CliRobustness, StatsValidateMalformedJson) {
    const std::string path = writeTemp("bad.json", "{ this is : not json");
    expectCleanRejection(runTool("asbr-stats", "validate " + path),
                         "asbr-stats validate");
}

TEST(CliRobustness, StatsValidateWrongSchema) {
    const std::string path = writeTemp(
        "schema.json", R"({"schema":"asbr.made_up_schema","version":1})");
    expectCleanRejection(runTool("asbr-stats", "validate " + path),
                         "asbr-stats validate");
}

TEST(CliRobustness, StatsRunUnknownBench) {
    expectCleanRejection(
        runTool("asbr-stats", "run --bench=quake3 --predictor=bimodal"),
        "asbr-stats run");
}

TEST(CliRobustness, StatsRunUnknownPredictor) {
    expectCleanRejection(
        runTool("asbr-stats", "run --bench=adpcm-enc --predictor=oracle2"),
        "asbr-stats run");
}

TEST(CliRobustness, VerifyMissingFile) {
    expectCleanRejection(runTool("asbr-verify", "/nonexistent/prog.s"),
                         "asbr-verify");
}

TEST(CliRobustness, VerifyNoArguments) {
    expectCleanRejection(runTool("asbr-verify", ""), "asbr-verify");
}

TEST(CliRobustness, VerifyAnalyzeMissingFile) {
    expectCleanRejection(runTool("asbr-verify", "analyze /nonexistent/prog.s"),
                         "asbr-verify analyze");
}

TEST(CliRobustness, VerifyAnalyzeUnknownBench) {
    expectCleanRejection(runTool("asbr-verify", "analyze --bench=mpeg9"),
                         "asbr-verify analyze");
}

TEST(CliRobustness, VerifyAnalyzeFileAndBenchConflict) {
    expectCleanRejection(
        runTool("asbr-verify", "analyze prog.s --bench=adpcm-enc"),
        "asbr-verify analyze");
}

TEST(CliRobustness, VerifyAnalyzeUnwritableOutput) {
    expectCleanRejection(
        runTool("asbr-verify",
                "analyze --bench=adpcm-enc --out=/nonexistent/dir/r.json"),
        "asbr-verify analyze");
}

TEST(CliRobustness, VerifyDumpCfgUnwritablePath) {
    const std::string src = writeTemp("dump_cfg.s",
                                      "main:   li v0, 1\n"
                                      "        li a0, 0\n"
                                      "        sys\n");
    expectCleanRejection(
        runTool("asbr-verify",
                src + " --no-profile --quiet --dump-cfg=/nonexistent/dir/g.dot"),
        "asbr-verify --dump-cfg");
}

TEST(CliRobustness, VerifyDumpCfgWritesAValidDigraph) {
    // The nops keep the branch's producer distance at the fold threshold,
    // so the verify pass itself exits 0 and only the dump is under test.
    const std::string src = writeTemp("dump_cfg_ok.s",
                                      "main:   li s0, 3\n"
                                      "loop:   addiu s0, s0, -1\n"
                                      "        nop\n"
                                      "        nop\n"
                                      "        nop\n"
                                      "        bgtz s0, loop\n"
                                      "        li v0, 1\n"
                                      "        li a0, 0\n"
                                      "        sys\n");
    const std::string dot = testing::TempDir() + "asbr_cli_robustness_cfg.dot";
    const RunResult r = runTool(
        "asbr-verify", src + " --no-profile --quiet --dump-cfg=" + dot);
    EXPECT_TRUE(r.exitedNormally);
    EXPECT_EQ(r.exitCode, 0) << r.output;
    std::ifstream in(dot);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    EXPECT_NE(text.find("digraph"), text.npos);
    EXPECT_NE(text.find("->"), text.npos);
}

TEST(CliRobustness, FaultsUnknownCommand) {
    expectCleanRejection(runTool("asbr-faults", "inject-everything"),
                         "asbr-faults");
}

TEST(CliRobustness, FaultsCampaignUnknownBench) {
    expectCleanRejection(
        runTool("asbr-faults", "campaign --bench=doom --injections=1"),
        "asbr-faults campaign");
}

TEST(CliRobustness, FaultsReplayMissingFile) {
    expectCleanRejection(runTool("asbr-faults", "replay /nonexistent/fr.json"),
                         "asbr-faults replay");
}

TEST(CliRobustness, FaultsReplayMalformedJson) {
    const std::string path = writeTemp("fr_bad.json", "[1, 2, oops");
    expectCleanRejection(runTool("asbr-faults", "replay " + path),
                         "asbr-faults replay");
}

TEST(CliRobustness, FaultsValidateTruncatedReport) {
    // Structurally valid JSON that fails schema validation.
    const std::string path = writeTemp(
        "fr_trunc.json",
        R"({"schema":"asbr.fault_report","version":1,"meta":{}})");
    expectCleanRejection(runTool("asbr-faults", "validate " + path),
                         "asbr-faults validate");
}

TEST(CliRobustness, SweepUnknownWorkloadToken) {
    expectCleanRejection(runTool("asbr-sweep", "--workloads=adpcm-enc,doom"),
                         "asbr-sweep");
}

TEST(CliRobustness, SweepUnknownPredictorToken) {
    expectCleanRejection(runTool("asbr-sweep", "--predictors=oracle2"),
                         "asbr-sweep");
}

TEST(CliRobustness, SweepUnknownStageToken) {
    expectCleanRejection(runTool("asbr-sweep", "--stages=wb_end"),
                         "asbr-sweep");
}

TEST(CliRobustness, SweepEmptyAxisIsRejected) {
    expectCleanRejection(runTool("asbr-sweep", "--bits="), "asbr-sweep");
}

TEST(CliRobustness, FaultsReplayIndexOutOfRange) {
    const std::string path = writeTemp("fr_empty.json", "{}");
    expectCleanRejection(runTool("asbr-faults", "replay " + path +
                                                    " --index=999999"),
                         "asbr-faults replay");
}

// ---- durable-execution flags (docs/robustness.md) -------------------------

TEST(CliRobustness, SweepResumeWithoutJournalIsRejected) {
    expectCleanRejection(runTool("asbr-sweep", "--resume"), "asbr-sweep");
}

TEST(CliRobustness, SweepEmptyJournalDirIsRejected) {
    expectCleanRejection(runTool("asbr-sweep", "--journal="), "asbr-sweep");
}

TEST(CliRobustness, SweepZeroMaxAttemptsIsRejected) {
    const RunResult r = runTool("asbr-sweep", "--max-attempts=0");
    expectCleanRejection(r, "asbr-sweep");
    EXPECT_NE(r.output.find("must be >= 1"), r.output.npos) << r.output;
}

TEST(CliRobustness, FaultsCampaignResumeWithoutJournalIsRejected) {
    expectCleanRejection(
        runTool("asbr-faults", "campaign --bench=adpcm-enc --resume"),
        "asbr-faults campaign");
}

TEST(CliRobustness, FaultsCampaignRejectsSampledSimulation) {
    const RunResult r = runTool(
        "asbr-faults", "campaign --bench=adpcm-enc --sample=1000:1000:8000");
    expectCleanRejection(r, "asbr-faults campaign");
    EXPECT_NE(r.output.find("--sample"), r.output.npos) << r.output;
}

TEST(CliRobustness, StatsRunRejectsJournalFlags) {
    expectCleanRejection(
        runTool("asbr-stats",
                "run --bench=adpcm-enc --journal=/tmp/nope --quick"),
        "asbr-stats run");
}

TEST(CliRobustness, BenchBinariesRejectJournalFlags) {
    expectCleanRejection(
        runTool("../bench/fig6_baseline", "--quick --resume"),
        "fig6_baseline");
}

TEST_P(CliRobustnessTest, HelpMentionsDurabilityFlags) {
    const RunResult r = runTool(GetParam(), "--help");
    EXPECT_EQ(r.exitCode, 0) << r.output;
    for (const char* flag :
         {"--journal", "--resume", "--job-timeout", "--max-attempts"})
        EXPECT_NE(r.output.find(flag), r.output.npos)
            << GetParam() << " --help does not mention " << flag;
}

}  // namespace

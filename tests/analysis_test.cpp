// Tests for the static fold-legality subsystem: CFG construction, the
// reaching-producer dataflow, per-branch verdicts (including the paper's
// threshold boundary), BIT-geometry conflict detection, BranchInfo
// consistency checking, the selection policy knob, and agreement between
// the static verdicts and dynamically observed foldability on all four
// paper workloads.
#include <gtest/gtest.h>

#include <algorithm>

#include "analysis/cfg.hpp"
#include "analysis/reaching.hpp"
#include "analysis/verify.hpp"
#include "asbr/extract.hpp"
#include "asm/assembler.hpp"
#include "mem/memory.hpp"
#include "profile/profiler.hpp"
#include "profile/selection.hpp"
#include "workloads/input_gen.hpp"
#include "workloads/workloads.hpp"

namespace asbr {
namespace {

using analysis::FoldLegality;
using analysis::kFarAway;

constexpr const char* kExit = R"(
        li   v0, 1
        li   a0, 0
        sys
)";

std::uint32_t pcAt(const Program& p, std::size_t index) {
    return p.textBase + static_cast<std::uint32_t>(index) * kInstrBytes;
}

/// PC of the n-th conditional branch in program order.
std::uint32_t nthBranchPc(const Program& p, std::size_t n) {
    for (std::size_t i = 0; i < p.code.size(); ++i)
        if (isCondBranch(p.code[i].op) && n-- == 0) return pcAt(p, i);
    ADD_FAILURE() << "program has too few branches";
    return 0;
}

ProgramProfile profileSrc(const Program& p) {
    Memory mem;
    mem.loadProgram(p);
    return profileProgram(p, mem);
}

analysis::ObservedMinDistances observedOf(const ProgramProfile& prof) {
    analysis::ObservedMinDistances observed;
    for (const auto& [pc, bp] : prof.branches)
        if (bp.execs > 0) observed.emplace(pc, bp.minDistance);
    return observed;
}

// ------------------------------------------------------------------ CFG ----

TEST(CfgTest, BlocksAndEdgesOfALoop) {
    const Program p = assemble(std::string(R"(
main:   li   s0, 10
loop:   addiu s0, s0, -1
        bnez s0, loop
)") + kExit);
    const analysis::Cfg cfg = analysis::buildCfg(p);

    // Blocks: [li], [addiu, bnez], [exit stub].
    ASSERT_EQ(cfg.blocks.size(), 3u);
    EXPECT_EQ(cfg.entryBlock, cfg.blockAt(p.entry));
    const std::size_t loopBlock = cfg.blockAt(p.symbol("loop"));
    // The loop block has two successors (itself + fall-through) and two
    // predecessors (entry + itself).
    EXPECT_EQ(cfg.blocks[loopBlock].succs.size(), 2u);
    EXPECT_EQ(cfg.blocks[loopBlock].preds.size(), 2u);
    const auto& succs = cfg.blocks[loopBlock].succs;
    EXPECT_NE(std::find(succs.begin(), succs.end(), loopBlock), succs.end());
}

TEST(CfgTest, CallAndReturnEdgesAreMatched) {
    const Program p = assemble(std::string(R"(
main:   jal  helper
        move s0, v0
        jal  helper
        move s1, v0
)") + kExit + R"(
helper: li   v0, 7
        jr   ra
)");
    const analysis::Cfg cfg = analysis::buildCfg(p);
    ASSERT_EQ(cfg.callSites.size(), 2u);
    EXPECT_EQ(cfg.functionEntries.size(), 2u);  // main + helper
    EXPECT_FALSE(cfg.hasUnresolvedIndirect);

    // The helper's return block edges to both return points and nowhere
    // else.
    const std::size_t retBlock = cfg.blockAt(p.symbol("helper"));
    ASSERT_EQ(cfg.blocks[retBlock].succs.size(), 2u);
    for (const std::size_t s : cfg.blocks[retBlock].succs) {
        const Instruction& first = p.code[cfg.blocks[s].first];
        EXPECT_EQ(first.op, Op::kAddu);  // `move` expands to addu
    }
}

TEST(CfgTest, UnresolvedIndirectJumpIsFlaggedAndOverApproximated) {
    const Program p = assemble(std::string(R"(
main:   la   t0, main
        jr   t0
)") + kExit);
    const analysis::Cfg cfg = analysis::buildCfg(p);
    EXPECT_TRUE(cfg.hasUnresolvedIndirect);
    const std::size_t jrBlock = cfg.blockAt(p.symbol("main"));
    EXPECT_TRUE(cfg.blocks[jrBlock].endsInUnresolvedIndirect);
    EXPECT_FALSE(cfg.blocks[jrBlock].succs.empty());
}

// ------------------------------------------------- reaching producers ----

TEST(ReachingTest, TransferAgesAndResets) {
    constexpr std::uint8_t t1 = reg::t0 + 1;
    analysis::RegDistances d;
    d.fill(kFarAway);
    d[reg::t0] = 3;
    analysis::applyTransfer({Op::kAddiu, t1, reg::t0, 0, 1}, d);
    EXPECT_EQ(d[reg::t0], 4);        // aged
    EXPECT_EQ(d[t1], 1);             // freshly produced
    EXPECT_EQ(d[reg::s0], kFarAway); // saturated stays saturated

    // Writes to r0 are architecturally discarded, not produced.
    analysis::applyTransfer({Op::kAddiu, reg::zero, reg::t0, 0, 1}, d);
    EXPECT_EQ(d[reg::zero], kFarAway);
}

TEST(ReachingTest, DistanceSaturatesAtFarAway) {
    analysis::RegDistances d;
    d.fill(1);
    d[reg::t0] = kFarAway - 1;  // 254: one step below saturation
    const Instruction nop{Op::kNop, 0, 0, 0, 0};
    analysis::applyTransfer(nop, d);
    EXPECT_EQ(d[reg::t0], kFarAway);  // 254 -> 255 by ordinary aging
    analysis::applyTransfer(nop, d);
    EXPECT_EQ(d[reg::t0], kFarAway);  // 255 stays 255: saturated, no wrap
    // 300 further transfers must never wrap any register back to small.
    for (int i = 0; i < 300; ++i) analysis::applyTransfer(nop, d);
    for (std::size_t r = 0; r < kNumRegs; ++r) EXPECT_EQ(d[r], kFarAway);
}

TEST(ReachingTest, SaturatedDistanceStillComparesAgainstThresholds) {
    // A producer exactly kFarAway-1 instructions before the branch is
    // indistinguishable from kFarAway after one more step — both must pass
    // every realistic threshold (2..4), i.e. saturation only ever errs
    // toward "far", which is the safe direction for fold legality.
    std::string src = "main:   li   t0, 1\n";
    for (int i = 0; i < 260; ++i) src += "        nop\n";
    src += "        bgtz t0, main\n";
    const Program p = assemble(src + kExit);
    const analysis::FoldLegalityVerifier verifier(p);
    for (std::uint32_t threshold : {2u, 3u, 4u}) {
        analysis::VerifyConfig config;
        config.threshold = threshold;
        const auto v = verifier.verdictFor(nthBranchPc(p, 0), config);
        EXPECT_EQ(v.staticMinDistance, kFarAway);
        EXPECT_EQ(v.verdict, FoldLegality::kProvablySafe);
    }
}

TEST(ReachingTest, WriteToR0IsDiscardedNotProduced) {
    // `addiu zero, ...` must not count as a producer: the branch on zero
    // still sees the machine-reset distance, exactly like the hardware BDT
    // (r0 writes are architecturally discarded, see exec.cpp).
    const Program p = assemble(std::string(R"(
main:   addiu zero, t0, 5
        beqz zero, main
)") + kExit);
    const analysis::FoldLegalityVerifier verifier(p);
    const auto v = verifier.verdictFor(nthBranchPc(p, 0), {});
    EXPECT_EQ(v.staticMinDistance, kFarAway);
    EXPECT_EQ(v.verdict, FoldLegality::kProvablySafe);
}

TEST(ReachingTest, EntryStateIsMachineReset) {
    const Program p = assemble(std::string(R"(
main:   bnez s5, main
)") + kExit);
    const analysis::FoldLegalityVerifier verifier(p);
    // s5 is never written: the producer is "infinitely long ago" on every
    // path, exactly like the reset-state BDT.
    const auto v = verifier.verdictFor(nthBranchPc(p, 0), {});
    EXPECT_EQ(v.staticMinDistance, kFarAway);
    EXPECT_EQ(v.verdict, FoldLegality::kProvablySafe);
}

// Fixture from the issue: producer exactly at threshold-1 vs threshold.
TEST(ReachingTest, ThresholdBoundaryIsExact) {
    const Program atThreshold = assemble(std::string(R"(
main:   li   t0, 10
loop:   addiu t0, t0, -1
        nop
        nop
        bgtz t0, loop
)") + kExit);
    const Program belowThreshold = assemble(std::string(R"(
main:   li   t0, 10
loop:   addiu t0, t0, -1
        nop
        bgtz t0, loop
)") + kExit);

    const analysis::FoldLegalityVerifier okVerifier(atThreshold);
    const auto ok = okVerifier.verdictFor(nthBranchPc(atThreshold, 0), {});
    EXPECT_EQ(ok.staticMinDistance, 3);
    EXPECT_EQ(ok.verdict, FoldLegality::kProvablySafe);

    const analysis::FoldLegalityVerifier badVerifier(belowThreshold);
    const auto bad = badVerifier.verdictFor(nthBranchPc(belowThreshold, 0), {});
    EXPECT_EQ(bad.staticMinDistance, 2);  // threshold - 1
    EXPECT_EQ(bad.verdict, FoldLegality::kIllegal);
    EXPECT_NE(bad.reason.find("threshold"), std::string::npos);
}

// Fixture from the issue: the producer sits *after* the branch in the loop
// body, so the short distance only exists around the back edge.
TEST(ReachingTest, BackEdgeProducerAfterBranch) {
    const Program p = assemble(std::string(R"(
main:   li   t0, 8
loop:   beqz t1, skip
        nop
skip:   addiu t0, t0, -1
        subu  t1, t0, t0
        bgtz t0, loop
)") + kExit);
    const analysis::FoldLegalityVerifier verifier(p);
    // Around the back edge: subu(1) bgtz(2) -> beqz reads distance 2.  The
    // first-entry path has t1 untouched (far), so the minimum is the back
    // edge's 2.
    const auto v = verifier.verdictFor(nthBranchPc(p, 0), {});
    EXPECT_EQ(v.staticMinDistance, 2);
    EXPECT_EQ(v.verdict, FoldLegality::kIllegal);
}

// Fixture from the issue: the condition register is redefined on only one
// of two joining paths; the verdict must track the shorter (redefining)
// path.
TEST(ReachingTest, JoinTakesTheMinimumOverPaths) {
    const Program p = assemble(std::string(R"(
main:   li   t0, 1
        li   t2, 9
        nop
        nop
        beqz t0, join
        addiu t2, zero, 3
        nop
join:   bgtz t2, main
)") + kExit);
    const analysis::FoldLegalityVerifier verifier(p);
    // Redefining path: addiu(1) nop(2) -> bgtz sees 2.  Skipping path: the
    // `li t2, 9` def is 5+ back.  Minimum must be 2.
    const auto v = verifier.verdictFor(nthBranchPc(p, 1), {});
    EXPECT_EQ(v.staticMinDistance, 2);
    EXPECT_EQ(v.verdict, FoldLegality::kIllegal);

    // With a profile that only ever took the far path, the verdict relaxes
    // to SafeOnProfiledPaths — fold-legal on everything observed, not
    // provable.
    analysis::ObservedMinDistances observed{{v.pc, 7}};
    const auto relaxed = verifier.verdictFor(v.pc, {}, &observed);
    EXPECT_EQ(relaxed.verdict, FoldLegality::kSafeOnProfiledPaths);

    // A profile that did observe a short path keeps it Illegal.
    analysis::ObservedMinDistances shortObs{{v.pc, 2}};
    const auto still = verifier.verdictFor(v.pc, {}, &shortObs);
    EXPECT_EQ(still.verdict, FoldLegality::kIllegal);
}

// Fixture from the issue: a branch whose target leaves the text segment.
TEST(VerifierTest, BranchTargetOutsideTextIsIllegal) {
    const Program p = assemble(std::string(R"(
main:   li   t0, 1
        nop
        nop
        nop
        bgtz t0, 20000
)") + kExit);
    const std::uint32_t branchPc = nthBranchPc(p, 0);
    EXPECT_FALSE(isExtractableBranch(p, branchPc));
    const analysis::FoldLegalityVerifier verifier(p);
    const auto v = verifier.verdictFor(branchPc, {});
    EXPECT_FALSE(v.extractable);
    EXPECT_EQ(v.verdict, FoldLegality::kIllegal);
    EXPECT_NE(v.reason.find("text segment"), std::string::npos);
}

TEST(VerifierTest, SourceLinesAreReported) {
    const Program p = assemble(std::string(R"(
main:   li   t0, 10
loop:   addiu t0, t0, -1
        bgtz t0, loop
)") + kExit);
    const analysis::FoldLegalityVerifier verifier(p);
    const auto v = verifier.verdictFor(nthBranchPc(p, 0), {});
    EXPECT_EQ(v.sourceLine, 4);  // 1-based line of the bgtz
}

TEST(VerifierTest, GeometryConflictsAreDetected) {
    const Program p = assemble(std::string(R"(
main:   li   t0, 4
l1:     addiu t0, t0, -1
        nop
        nop
        bgtz t0, l1
        li   t1, 4
l2:     addiu t1, t1, -1
        nop
        nop
        bgtz t1, l2
)") + kExit);
    const analysis::FoldLegalityVerifier verifier(p);
    const std::uint32_t b0 = nthBranchPc(p, 0);
    const std::uint32_t b1 = nthBranchPc(p, 1);

    // Fully associative with room: clean.
    const auto clean = verifier.verify(std::vector<std::uint32_t>{b0, b1}, {});
    EXPECT_TRUE(clean.conflicts.empty());
    EXPECT_TRUE(clean.ok());

    // Duplicate PC: conflict.
    const auto dup = verifier.verify(std::vector<std::uint32_t>{b0, b0}, {});
    EXPECT_EQ(dup.conflicts.size(), 1u);
    EXPECT_FALSE(dup.ok());

    // Direct-mapped with both branches indexing the same set (their word
    // addresses differ by 5, so force sets=1... use sets=5 to collide:
    // indices differ by 5 -> same set mod 5).
    analysis::VerifyConfig directMapped;
    directMapped.geometry = {5, 1};
    const auto collide =
        verifier.verify(std::vector<std::uint32_t>{b0, b1}, directMapped);
    ASSERT_EQ(collide.conflicts.size(), 1u);
    EXPECT_NE(collide.conflicts[0].find("collide"), std::string::npos);

    // Over capacity.
    analysis::VerifyConfig tiny;
    tiny.geometry = {1, 1};
    const auto over =
        verifier.verify(std::vector<std::uint32_t>{b0, b1}, tiny);
    EXPECT_FALSE(over.conflicts.empty());
}

TEST(VerifierTest, BankConsistencyAgainstExtraction) {
    const Program p = assemble(std::string(R"(
main:   li   t0, 10
loop:   addiu t0, t0, -1
        nop
        nop
        bgtz t0, loop
)") + kExit);
    const analysis::FoldLegalityVerifier verifier(p);
    std::vector<BranchInfo> bank =
        extractBranchInfos(p, allConditionalBranches(p));
    ASSERT_EQ(bank.size(), 1u);

    const auto good = verifier.verifyBank(bank, {});
    EXPECT_TRUE(good.inconsistencies.empty());
    EXPECT_TRUE(good.ok());

    // Tampered BTI (the instruction a fold would inject) must be caught.
    auto tampered = bank;
    tampered[0].bti = Instruction{Op::kAddiu, reg::t0 + 5, reg::t0 + 5, 0, 99};
    const auto bad = verifier.verifyBank(tampered, {});
    ASSERT_EQ(bad.inconsistencies.size(), 1u);
    EXPECT_NE(bad.inconsistencies[0].find("BTI"), std::string::npos);
    EXPECT_FALSE(bad.ok());

    // Tampered direction index.
    auto wrongReg = bank;
    wrongReg[0].conditionReg = reg::t7;
    const auto alsoBad = verifier.verifyBank(wrongReg, {});
    ASSERT_EQ(alsoBad.inconsistencies.size(), 1u);
    EXPECT_NE(alsoBad.inconsistencies[0].find("direction index"),
              std::string::npos);
}

// ------------------------------------------------- selection policy ----

TEST(SelectionTest, RequireStaticallySafeFiltersIllegalFolds) {
    // The bgtz-t2 branch sees distance 1 on even iterations (near redefine)
    // and ~5 on odd ones: foldableFraction(3) == 0.5 keeps it an ordinary
    // candidate, but the observed short path makes it statically Illegal.
    const Program p = assemble(std::string(R"(
main:   li   s0, 200
loop:   andi t1, s0, 1
        subu t2, zero, s0
        nop
        nop
        beqz t1, even
        j    check
even:   addiu t2, s0, -100
check:  bgtz t2, cont
cont:   addiu s0, s0, -1
        bgtz s0, loop
)") + kExit);
    const ProgramProfile prof = profileSrc(p);
    const std::uint32_t riskyPc = nthBranchPc(p, 1);  // bgtz t2
    ASSERT_EQ(prof.branches.at(riskyPc).minDistance, 1u);
    ASSERT_DOUBLE_EQ(prof.branches.at(riskyPc).foldableFraction(3), 0.5);

    SelectionConfig cfg;
    cfg.minExecFraction = 0.0;
    const auto loose = selectFoldableBranches(p, prof, {}, cfg);
    const auto hasRisky = [&](const std::vector<Candidate>& cs) {
        return std::any_of(cs.begin(), cs.end(), [&](const Candidate& c) {
            return c.pc == riskyPc;
        });
    };
    EXPECT_TRUE(hasRisky(loose));
    EXPECT_FALSE(loose.front().verdict.has_value());

    cfg.requireStaticallySafe = true;
    const auto strict = selectFoldableBranches(p, prof, {}, cfg);
    EXPECT_FALSE(hasRisky(strict));
    // Everything that survives carries a non-Illegal verdict.
    for (const Candidate& c : strict) {
        ASSERT_TRUE(c.verdict.has_value());
        EXPECT_NE(*c.verdict, FoldLegality::kIllegal);
    }
    // The provably-safe beqz-t1 branch (def 4 ahead) must survive.
    EXPECT_TRUE(std::any_of(strict.begin(), strict.end(),
                            [&](const Candidate& c) {
                                return c.pc == nthBranchPc(p, 0);
                            }));
}

// ------------------------------------------- workload agreement gate ----

// The static verdicts must agree with dynamically observed foldability on
// all four paper workloads: every branch the profile sees as 100% foldable
// at threshold 3 is ProvablySafe, and (soundness) every ProvablySafe
// branch was 100% foldable in the profile.
TEST(VerifierIntegrationTest, VerdictsAgreeWithDynamicFoldability) {
    constexpr std::uint32_t kThreshold = 3;
    const auto pcm = generateSpeech(1500, 11);
    for (const BenchId bench : kAllBenches) {
        SCOPED_TRACE(benchName(bench));
        const Program p = buildBench(bench);
        Memory mem;
        mem.loadProgram(p);
        if (benchIsEncoder(bench)) {
            loadPcmInput(mem, p, pcm);
        } else {
            const BenchId encoder = bench == BenchId::kAdpcmDecode
                                        ? BenchId::kAdpcmEncode
                                        : BenchId::kG721Encode;
            loadCodeInput(mem, p, runEncoderRef(encoder, pcm));
        }
        const ProgramProfile prof = profileProgram(p, mem);
        ASSERT_GT(prof.branches.size(), 4u);
        const auto observed = observedOf(prof);

        const analysis::FoldLegalityVerifier verifier(p);
        analysis::VerifyConfig config;
        config.threshold = kThreshold;

        for (const auto& [pc, bp] : prof.branches) {
            if (!isExtractableBranch(p, pc)) continue;
            const auto v = verifier.verdictFor(pc, config, &observed);
            const bool fullyFoldable = bp.minDistance >= kThreshold;
            if (fullyFoldable) {
                EXPECT_EQ(v.verdict, FoldLegality::kProvablySafe)
                    << "pc 0x" << std::hex << pc << std::dec << " line "
                    << p.sourceLine(pc) << ": dynamically 100% foldable (min "
                    << bp.minDistance << ") but static verdict is "
                    << analysis::foldLegalityName(v.verdict) << " ("
                    << v.reason << ")";
            } else {
                // Observed a short path: the static minimum can never
                // exceed an observed distance.
                EXPECT_LT(v.staticMinDistance, kThreshold)
                    << "pc 0x" << std::hex << pc;
                EXPECT_NE(v.verdict, FoldLegality::kProvablySafe);
            }
            if (v.verdict == FoldLegality::kProvablySafe)
                EXPECT_GE(bp.minDistance, kThreshold);
        }

        // The strict selection never emits an Illegal branch into the BIT,
        // and the resulting bank is loadable and conflict-free.
        SelectionConfig selCfg;
        selCfg.minExecFraction = 0.0;
        selCfg.requireStaticallySafe = true;
        const auto candidates = selectFoldableBranches(p, prof, {}, selCfg);
        ASSERT_FALSE(candidates.empty());
        const auto bank = extractBranchInfos(p, candidatePcs(candidates));
        const auto report = verifier.verifyBank(bank, config, &observed);
        EXPECT_TRUE(report.ok());
        for (const auto& b : report.branches)
            EXPECT_NE(b.verdict, FoldLegality::kIllegal);
    }
}

}  // namespace
}  // namespace asbr

// Tests for the observability layer: metric registry semantics, the JSON
// writer/parser, pipeline trace capture, and the SimReport schema
// validators.
#include <gtest/gtest.h>

#include <sstream>

#include "asbr/asbr_unit.hpp"
#include "asbr/extract.hpp"
#include "asm/assembler.hpp"
#include "bp/predictor.hpp"
#include "bp/static_predictors.hpp"
#include "mem/memory.hpp"
#include "report/report.hpp"
#include "sim/pipeline.hpp"
#include "util/json.hpp"
#include "util/metrics.hpp"
#include "util/trace.hpp"

namespace asbr {
namespace {

// ------------------------------------------------------------- registry ----

TEST(MetricRegistryTest, CounterIsMonotonic) {
    Counter c;
    c.add(3);
    c.add();
    EXPECT_EQ(c.value(), 4u);
    c.set(10);
    EXPECT_EQ(c.value(), 10u);
    EXPECT_THROW(c.set(9), EnsureError);
}

TEST(MetricRegistryTest, DuplicateRegistrationThrows) {
    MetricRegistry registry;
    Counter& a = registry.counter("pipeline.cycles", "total cycles");
    a.add(7);
    EXPECT_THROW(registry.counter("pipeline.cycles", "second claim"),
                 EnsureError);
    // The failed re-registration left the original metric untouched.
    EXPECT_EQ(a.value(), 7u);
    EXPECT_TRUE(registry.contains("pipeline.cycles"));
    EXPECT_FALSE(registry.contains("pipeline.nope"));
}

TEST(MetricRegistryTest, KindMismatchThrows) {
    MetricRegistry registry;
    registry.counter("x", "a counter");
    EXPECT_THROW(registry.sites("x", "now a site table"), EnsureError);
    EXPECT_THROW(registry.histogram("x", "now a histogram", {1.0}), EnsureError);
}

TEST(MetricRegistryTest, CatalogueIsSortedAndComplete) {
    MetricRegistry registry;
    registry.sites("b.sites", "per-site");
    registry.counter("a.counter", "help a");
    registry.histogram("c.hist", "help c", {0.5, 1.0});
    const auto entries = registry.catalogue();
    ASSERT_EQ(entries.size(), 3u);
    EXPECT_EQ(entries[0].name, "a.counter");
    EXPECT_EQ(entries[0].kind, MetricRegistry::Entry::Kind::kCounter);
    EXPECT_EQ(entries[1].name, "b.sites");
    EXPECT_EQ(entries[2].name, "c.hist");
    EXPECT_EQ(entries[2].help, "help c");
}

TEST(HistogramTest, BucketsAndOverflow) {
    Histogram h({1.0, 10.0});
    h.record(0.5);   // bucket 0 (<= 1)
    h.record(1.0);   // bucket 0 (inclusive edge)
    h.record(5.0);   // bucket 1
    h.record(100.0); // overflow bucket
    ASSERT_EQ(h.counts().size(), 3u);
    EXPECT_EQ(h.counts()[0], 2u);
    EXPECT_EQ(h.counts()[1], 1u);
    EXPECT_EQ(h.counts()[2], 1u);
    EXPECT_EQ(h.total(), 4u);
    EXPECT_DOUBLE_EQ(h.min(), 0.5);
    EXPECT_DOUBLE_EQ(h.max(), 100.0);
    EXPECT_THROW(Histogram({2.0, 1.0}), EnsureError);
}

TEST(SiteTableTest, AccumulatesPerPc) {
    SiteTable t;
    t.add(0x1000, 2);
    t.add(0x1000);
    t.add(0x2000);
    EXPECT_EQ(t.at(0x1000), 3u);
    EXPECT_EQ(t.at(0x2000), 1u);
    EXPECT_EQ(t.at(0x3000), 0u);
}

// ----------------------------------------------------------------- JSON ----

TEST(JsonTest, RoundTripsThroughParser) {
    JsonObject obj;
    obj.emplace_back("name", "asbr \"quoted\"\n");
    obj.emplace_back("count", std::uint64_t{18446744073709551615u});
    obj.emplace_back("ratio", 0.1);
    obj.emplace_back("neg", -3);
    obj.emplace_back("flag", true);
    obj.emplace_back("nothing", JsonValue());
    obj.emplace_back("list", JsonValue(JsonArray{1, 2, 3}));
    const JsonValue doc{std::move(obj)};

    for (const int indent : {0, 2}) {
        const JsonParseResult parsed = parseJson(doc.dump(indent));
        ASSERT_TRUE(parsed.ok()) << parsed.error;
        EXPECT_EQ(parsed.value->find("name")->asString(), "asbr \"quoted\"\n");
        EXPECT_EQ(parsed.value->find("count")->asUint(),
                  18446744073709551615u);
        EXPECT_DOUBLE_EQ(parsed.value->find("ratio")->asDouble(), 0.1);
        EXPECT_DOUBLE_EQ(parsed.value->find("neg")->asDouble(), -3.0);
        EXPECT_TRUE(parsed.value->find("flag")->asBool());
        EXPECT_TRUE(parsed.value->find("nothing")->isNull());
        EXPECT_EQ(parsed.value->find("list")->asArray().size(), 3u);
    }
}

TEST(JsonTest, ObjectsPreserveInsertionOrder) {
    JsonObject obj;
    obj.emplace_back("zebra", 1);
    obj.emplace_back("apple", 2);
    const std::string text = JsonValue{std::move(obj)}.dump();
    EXPECT_LT(text.find("zebra"), text.find("apple"));
}

TEST(JsonTest, ParseErrorsAreReported) {
    for (const char* bad : {"", "{", "[1,]", "{\"a\":}", "01", "tru",
                            "\"unterminated", "{\"a\":1} trailing"}) {
        const JsonParseResult parsed = parseJson(bad);
        EXPECT_FALSE(parsed.ok()) << "accepted: " << bad;
        EXPECT_FALSE(parsed.error.empty());
    }
}

// ------------------------------------------------- deterministic fixture ----

constexpr const char* kExit = R"(
        li   v0, 1
        li   a0, 0
        sys
)";

/// Countdown loop with `fillers` independent instructions between the
/// producer of the branch condition and the branch (same shape as
/// asbr_unit_test.cpp).
std::string countdownLoop(int fillers, int iterations = 100) {
    std::string src = "main:   li   s0, " + std::to_string(iterations) + "\n";
    src += "loop:   addiu s0, s0, -1\n";
    for (int i = 0; i < fillers; ++i) src += "        addiu t1, t1, 1\n";
    src += "        bnez s0, loop\n";
    src += kExit;
    return src;
}

std::uint32_t loopBranchPc(int fillers) {
    return kTextBase + (1 + 1 + static_cast<std::uint32_t>(fillers)) * 4;
}

PipelineConfig perfectCaches() {
    PipelineConfig cfg;
    cfg.icache.missPenalty = 0;
    cfg.dcache.missPenalty = 0;
    cfg.mulLatency = 1;
    cfg.divLatency = 1;
    cfg.redirectBubbles = 0;
    return cfg;
}

struct FixtureRun {
    PipelineResult result;
    AsbrUnit unit;

    explicit FixtureRun(int fillers, const PipelineConfig& cfg = perfectCaches())
        : unit(AsbrConfig{ValueStage::kMemEnd, 16, 1}) {
        const Program p = assemble(countdownLoop(fillers));
        Memory memory;
        memory.loadProgram(p);
        NotTakenPredictor predictor;
        unit.loadBank(0, extractBranchInfos(
                             p, std::vector<std::uint32_t>{
                                    loopBranchPc(fillers)}));
        PipelineSim sim(p, memory, predictor, cfg, &unit);
        result = sim.run();
    }
};

TEST(MetricPublishTest, FoldCountsLandInRegistry) {
    // Distance 4 at mem_end: every loop-back iteration folds.  The loop
    // branch executes 100 times; the last execution (s0 == 0) is still a
    // fold resolved not-taken.
    FixtureRun run(3);
    ASSERT_EQ(run.unit.stats().folds, 100u);
    ASSERT_EQ(run.unit.stats().foldsTaken, 99u);
    ASSERT_EQ(run.unit.stats().blockedInvalid, 0u);

    MetricRegistry registry;
    run.result.stats.publish(registry);
    run.unit.publishMetrics(registry);
    EXPECT_EQ(registry.findCounter("asbr.folds")->value(), 100u);
    EXPECT_EQ(registry.findCounter("asbr.folds_taken")->value(), 99u);
    EXPECT_EQ(registry.findCounter("asbr.blocked_invalid")->value(), 0u);
    EXPECT_EQ(registry.findCounter("pipeline.folded_branches")->value(), 100u);
    EXPECT_EQ(registry.findCounter("pipeline.cond_branches")->value(), 100u);
    EXPECT_EQ(registry.findCounter("pipeline.predicted_branches")->value(), 0u);
    EXPECT_EQ(registry.findCounter("pipeline.cycles")->value(),
              run.result.stats.cycles);
    // Per-site breakdown: the single loop branch owns all folds.
    const SiteTable* folded = registry.findSites("pipeline.site.folded");
    ASSERT_NE(folded, nullptr);
    EXPECT_EQ(folded->at(loopBranchPc(3)), 100u);
}

TEST(MetricPublishTest, ValidityStallCountsLandInRegistry) {
    // Distance 1: the producer is still in flight at every fetch of the
    // branch, so each of the 100 executions is blocked by the validity
    // counter and falls back to the predictor.
    FixtureRun run(0);
    ASSERT_EQ(run.unit.stats().folds, 0u);
    ASSERT_EQ(run.unit.stats().blockedInvalid, 100u);

    MetricRegistry registry;
    run.result.stats.publish(registry);
    run.unit.publishMetrics(registry);
    EXPECT_EQ(registry.findCounter("asbr.blocked_invalid")->value(), 100u);
    EXPECT_EQ(registry.findCounter("asbr.folds")->value(), 0u);
    EXPECT_EQ(registry.findCounter("pipeline.folded_branches")->value(), 0u);
    EXPECT_EQ(registry.findCounter("pipeline.predicted_branches")->value(),
              100u);
}

// ---------------------------------------------------------------- trace ----

#ifdef ASBR_TRACING

struct TracedRun {
    Tracer tracer;
    PipelineResult result;

    explicit TracedRun(const std::string& src,
                       const TracerConfig& tcfg = {}) : tracer(tcfg) {
        const Program p = assemble(src);
        Memory memory;
        memory.loadProgram(p);
        NotTakenPredictor predictor;
        PipelineConfig cfg = perfectCaches();
        cfg.tracer = &tracer;
        PipelineSim sim(p, memory, predictor, cfg);
        result = sim.run();
    }
};

TEST(TracerTest, EventsAreCycleOrderedAndComplete) {
    TracedRun run(countdownLoop(3, 10));
    const auto& events = run.tracer.events();
    ASSERT_FALSE(events.empty());
    std::uint64_t branches = 0;
    std::uint64_t stages = 0;
    for (std::size_t i = 0; i < events.size(); ++i) {
        if (i > 0) {
            EXPECT_GE(events[i].cycle, events[i - 1].cycle);
        }
        if (events[i].kind == TraceKind::kBranch) ++branches;
        if (events[i].kind == TraceKind::kStage) ++stages;
    }
    // The loop branch resolves once per iteration.
    EXPECT_EQ(branches, 10u);
    // Every committed instruction occupied MEM/WB for exactly one cycle, so
    // stage events at least cover the committed stream.
    EXPECT_GE(stages, run.result.stats.committed);
    EXPECT_FALSE(run.tracer.truncated());
}

TEST(TracerTest, WindowAndCapFilterEvents) {
    TracedRun full(countdownLoop(3, 20));
    TracedRun windowed(countdownLoop(3, 20), TracerConfig{.startCycle = 10,
                                                          .endCycle = 20});
    EXPECT_LT(windowed.tracer.events().size(), full.tracer.events().size());
    for (const TraceEvent& e : windowed.tracer.events()) {
        EXPECT_GE(e.cycle, 10u);
        EXPECT_LT(e.cycle, 20u);
    }
    TracedRun capped(countdownLoop(3, 20), TracerConfig{.maxEvents = 5});
    EXPECT_EQ(capped.tracer.events().size(), 5u);
    EXPECT_TRUE(capped.tracer.truncated());
}

TEST(TracerTest, ChromeExportIsValidJson) {
    TracedRun run(countdownLoop(3, 10));
    std::ostringstream out;
    run.tracer.writeChrome(out);
    const JsonParseResult parsed = parseJson(out.str());
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    const JsonValue* events = parsed.value->find("traceEvents");
    ASSERT_NE(events, nullptr);
    ASSERT_TRUE(events->isArray());
    // Metadata (thread names) + every recorded event.
    EXPECT_GT(events->asArray().size(), run.tracer.events().size());
    for (const JsonValue& e : events->asArray()) {
        const JsonValue* ph = e.find("ph");
        ASSERT_NE(ph, nullptr);
        const std::string& kind = ph->asString();
        EXPECT_TRUE(kind == "X" || kind == "i" || kind == "M") << kind;
    }
}

TEST(TracerTest, JsonlExportIsOneValidObjectPerLine) {
    TracedRun run(countdownLoop(3, 5));
    std::ostringstream out;
    run.tracer.writeJsonl(out);
    std::istringstream lines(out.str());
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line)) {
        const JsonParseResult parsed = parseJson(line);
        ASSERT_TRUE(parsed.ok()) << parsed.error << ": " << line;
        EXPECT_NE(parsed.value->find("cycle"), nullptr);
        EXPECT_NE(parsed.value->find("kind"), nullptr);
        ++count;
    }
    EXPECT_EQ(count, run.tracer.events().size());
}

TEST(TracerTest, TracingDoesNotChangeSimulatedTiming) {
    const std::string src = countdownLoop(2, 50);
    const Program p = assemble(src);

    auto cyclesWith = [&p](Tracer* tracer) {
        Memory memory;
        memory.loadProgram(p);
        NotTakenPredictor predictor;
        PipelineConfig cfg = perfectCaches();
        cfg.tracer = tracer;
        PipelineSim sim(p, memory, predictor, cfg);
        return sim.run().stats.cycles;
    };

    Tracer tracer;
    EXPECT_EQ(cyclesWith(nullptr), cyclesWith(&tracer));
    EXPECT_FALSE(tracer.events().empty());
}

#endif  // ASBR_TRACING

// ----------------------------------------------------------- sim report ----

SimReport fixtureReport() {
    FixtureRun run(3);
    NotTakenPredictor predictor;
    RunMeta meta;
    meta.benchmark = "countdown fixture";
    meta.predictor = predictor.name();
    meta.figure = "test";
    meta.asbr = true;
    meta.bitEntries = 16;
    meta.updateStage = valueStageName(ValueStage::kMemEnd);
    return makeSimReport(std::move(meta), run.result.stats, &predictor,
                         &run.unit);
}

TEST(SimReportTest, ExportValidatesAgainstOwnSchema) {
    const JsonValue doc = simReportJson(fixtureReport());
    const ReportValidation validation = validateSimReportJson(doc);
    EXPECT_TRUE(validation.ok()) << validation.errors.front();

    // And survives a serialize -> parse -> validate round trip.
    const JsonParseResult parsed = parseJson(doc.dump(2));
    ASSERT_TRUE(parsed.ok()) << parsed.error;
    EXPECT_TRUE(validateSimReportJson(*parsed.value).ok());
}

TEST(SimReportTest, MutatedDocumentsFailValidation) {
    auto mutate = [](auto&& f) {
        JsonValue doc = simReportJson(fixtureReport());
        f(doc);
        return validateSimReportJson(doc);
    };

    EXPECT_FALSE(mutate([](JsonValue& d) {
                     d.set("schema", "asbr.wrong_schema");
                 }).ok());
    EXPECT_FALSE(mutate([](JsonValue& d) {
                     d.set("version", std::uint64_t{99});
                 }).ok());
    EXPECT_FALSE(mutate([](JsonValue& d) { d.set("counters", 42); }).ok());
    EXPECT_FALSE(mutate([](JsonValue& d) {
                     // Break fold/predict accounting.
                     JsonValue* counters = nullptr;
                     for (auto& [key, value] : d.asObject())
                         if (key == "counters") counters = &value;
                     ASSERT_NE(counters, nullptr);
                     counters->set("pipeline.folded_branches",
                                   std::uint64_t{1});
                 }).ok());
    // Dropping a required counter fails too.
    EXPECT_FALSE(mutate([](JsonValue& d) {
                     JsonObject stripped;
                     for (auto& [key, value] : d.asObject()) {
                         if (key != "counters") {
                             stripped.emplace_back(key, std::move(value));
                             continue;
                         }
                         JsonObject kept;
                         for (auto& [name, v] : value.asObject())
                             if (name != "pipeline.cycles")
                                 kept.emplace_back(name, std::move(v));
                         stripped.emplace_back(key,
                                               JsonValue(std::move(kept)));
                     }
                     d = JsonValue(std::move(stripped));
                 }).ok());
}

TEST(SimReportTest, BenchReportWrapsAndValidates) {
    JsonObject options;
    options.emplace_back("seed", std::uint64_t{2001});
    const JsonValue doc = benchReportJson(
        "metrics_test", JsonValue(std::move(options)),
        {fixtureReport(), fixtureReport()});
    const ReportValidation validation = validateBenchReportJson(doc);
    EXPECT_TRUE(validation.ok()) << validation.errors.front();
    EXPECT_EQ(doc.find("runs")->asArray().size(), 2u);

    // An empty runs array is rejected.
    const JsonValue empty = benchReportJson("metrics_test", JsonValue(), {});
    EXPECT_FALSE(validateBenchReportJson(empty).ok());
}

}  // namespace
}  // namespace asbr

// Random structured program generator shared by the property and WCET test
// suites: nested counted loops with random arithmetic, loads/stores into a
// scratch array, and data-dependent if-blocks.  Programs always terminate
// and print a checksum.
//
// Every loop is a countdown over a distinct s-register with a constant
// trip count, so the interval analysis can bound each one — which is what
// makes the generator usable for WCET soundness properties, not just
// fold-equivalence ones.
#pragma once

#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace asbr {

class ProgramGen {
public:
    explicit ProgramGen(std::uint64_t seed) : rng_(seed) {}

    /// Emit a dispatch-table indirect call (jalr through a word loaded from
    /// a read-only table of handler addresses) ahead of the loop nest — the
    /// pattern the value-set analysis must resolve.
    ProgramGen& withDispatch(bool on = true) {
        dispatch_ = on;
        return *this;
    }

    /// Splice an irreducible region (a two-entry cycle no natural loop can
    /// describe) between the loop nest and the exit.  Still terminating.
    ProgramGen& withIrreducible(bool on = true) {
        irreducible_ = on;
        return *this;
    }

    std::string generate() {
        src_ = "main:   li   s7, 0\n";  // checksum
        int handlers = 0;
        if (dispatch_) {
            handlers = rng_.chance(0.5) ? 2 : 4;
            src_ += "        lw   t4, dsel\n";
            src_ += "        andi t4, t4, " + std::to_string(handlers - 1) +
                    "\n";
            src_ += "        sll  t4, t4, 2\n";
            src_ += "        la   t5, dtable\n";
            src_ += "        addu t5, t5, t4\n";
            src_ += "        lw   t5, 0(t5)\n";
            src_ += "        jalr t5\n";
        }
        emitLoop(0);
        if (irreducible_) {
            // Both cycle blocks are entered from outside the cycle (Lirr1
            // via the branch, Lirr0 by fall-through), so neither dominates
            // the other: a retreating edge with no natural-loop head.
            src_ += "        li   s6, 4\n";
            src_ += "        lw   t6, dsel\n";
            src_ += "        bnez t6, Lirr1\n";
            src_ += "Lirr0:  addiu s6, s6, -1\n";
            src_ += "Lirr1:  addiu s6, s6, -1\n";
            src_ += "        bgtz s6, Lirr0\n";
        }
        src_ += "        move a0, s7\n        li v0, 3\n        sys\n";
        src_ += "        li a0, 0\n        li v0, 1\n        sys\n";
        for (int h = 0; h < handlers; ++h) {
            src_ += "Hnd" + std::to_string(h) + ": addiu s7, s7, " +
                    std::to_string(h + 1) + "\n        jr   ra\n";
        }
        src_ += "        .data\nscratch: .space 64\n";
        if (dispatch_) {
            src_ += "dsel:   .word " + std::to_string(rng_.below(8)) + "\n";
            src_ += "dtable: .word Hnd0";
            for (int h = 1; h < handlers; ++h)
                src_ += ", Hnd" + std::to_string(h);
            src_ += "\n";
        } else if (irreducible_) {
            src_ += "dsel:   .word " + std::to_string(rng_.below(2)) + "\n";
        }
        return src_;
    }

private:
    void emitRandomOp(int depth) {
        const int t = static_cast<int>(rng_.below(5));
        const int rd = static_cast<int>(rng_.below(4));
        const int rs = static_cast<int>(rng_.below(4));
        switch (t) {
            case 0:
                src_ += "        addiu t" + std::to_string(rd) + ", t" +
                        std::to_string(rs) + ", " +
                        std::to_string(rng_.range(-20, 20)) + "\n";
                break;
            case 1:
                src_ += "        xor  t" + std::to_string(rd) + ", t" +
                        std::to_string(rd) + ", t" + std::to_string(rs) + "\n";
                break;
            case 2:
                src_ += "        sw   t" + std::to_string(rd) + ", scratch+" +
                        std::to_string(4 * rng_.below(16)) + "\n";
                break;
            case 3:
                src_ += "        lw   t" + std::to_string(rd) + ", scratch+" +
                        std::to_string(4 * rng_.below(16)) + "\n";
                break;
            default:
                src_ += "        sll  t" + std::to_string(rd) + ", t" +
                        std::to_string(rs) + ", " +
                        std::to_string(rng_.below(4)) + "\n";
                break;
        }
        (void)depth;
    }

    void emitIf(int depth) {
        const int id = labels_++;
        const char* reg = rng_.chance(0.5) ? "t0" : "t1";
        const char* cond = rng_.chance(0.5) ? "bltz" : "bnez";
        src_ += std::string("        ") + cond + " " + reg + ", Ltrue" +
                std::to_string(id) + "\n";
        for (int i = 0; i < 1 + static_cast<int>(rng_.below(3)); ++i)
            emitRandomOp(depth);
        src_ += "        j Lend" + std::to_string(id) + "\n";
        src_ += "Ltrue" + std::to_string(id) + ":\n";
        for (int i = 0; i < 1 + static_cast<int>(rng_.below(3)); ++i)
            emitRandomOp(depth);
        src_ += "Lend" + std::to_string(id) + ":\n";
    }

    void emitLoop(int depth) {
        const int id = labels_++;
        const int counterReg = depth;  // s0, s1, s2 nesting
        const int iterations = 3 + static_cast<int>(rng_.below(12));
        src_ += "        li   s" + std::to_string(counterReg) + ", " +
                std::to_string(iterations) + "\n";
        src_ += "Loop" + std::to_string(id) + ":\n";
        const int bodyLen = 2 + static_cast<int>(rng_.below(5));
        for (int i = 0; i < bodyLen; ++i) {
            if (depth < 2 && rng_.chance(0.25)) {
                emitLoop(depth + 1);
            } else if (rng_.chance(0.3)) {
                emitIf(depth);
            } else {
                emitRandomOp(depth);
            }
        }
        src_ += "        addu s7, s7, t0\n";
        src_ += "        addiu s" + std::to_string(counterReg) + ", s" +
                std::to_string(counterReg) + ", -1\n";
        // A couple of independent instructions so the back edge is sometimes
        // foldable.
        src_ += "        addiu t2, t2, 1\n        addiu t3, t3, 3\n";
        src_ += "        bnez s" + std::to_string(counterReg) + ", Loop" +
                std::to_string(id) + "\n";
    }

    Xorshift64 rng_;
    std::string src_;
    int labels_ = 0;
    bool dispatch_ = false;
    bool irreducible_ = false;
};

}  // namespace asbr

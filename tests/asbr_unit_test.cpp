// Tests for the ASBR core: BDT, BIT, static extraction and the AsbrUnit
// folding semantics inside the pipeline.
#include <gtest/gtest.h>

#include "asbr/asbr_unit.hpp"
#include "asbr/extract.hpp"
#include "asm/assembler.hpp"
#include "bp/predictor.hpp"
#include "bp/bimodal.hpp"
#include "bp/static_predictors.hpp"
#include "mem/memory.hpp"
#include "sim/functional.hpp"
#include "sim/pipeline.hpp"

namespace asbr {
namespace {

// ------------------------------------------------------------------ BDT ----

TEST(BdtTest, ResetStateIsValidZero) {
    BranchDirectionTable bdt;
    for (std::uint8_t r = 0; r < kNumRegs; ++r) {
        EXPECT_TRUE(bdt.isValid(r));
        EXPECT_TRUE(bdt.direction(r, Cond::kEqz));
        EXPECT_FALSE(bdt.direction(r, Cond::kNez));
        EXPECT_TRUE(bdt.direction(r, Cond::kLez));
        EXPECT_TRUE(bdt.direction(r, Cond::kGez));
    }
}

TEST(BdtTest, PendingProducerInvalidatesUntilUpdate) {
    BranchDirectionTable bdt;
    bdt.producerDecoded(5);
    EXPECT_FALSE(bdt.isValid(5));
    EXPECT_TRUE(bdt.isValid(6));
    bdt.update(5, -3);
    EXPECT_TRUE(bdt.isValid(5));
    EXPECT_TRUE(bdt.direction(5, Cond::kLtz));
    EXPECT_TRUE(bdt.direction(5, Cond::kNez));
    EXPECT_FALSE(bdt.direction(5, Cond::kGez));
}

TEST(BdtTest, NestedProducersRequireAllUpdates) {
    BranchDirectionTable bdt;
    bdt.producerDecoded(7);
    bdt.producerDecoded(7);
    EXPECT_EQ(bdt.pendingCount(7), 2u);
    bdt.update(7, 1);
    EXPECT_FALSE(bdt.isValid(7));
    bdt.update(7, 2);
    EXPECT_TRUE(bdt.isValid(7));
    EXPECT_TRUE(bdt.direction(7, Cond::kGtz));
}

TEST(BdtTest, UpdateWithoutPendingProducerThrows) {
    BranchDirectionTable bdt;
    EXPECT_THROW(bdt.update(3, 1), EnsureError);
}

TEST(BdtTest, DirectionBitsMatchEvalCondForAllValues) {
    BranchDirectionTable bdt;
    for (std::int32_t v : {-2147483647, -100, -1, 0, 1, 100, 2147483647}) {
        bdt.producerDecoded(9);
        bdt.update(9, v);
        for (int c = 0; c < kNumConds; ++c) {
            const auto cond = static_cast<Cond>(c);
            EXPECT_EQ(bdt.direction(9, cond), evalCond(cond, v))
                << condName(cond) << " of " << v;
        }
    }
}

// ------------------------------------------------------------------ BIT ----

TEST(BitTest, LookupActiveBankOnly) {
    BranchIdentificationTable bit(4, 2);
    bit.loadBank(0, {{0x1000, 5, Cond::kNez, 0x2000, {}, {}}});
    bit.loadBank(1, {{0x3000, 6, Cond::kEqz, 0x4000, {}, {}}});
    EXPECT_NE(bit.lookup(0x1000), nullptr);
    EXPECT_EQ(bit.lookup(0x3000), nullptr);
    bit.selectBank(1);
    EXPECT_EQ(bit.lookup(0x1000), nullptr);
    EXPECT_NE(bit.lookup(0x3000), nullptr);
}

TEST(BitTest, CapacityEnforced) {
    BranchIdentificationTable bit(2);
    std::vector<BranchInfo> three(3);
    three[0].pc = 1 * 4;
    three[1].pc = 2 * 4;
    three[2].pc = 3 * 4;
    EXPECT_THROW(bit.loadBank(0, three), EnsureError);
}

TEST(BitTest, DuplicatePcRejected) {
    BranchIdentificationTable bit(4);
    EXPECT_THROW(bit.loadBank(0, {{0x1000, 5, Cond::kNez, 0, {}, {}},
                                  {0x1000, 6, Cond::kEqz, 0, {}, {}}}),
                 EnsureError);
}

TEST(BitTest, StorageBitsScaleWithCapacityAndBanks) {
    const BranchIdentificationTable small(8, 1);
    const BranchIdentificationTable big(16, 1);
    const BranchIdentificationTable banked(16, 4);
    EXPECT_LT(small.storageBits(), big.storageBits());
    EXPECT_EQ(banked.storageBits(), 4 * big.storageBits());
}

// -------------------------------------------------------------- extract ----

TEST(ExtractTest, FieldsOfASimpleBranch) {
    const Program p = assemble(R"(
main:   addiu s0, s0, -1
        bnez  s0, target
        addiu t1, t1, 1     # fall-through instruction
        nop
target: addiu t2, t2, 2     # target instruction
        nop
    )");
    const std::uint32_t branchPc = kTextBase + 4;
    ASSERT_TRUE(isExtractableBranch(p, branchPc));
    const BranchInfo info = extractBranchInfo(p, branchPc);
    EXPECT_EQ(info.pc, branchPc);
    EXPECT_EQ(info.conditionReg, reg::s0);
    EXPECT_EQ(info.cond, Cond::kNez);
    EXPECT_EQ(info.bta, p.symbol("target"));
    EXPECT_EQ(info.bti, (Instruction{Op::kAddiu, 10, 10, 0, 2}));
    EXPECT_EQ(info.bfi, (Instruction{Op::kAddiu, 9, 9, 0, 1}));
}

TEST(ExtractTest, NonBranchAndOutOfTextRejected) {
    const Program p = assemble("main: nop\n bnez t0, main\n");
    EXPECT_FALSE(isExtractableBranch(p, kTextBase));          // nop
    EXPECT_FALSE(isExtractableBranch(p, kTextBase + 4));      // no fall-through
    EXPECT_FALSE(isExtractableBranch(p, kTextBase + 100));    // outside text
    EXPECT_THROW((void)extractBranchInfo(p, kTextBase), EnsureError);
}

TEST(ExtractTest, DuplicatePcInSpanRejected) {
    const Program p = assemble(R"(
main:   addiu s0, s0, -1
        bnez  s0, main
        nop
    )");
    const std::uint32_t branchPc = kTextBase + 4;
    const std::vector<std::uint32_t> dup{branchPc, branchPc};
    EXPECT_THROW((void)extractBranchInfos(p, dup), EnsureError);
    // A duplicate-free span still extracts.
    const std::vector<std::uint32_t> ok{branchPc};
    EXPECT_EQ(extractBranchInfos(p, ok).size(), 1u);
}

TEST(ExtractTest, AllConditionalBranchesEnumerates) {
    const Program p = assemble(R"(
main:   beqz t0, l
        nop
l:      bnez t1, main
        nop
    )");
    const auto pcs = allConditionalBranches(p);
    EXPECT_EQ(pcs, (std::vector<std::uint32_t>{kTextBase, kTextBase + 8}));
}

// ------------------------------------------------------- AsbrUnit + pipe ----

struct RunOutcome {
    PipelineResult base;
    PipelineResult withAsbr;
    AsbrStats asbr;
};

PipelineConfig perfectCaches() {
    PipelineConfig cfg;
    cfg.icache.missPenalty = 0;
    cfg.dcache.missPenalty = 0;
    cfg.mulLatency = 1;
    cfg.divLatency = 1;
    cfg.redirectBubbles = 0;  // pure structural 2-cycle mispredict penalty
    return cfg;
}

/// Run `src` twice — baseline vs ASBR folding `branchLabels` — with the given
/// update stage, and verify functional equivalence along the way.
RunOutcome runWithAsbr(const std::string& src,
                       const std::vector<std::uint32_t>& branchPcs,
                       ValueStage stage,
                       const PipelineConfig& cfg = perfectCaches()) {
    const Program p = assemble(src);

    Memory m1;
    m1.loadProgram(p);
    NotTakenPredictor bp1;
    PipelineSim base(p, m1, bp1, cfg);

    Memory m2;
    m2.loadProgram(p);
    NotTakenPredictor bp2;
    AsbrConfig acfg;
    acfg.updateStage = stage;
    AsbrUnit unit(acfg);
    unit.loadBank(0, extractBranchInfos(p, branchPcs));
    PipelineSim withAsbr(p, m2, bp2, cfg, &unit);

    RunOutcome out{base.run(), withAsbr.run(), {}};
    out.asbr = unit.stats();
    // Folding must never change architectural results.
    EXPECT_EQ(out.base.output, out.withAsbr.output);
    EXPECT_EQ(out.base.exitCode, out.withAsbr.exitCode);
    for (int r = 0; r < kNumRegs; ++r)
        EXPECT_EQ(out.base.finalState.regs[r], out.withAsbr.finalState.regs[r])
            << "reg " << r;
    EXPECT_EQ(out.base.stats.committed,
              out.withAsbr.stats.committed + out.withAsbr.stats.foldedBranches);
    return out;
}

constexpr const char* kExit = R"(
        li   v0, 1
        li   a0, 0
        sys
)";

/// Countdown loop with `fillers` independent instructions between the
/// producer of the branch condition and the branch.
std::string countdownLoop(int fillers, int iterations = 100) {
    std::string src = "main:   li   s0, " + std::to_string(iterations) + "\n";
    src += "loop:   addiu s0, s0, -1\n";
    for (int i = 0; i < fillers; ++i) src += "        addiu t1, t1, 1\n";
    src += "        bnez s0, loop\n";
    src += kExit;
    return src;
}

std::uint32_t loopBranchPc(int fillers) {
    // main(1 instr li) + loop body: producer + fillers, branch next.
    return kTextBase + (1 + 1 + static_cast<std::uint32_t>(fillers)) * 4;
}

TEST(AsbrPipelineTest, Distance1NeverFolds) {
    for (ValueStage stage :
         {ValueStage::kExEnd, ValueStage::kMemEnd, ValueStage::kCommit}) {
        const RunOutcome o =
            runWithAsbr(countdownLoop(0), {loopBranchPc(0)}, stage);
        EXPECT_EQ(o.asbr.folds, 0u);
        EXPECT_GE(o.asbr.blockedInvalid, 99u);
    }
}

TEST(AsbrPipelineTest, Distance2FoldsOnlyAtExEnd) {
    const std::string src = countdownLoop(1);
    const std::vector<std::uint32_t> pcs = {loopBranchPc(1)};
    EXPECT_GE(runWithAsbr(src, pcs, ValueStage::kExEnd).asbr.folds, 99u);
    EXPECT_EQ(runWithAsbr(src, pcs, ValueStage::kMemEnd).asbr.folds, 0u);
    EXPECT_EQ(runWithAsbr(src, pcs, ValueStage::kCommit).asbr.folds, 0u);
}

TEST(AsbrPipelineTest, Distance3FoldsAtMemEnd) {
    const std::string src = countdownLoop(2);
    const std::vector<std::uint32_t> pcs = {loopBranchPc(2)};
    EXPECT_GE(runWithAsbr(src, pcs, ValueStage::kExEnd).asbr.folds, 99u);
    EXPECT_GE(runWithAsbr(src, pcs, ValueStage::kMemEnd).asbr.folds, 99u);
    EXPECT_EQ(runWithAsbr(src, pcs, ValueStage::kCommit).asbr.folds, 0u);
}

TEST(AsbrPipelineTest, Distance4FoldsEverywhere) {
    const std::string src = countdownLoop(3);
    const std::vector<std::uint32_t> pcs = {loopBranchPc(3)};
    for (ValueStage stage :
         {ValueStage::kExEnd, ValueStage::kMemEnd, ValueStage::kCommit}) {
        EXPECT_GE(runWithAsbr(src, pcs, stage).asbr.folds, 99u);
    }
}

TEST(AsbrPipelineTest, FoldingImprovesCyclesOnHardBranch) {
    // The loop branch is taken 99/100 times; against a not-taken predictor
    // each taken execution costs 2 flush cycles.  Folding removes both the
    // flush and the branch's pipeline occupancy.
    const RunOutcome o =
        runWithAsbr(countdownLoop(3), {loopBranchPc(3)}, ValueStage::kMemEnd);
    EXPECT_LT(o.withAsbr.stats.cycles, o.base.stats.cycles);
    EXPECT_GE(o.base.stats.cycles - o.withAsbr.stats.cycles, 2u * 90u);
    EXPECT_EQ(o.withAsbr.stats.mispredicts, 0u);
    EXPECT_GE(o.asbr.foldsTaken, 99u);
}

TEST(AsbrPipelineTest, FallThroughFoldUsesBfi) {
    // Branch never taken: every fold injects the BFI.
    const std::string src = std::string(R"(
main:   li   s0, 0
        li   t9, 50
loop:   addu t0, s0, zero   # producer of t0 (always 0)
        addiu t1, t1, 1
        addiu t2, t2, 1
        bnez t0, never      # never taken -> BFI fold
        addiu t3, t3, 1     # BFI
        addiu t9, t9, -1
        bnez t9, loop
)") + kExit + "never: li a0, 9\n li v0, 1\n sys\n";
    const std::uint32_t branchPc = kTextBase + (2 + 3) * 4;
    const RunOutcome o = runWithAsbr(src, {branchPc}, ValueStage::kMemEnd);
    EXPECT_GE(o.asbr.folds, 49u);
    EXPECT_EQ(o.asbr.foldsTaken, 0u);
    EXPECT_EQ(o.withAsbr.finalState.regs[11], 50);  // t3 incremented each iter
}

TEST(AsbrPipelineTest, DataDependentDirectionFoldsCorrectly) {
    // Branch direction alternates with the loop counter's low bit — a
    // pattern the BDT resolves exactly every iteration.
    const std::string src = std::string(R"(
main:   li   s0, 40
loop:   andi t0, s0, 1
        addiu t1, t1, 1
        addiu t2, t2, 1
        beqz t0, even
        addiu s1, s1, 1     # odd path
even:   addiu s0, s0, -1
        addiu t3, t3, 1
        addiu t4, t4, 1
        bnez s0, loop
)") + kExit;
    const std::uint32_t alternating = kTextBase + 4 * 4;  // beqz t0
    const std::uint32_t loopBranch = kTextBase + 9 * 4;   // bnez s0
    const RunOutcome o =
        runWithAsbr(src, {alternating, loopBranch}, ValueStage::kMemEnd);
    EXPECT_GE(o.asbr.folds, 70u);  // both branches fold most iterations
    EXPECT_EQ(o.withAsbr.finalState.regs[17], 20);  // s1: 20 odd iterations
}

TEST(AsbrPipelineTest, FoldedTakenBranchExecutesBtiAtTargetPc) {
    // The BTI is a `j` — a PC-bearing instruction.  Folding must execute it
    // with the target's own PC semantics.
    const std::string src = std::string(R"(
main:   li   s0, 10
loop:   addiu s0, s0, -1
        addiu t1, t1, 1
        addiu t2, t2, 1
        beqz s0, out
        j    loop
out:    addiu t5, t5, 7
)") + kExit;
    const std::uint32_t branchPc = kTextBase + 4 * 4;
    const RunOutcome o = runWithAsbr(src, {branchPc}, ValueStage::kMemEnd);
    EXPECT_EQ(o.withAsbr.finalState.regs[13], 7);  // t5 set once
    EXPECT_GE(o.asbr.folds, 9u);
}

TEST(AsbrPipelineTest, BankSwitchingCoversTwoLoops) {
    // The BIT bank-select control register lives at 0xFFFF0000; software
    // switches banks with an ordinary store just before entering each loop.
    const std::string real = std::string(R"(
main:   lui  t8, 0xFFFF
        li   t7, 0
        sw   t7, 0(t8)      # select bank 0
        li   s0, 30
l1:     addiu s0, s0, -1
        addiu t1, t1, 1
        addiu t2, t2, 1
        bnez s0, l1
        li   t7, 1
        sw   t7, 0(t8)      # select bank 1
        li   s1, 30
l2:     addiu s1, s1, -1
        addiu t3, t3, 1
        addiu t4, t4, 1
        bnez s1, l2
)") + kExit;
    const Program p = assemble(real);
    const std::uint32_t b1 = p.symbol("l1") + 3 * 4;
    const std::uint32_t b2 = p.symbol("l2") + 3 * 4;

    Memory mem;
    mem.loadProgram(p);
    NotTakenPredictor bp;
    AsbrConfig acfg;
    acfg.updateStage = ValueStage::kMemEnd;
    acfg.bitCapacity = 1;  // forces the two branches into separate banks
    acfg.bitBanks = 2;
    AsbrUnit unit(acfg);
    unit.loadBank(0, extractBranchInfos(p, std::vector<std::uint32_t>{b1}));
    unit.loadBank(1, extractBranchInfos(p, std::vector<std::uint32_t>{b2}));
    PipelineSim sim(p, mem, bp, perfectCaches(), &unit);
    const PipelineResult r = sim.run();
    EXPECT_EQ(r.exitCode, 0);
    EXPECT_GE(unit.stats().folds, 2u * 29u - 4u);
    EXPECT_EQ(unit.stats().bankSwitches, 2u);
}

TEST(AsbrPipelineTest, FunctionalSimAgreesWithFoldedPipeline) {
    const std::string src = countdownLoop(3, 500);
    const Program p = assemble(src);
    Memory m1;
    m1.loadProgram(p);
    FunctionalSim fsim(p, m1);
    const FunctionalResult fr = fsim.run();

    Memory m2;
    m2.loadProgram(p);
    NotTakenPredictor bp;
    AsbrUnit unit({ValueStage::kMemEnd, 16, 1});
    unit.loadBank(0, extractBranchInfos(
                         p, std::vector<std::uint32_t>{loopBranchPc(3)}));
    PipelineSim psim(p, m2, bp, perfectCaches(), &unit);
    const PipelineResult pr = psim.run();
    EXPECT_EQ(pr.output, fr.output);
    EXPECT_EQ(pr.stats.committed + pr.stats.foldedBranches, fr.instructions);
}

TEST(AsbrUnitTest, MismatchedBitEntryThrows) {
    // A BIT entry claiming a PC that holds a non-branch must be rejected at
    // fetch (corrupted customization data).
    const Program p = assemble("main: nop\n nop\n li v0, 1\n li a0, 0\n sys\n");
    Memory mem;
    mem.loadProgram(p);
    NotTakenPredictor bp;
    AsbrUnit unit;
    BranchInfo bogus;
    bogus.pc = kTextBase;  // points at the nop
    bogus.conditionReg = 5;
    unit.loadBank(0, {bogus});
    PipelineSim sim(p, mem, bp, perfectCaches(), &unit);
    EXPECT_THROW(sim.run(), EnsureError);
}

TEST(AsbrUnitTest, StorageCostBelowGeneralPurposePredictor) {
    // Paper claim: comparable accuracy at significantly lower cost.  A
    // 16-entry BIT + BDT must be far smaller than the 2048-entry bimodal.
    AsbrUnit unit;
    EXPECT_LT(unit.storageBits() + makeBimodal(512, 512)->storageBits(),
              makeBimodal2048()->storageBits());
}

}  // namespace
}  // namespace asbr

// End-to-end tests for the mcc compiler: compile, run on the functional ISS,
// check outputs.
#include <gtest/gtest.h>

#include "cc/compile.hpp"
#include "mem/memory.hpp"
#include "sim/functional.hpp"

namespace asbr::cc {
namespace {

/// Compile and run; returns the program's printed output.
std::string runC(const std::string& source, std::int32_t* exitCode = nullptr,
                 bool schedule = true) {
    CompileOptions opts;
    opts.scheduleConditions = schedule;
    const Compiled compiled = compile(source, opts);
    Memory mem;
    mem.loadProgram(compiled.program);
    FunctionalSim sim(compiled.program, mem);
    const FunctionalResult r = sim.run(50'000'000);
    EXPECT_TRUE(r.exited);
    if (exitCode) *exitCode = r.exitCode;
    return r.output;
}

std::int32_t exitOf(const std::string& source) {
    std::int32_t code = 0;
    runC(source, &code);
    return code;
}

TEST(CcTest, MainReturnBecomesExitCode) {
    EXPECT_EQ(exitOf("int main() { return 42; }"), 42);
    EXPECT_EQ(exitOf("int main() { return -7; }"), -7);
}

TEST(CcTest, PutIntAndPutChar) {
    EXPECT_EQ(runC(R"(
int main() {
    __putint(123);
    __putchar(44);
    __putint(-5);
    return 0;
}
)"), "123,-5");
}

TEST(CcTest, ArithmeticAndPrecedence) {
    EXPECT_EQ(exitOf("int main() { return 2 + 3 * 4; }"), 14);
    EXPECT_EQ(exitOf("int main() { return (2 + 3) * 4; }"), 20);
    EXPECT_EQ(exitOf("int main() { return 7 / 2; }"), 3);
    EXPECT_EQ(exitOf("int main() { return -7 / 2; }"), -3);
    EXPECT_EQ(exitOf("int main() { return 7 % 3; }"), 1);
    EXPECT_EQ(exitOf("int main() { return -7 % 3; }"), -1);
    EXPECT_EQ(exitOf("int main() { return 1 << 10; }"), 1024);
    EXPECT_EQ(exitOf("int main() { return -16 >> 2; }"), -4);
    EXPECT_EQ(exitOf("int main() { return 0xF0 | 0x0F; }"), 255);
    EXPECT_EQ(exitOf("int main() { return 0xFF & 0x3C; }"), 0x3C);
    EXPECT_EQ(exitOf("int main() { return 0xFF ^ 0x0F; }"), 0xF0);
    EXPECT_EQ(exitOf("int main() { return ~0; }"), -1);
    EXPECT_EQ(exitOf("int main() { return !5; }"), 0);
    EXPECT_EQ(exitOf("int main() { return !0; }"), 1);
    EXPECT_EQ(exitOf("int main() { return -(3 - 8); }"), 5);
}

TEST(CcTest, Comparisons) {
    EXPECT_EQ(exitOf("int main() { return 3 < 4; }"), 1);
    EXPECT_EQ(exitOf("int main() { return 4 < 3; }"), 0);
    EXPECT_EQ(exitOf("int main() { return 3 <= 3; }"), 1);
    EXPECT_EQ(exitOf("int main() { return 4 > 3; }"), 1);
    EXPECT_EQ(exitOf("int main() { return 3 >= 4; }"), 0);
    EXPECT_EQ(exitOf("int main() { return 3 == 3; }"), 1);
    EXPECT_EQ(exitOf("int main() { return 3 != 3; }"), 0);
    EXPECT_EQ(exitOf("int main() { return -1 < 1; }"), 1);  // signed compare
    EXPECT_EQ(exitOf("int main() { int x = 5; return x == 5; }"), 1);
    EXPECT_EQ(exitOf("int main() { int x = 70000; return x == 70000; }"), 1);
}

TEST(CcTest, LogicalOperatorsShortCircuit) {
    EXPECT_EQ(exitOf("int main() { return 1 && 2; }"), 1);
    EXPECT_EQ(exitOf("int main() { return 1 && 0; }"), 0);
    EXPECT_EQ(exitOf("int main() { return 0 || 3; }"), 1);
    EXPECT_EQ(exitOf("int main() { return 0 || 0; }"), 0);
    // Short-circuit: the second operand must not run.
    EXPECT_EQ(runC(R"(
int hit(int v) { __putint(v); return v; }
int main() {
    0 && hit(1);
    1 || hit(2);
    1 && hit(3);
    0 || hit(4);
    return 0;
}
)"), "34");
}

TEST(CcTest, TernaryOperator) {
    EXPECT_EQ(exitOf("int main() { return 1 ? 10 : 20; }"), 10);
    EXPECT_EQ(exitOf("int main() { return 0 ? 10 : 20; }"), 20);
    EXPECT_EQ(exitOf(
        "int main() { int x = 7; return x > 5 ? x * 2 : x - 1; }"), 14);
}

TEST(CcTest, LocalsAndAssignment) {
    EXPECT_EQ(exitOf(R"(
int main() {
    int a = 3, b;
    b = a + 4;
    a = b = b + 1;
    return a * 10 + b;
}
)"), 88);
}

TEST(CcTest, CompoundAssignment) {
    EXPECT_EQ(exitOf(R"(
int main() {
    int x = 10;
    x += 5; x -= 3; x *= 2; x /= 3; x %= 5;
    x <<= 3; x |= 1; x ^= 2; x &= 0xFE; x >>= 1;
    return x;
}
)"), ((((((((10 + 5 - 3) * 2 / 3) % 5) << 3) | 1) ^ 2) & 0xFE) >> 1));
}

TEST(CcTest, IncrementDecrement) {
    EXPECT_EQ(exitOf(R"(
int main() {
    int x = 5;
    int a = x++;   // a=5 x=6
    int b = ++x;   // b=7 x=7
    int c = x--;   // c=7 x=6
    int d = --x;   // d=5 x=5
    return a * 1000 + b * 100 + c * 10 + d;
}
)"), 5775);
}

TEST(CcTest, GlobalScalarsAndInitializers) {
    EXPECT_EQ(exitOf(R"(
int g;
int h = 12;
short s = -3;
char c = 200;   // truncates to -56 signed
int main() {
    g = h + s;          // 9
    return g * 10 + (c == -56);
}
)"), 91);
}

TEST(CcTest, GlobalArrays) {
    EXPECT_EQ(exitOf(R"(
int a[5] = {10, 20, 30};
short t[4] = {-1, 32767, -32768, 5};
char bytes[3];
int main() {
    int i;
    int sum = 0;
    a[3] = 40;
    a[4] = a[0] + 1;
    for (i = 0; i < 5; i++) sum += a[i];
    bytes[0] = 255;      // -1 as signed char
    return sum + t[0] + bytes[0];   // 111 - 1 - 1
}
)"), 10 + 20 + 30 + 40 + 11 - 1 - 1);
}

TEST(CcTest, ShortArraySignedness) {
    EXPECT_EQ(exitOf(R"(
short t[2];
int main() {
    t[0] = 40000;        // wraps to -25536 in a signed short
    return t[0] == -25536;
}
)"), 1);
}

TEST(CcTest, ArrayElementCompoundAndIncrement) {
    EXPECT_EQ(exitOf(R"(
int a[3] = {1, 2, 3};
int main() {
    int i = 1;
    a[0] += 9;       // 10
    a[i] *= 5;       // 10
    a[i + 1]++;      // 4
    ++a[2];          // 5
    int old = a[2]--;  // old=5, a[2]=4
    return a[0] + a[1] + a[2] + old;
}
)"), 10 + 10 + 4 + 5);
}

TEST(CcTest, WhileAndDoWhile) {
    EXPECT_EQ(exitOf(R"(
int main() {
    int n = 0, i = 0;
    while (i < 10) { n += i; i++; }
    do { n++; } while (0);
    return n;
}
)"), 46);
}

TEST(CcTest, ForWithBreakContinue) {
    EXPECT_EQ(exitOf(R"(
int main() {
    int sum = 0;
    for (int i = 0; i < 100; i++) {
        if (i % 2) continue;
        if (i >= 10) break;
        sum += i;        // 0+2+4+6+8
    }
    return sum;
}
)"), 20);
}

TEST(CcTest, NestedLoops) {
    EXPECT_EQ(exitOf(R"(
int main() {
    int total = 0;
    for (int i = 0; i < 5; i++)
        for (int j = 0; j <= i; j++)
            total += j;
    return total;
}
)"), 0 + 1 + 3 + 6 + 10);
}

TEST(CcTest, FunctionsAndRecursion) {
    EXPECT_EQ(exitOf(R"(
int fib(int n) {
    if (n < 2) return n;
    return fib(n - 1) + fib(n - 2);
}
int main() { return fib(12); }
)"), 144);
}

TEST(CcTest, FourArgumentsAndNestedCalls) {
    EXPECT_EQ(exitOf(R"(
int weigh(int a, int b, int c, int d) { return a + 10*b + 100*c + 1000*d; }
int inc(int x) { return x + 1; }
int main() { return weigh(inc(0), inc(1), inc(2), inc(3)); }
)"), 1 + 20 + 300 + 4000);
}

TEST(CcTest, ManyLocalsSpillToStack) {
    // 12 locals: 8 in s-regs, 4 on the stack.
    EXPECT_EQ(exitOf(R"(
int main() {
    int a = 1, b = 2, c = 3, d = 4, e = 5, f = 6;
    int g = 7, h = 8, i = 9, j = 10, k = 11, l = 12;
    return a + b + c + d + e + f + g + h + i + j + k + l;
}
)"), 78);
}

TEST(CcTest, VoidFunctions) {
    EXPECT_EQ(runC(R"(
int counter;
void bump(int by) { counter += by; }
int main() {
    bump(3);
    bump(4);
    __putint(counter);
    return 0;
}
)"), "7");
}

TEST(CcTest, CallerSavedTempsSurviveCalls) {
    // A call in the middle of an expression must not clobber the pending
    // left operand.
    EXPECT_EQ(exitOf(R"(
int id(int x) { return x; }
int main() { return 100 + id(23) + 1000 * id(2); }
)"), 2123);
}

TEST(CcTest, GlobalShortScalarRoundTrip) {
    EXPECT_EQ(exitOf(R"(
short acc = 100;
int main() {
    acc += 30000;     // 30100 fits
    acc += 10000;     // 40100 wraps to -25436
    return acc == -25436;
}
)"), 1);
}

TEST(CcTest, CommentsAndHexLiterals) {
    EXPECT_EQ(exitOf(R"(
// line comment
/* block
   comment */
int main() { return 0x10 + 0xF; /* trailing */ }
)"), 31);
}

TEST(CcTest, ConstConstantFoldedInitializers) {
    EXPECT_EQ(exitOf(R"(
int table[4] = {1 << 4, 3 * 5 + 1, -(2 + 2), 7 % 4};
int main() { return table[0] + table[1] + table[2] + table[3]; }
)"), 16 + 16 - 4 + 3);
}

TEST(CcTest, DeepExpressionWithinTempBudget) {
    EXPECT_EQ(exitOf(
        "int main() { return ((((((1+2)*3)+4)*5)+6)*7) % 251; }"), (((((1+2)*3)+4)*5)+6)*7 % 251);
}

TEST(CcTest, SchedulingPreservesSemantics) {
    const std::string adaptive = R"(
int hist[8];
int main() {
    int acc = 0;
    int step = 3;
    for (int i = 0; i < 200; i++) {
        int delta = (i * 7) % 13 - 6;
        step += delta;
        if (step < 0) step = 0;
        if (step > 48) step = 48;
        acc += step;
        hist[step & 7] += 1;
    }
    __putint(acc);
    __putchar(32);
    __putint(hist[3]);
    return acc % 100;
}
)";
    std::int32_t withSched = 0, without = 0;
    const std::string outS = runC(adaptive, &withSched, true);
    const std::string outN = runC(adaptive, &without, false);
    EXPECT_EQ(outS, outN);
    EXPECT_EQ(withSched, without);
}

TEST(CcTest, BitbankIntrinsicEmitsControlStore) {
    const Compiled c = compile("int main() { __bitbank(1); return 0; }");
    EXPECT_NE(c.assembly.find("lui at, 0xFFFF"), std::string::npos);
}


TEST(CcTest, ContinueInWhileLoop) {
    // Exercises the bottom-tested while rotation with a used continue label.
    EXPECT_EQ(exitOf(R"(
int main() {
    int i = 0, sum = 0;
    while (i < 20) {
        i++;
        if (i % 3 == 0) continue;
        sum += i;
    }
    return sum;   // 1..20 minus multiples of 3: 210 - (3+6+..+18)=210-63
}
)"), 147);
}

TEST(CcTest, ContinueInDoWhile) {
    EXPECT_EQ(exitOf(R"(
int main() {
    int i = 0, n = 0;
    do {
        i++;
        if (i & 1) continue;
        n++;
    } while (i < 10);
    return n;   // even values 2,4,6,8,10
}
)"), 5);
}

TEST(CcTest, ContinueBindsToInnerLoop) {
    EXPECT_EQ(exitOf(R"(
int main() {
    int count = 0;
    for (int i = 0; i < 3; i++) {
        for (int j = 0; j < 4; j++) {
            if (j == 1) continue;   // inner continue only
            count++;
        }
        count += 10;
    }
    return count;   // 3 * (3 + 10)
}
)"), 39);
}

TEST(CcTest, WhileFalseNeverExecutes) {
    // Entry guard of the rotated while must prevent the first iteration.
    EXPECT_EQ(exitOf(R"(
int main() {
    int n = 0;
    while (0) n++;
    int i = 5;
    while (i < 3) n += 100;
    return n;
}
)"), 0);
}

TEST(CcTest, DoWhileAlwaysRunsOnce) {
    EXPECT_EQ(exitOf("int main() { int n = 0; do n++; while (0); return n; }"),
              1);
}

TEST(CcTest, ForWithoutCondition) {
    EXPECT_EQ(exitOf(R"(
int main() {
    int i = 0;
    for (;;) {
        i++;
        if (i == 7) break;
    }
    return i;
}
)"), 7);
}

TEST(CcTest, NestedTernary) {
    EXPECT_EQ(exitOf(R"(
int grade(int s) { return s > 89 ? 4 : s > 79 ? 3 : s > 69 ? 2 : 0; }
int main() { return grade(95) * 1000 + grade(85) * 100 + grade(75) * 10
                    + grade(50); }
)"), 4320);
}

TEST(CcTest, UnaryChains) {
    EXPECT_EQ(exitOf("int main() { return - - 5; }"), 5);
    EXPECT_EQ(exitOf("int main() { return !!7; }"), 1);
    EXPECT_EQ(exitOf("int main() { return ~~9; }"), 9);
    EXPECT_EQ(exitOf("int main() { int x = 4; return -x + !x + ~x; }"), -9);
    EXPECT_EQ(exitOf("int main() { int x = 0; if (!x) return 3; return 4; }"), 3);
    EXPECT_EQ(exitOf("int main() { int x = 2; if (!!x) return 3; return 4; }"), 3);
}

TEST(CcTest, ZeroCompareBranchesAllForms) {
    // Each comparison-to-zero form maps to a direct ISA branch; verify the
    // semantics across negative/zero/positive.
    const std::string src = R"(
int probe(int v) {
    int r = 0;
    if (v < 0)  r |= 1;
    if (v <= 0) r |= 2;
    if (v > 0)  r |= 4;
    if (v >= 0) r |= 8;
    if (v == 0) r |= 16;
    if (v != 0) r |= 32;
    return r;
}
int main() { return probe(-5) * 10000 + probe(0) * 100 + probe(9); }
)";
    EXPECT_EQ(exitOf(src), (1 + 2 + 32) * 10000 + (2 + 8 + 16) * 100 +
                               (4 + 8 + 32));
}

TEST(CcTest, ShortCircuitInConditions) {
    EXPECT_EQ(exitOf(R"(
int zero() { return 0; }
int main() {
    int guard = 0;
    if (zero() && (guard = 1)) return 99;
    if (guard) return 98;
    if (zero() || 1) return 42;
    return 0;
}
)"), 42);
}

TEST(CcTest, PrecedenceMatrix) {
    EXPECT_EQ(exitOf("int main() { return 1 | 2 ^ 3 & 5; }"), 1 | (2 ^ (3 & 5)));
    EXPECT_EQ(exitOf("int main() { return 1 + 2 << 3; }"), (1 + 2) << 3);
    EXPECT_EQ(exitOf("int main() { return 16 >> 1 + 2; }"), 16 >> 3);
    EXPECT_EQ(exitOf("int main() { return 1 < 2 == 1; }"), 1);
    EXPECT_EQ(exitOf("int main() { return 0 || 1 && 0; }"), 0 || (1 && 0));
    EXPECT_EQ(exitOf("int main() { return 10 - 4 - 3; }"), 3);   // left assoc
    EXPECT_EQ(exitOf("int main() { return 100 / 10 / 2; }"), 5);
}

TEST(CcTest, GlobalsSurviveAcrossCalls) {
    EXPECT_EQ(exitOf(R"(
int counter;
int bump() { counter++; return counter; }
int main() {
    bump(); bump(); bump();
    return counter;
}
)"), 3);
}

TEST(CcTest, RecursionDepthAndStackDiscipline) {
    EXPECT_EQ(exitOf(R"(
int sum_to(int n) {
    if (n == 0) return 0;
    return n + sum_to(n - 1);
}
int main() { return sum_to(100) % 251; }
)"), 5050 % 251);
}

TEST(CcTest, SignedDivisionSemantics) {
    // C99 truncation toward zero, matching the ISA definition.
    EXPECT_EQ(exitOf("int main() { return (-7 / 2 == -3) + (-7 % 2 == -1) * 2 "
                     "+ (7 / -2 == -3) * 4 + (7 % -2 == 1) * 8; }"),
              15);
}

TEST(CcTest, Errors) {
    EXPECT_THROW(compile("int main() { return x; }"), CompileError);
    EXPECT_THROW(compile("int main() { undeclared(); }"), CompileError);
    EXPECT_THROW(compile("int f(int a) { return a; } int main() { return f(); }"),
                 CompileError);
    EXPECT_THROW(compile("int main() { 5 = 3; return 0; }"), CompileError);
    EXPECT_THROW(compile("int main() { int a; int a; return 0; }"), CompileError);
    EXPECT_THROW(compile("int g; int main() { int g; return 0; }"), CompileError);
    EXPECT_THROW(compile("int a[4]; int main() { return a; }"), CompileError);
    EXPECT_THROW(compile("int x; int main() { return x[0]; }"), CompileError);
    EXPECT_THROW(compile("int main() { int a[4]; return 0; }"), CompileError);
    EXPECT_THROW(compile("void main2() {}"), CompileError);  // no main
    EXPECT_THROW(compile("int main(int a, int b, int c, int d, int e) "
                         "{ return 0; }"), CompileError);
    EXPECT_THROW(compile("int main() { break; }"), CompileError);
    EXPECT_THROW(compile("int t[2] = {1,2,3}; int main(){return 0;}"),
                 CompileError);
    EXPECT_THROW(compile("int main() { return 1 +; }"), CompileError);
}

TEST(CcTest, ErrorsCarryLines) {
    try {
        compile("int main() {\n  return\n    bogus;\n}");
        FAIL() << "expected CompileError";
    } catch (const CompileError& e) {
        EXPECT_EQ(e.line(), 3);
    }
}

}  // namespace
}  // namespace asbr::cc

// Tests for the modular predictor stack: the PredictorRegistry token
// grammar (round-trips, structured errors), the TAGE and perceptron
// families (training behaviour, metrics, storage accounting), engine-level
// determinism of the new predictors across thread counts, and the
// predictor-aware fold-selection policy (hardness taxonomy, strict-subset
// and reclaimed-slot guarantees).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bp/perceptron.hpp"
#include "bp/registry.hpp"
#include "bp/tage.hpp"
#include "cc/compile.hpp"
#include "driver/cli.hpp"
#include "driver/engine.hpp"
#include "driver/names.hpp"
#include "profile/profiler.hpp"
#include "profile/selection.hpp"
#include "report/report.hpp"
#include "util/metrics.hpp"
#include "workloads/workloads.hpp"

namespace asbr {
namespace {

using driver::CliOptions;
using driver::JobResult;
using driver::SimEngine;
using driver::SimJob;

// ---------------------------------------------------------------------------
// Registry

TEST(PredictorRegistryTest, EveryFamilyPrefixRoundTrips) {
    const PredictorRegistry& registry = PredictorRegistry::instance();
    const std::vector<std::string> tokens = registry.tokens();
    ASSERT_GE(tokens.size(), 9u);  // the seed families + tage + perceptron
    for (const std::string& token : tokens) {
        std::string error;
        const auto predictor = registry.make(token, &error);
        ASSERT_NE(predictor, nullptr) << token << ": " << error;
        // token -> predictor -> token is the identity for bare prefixes.
        EXPECT_EQ(predictor->token(), token);
        // The registry's storage accounting is the predictor's own.
        EXPECT_EQ(registry.storageBits(token), predictor->storageBits())
            << token;
    }
}

TEST(PredictorRegistryTest, ParameterizedTokensRoundTrip) {
    const PredictorRegistry& registry = PredictorRegistry::instance();
    const char* tokens[] = {
        "bimodal:c1024-b2048",  "gshare:h8-c256-b512",
        "tournament:c512-h9-b2048", "tage:h4-8",
        "tage:h4-8-e256-t7",    "perceptron:n128-h8",
    };
    for (const char* token : tokens) {
        std::string error;
        const auto predictor = registry.make(token, &error);
        ASSERT_NE(predictor, nullptr) << token << ": " << error;
        EXPECT_EQ(predictor->token(), token);
        // The canonical token re-resolves to an identical configuration.
        const auto again = registry.make(predictor->token(), &error);
        ASSERT_NE(again, nullptr) << predictor->token() << ": " << error;
        EXPECT_EQ(again->storageBits(), predictor->storageBits()) << token;
    }
}

TEST(PredictorRegistryTest, BimodalAliasSizesCanonicalizeToAliases) {
    const PredictorRegistry& registry = PredictorRegistry::instance();
    EXPECT_EQ(registry.make("bimodal:c512-b512")->token(), "bi512");
    EXPECT_EQ(registry.make("bimodal:c256-b512")->token(), "bi256");
}

TEST(PredictorRegistryTest, UnknownTokenErrorListsEveryGrammar) {
    std::string error;
    EXPECT_EQ(driver::makePredictorByToken("oracle", &error), nullptr);
    EXPECT_NE(error.find("oracle"), std::string::npos) << error;
    for (const PredictorFamily& family :
         PredictorRegistry::instance().families())
        EXPECT_NE(error.find(family.grammar), std::string::npos)
            << "missing " << family.grammar << " in: " << error;
}

TEST(PredictorRegistryTest, MalformedParametersGiveStructuredErrors) {
    const PredictorRegistry& registry = PredictorRegistry::instance();
    const char* bad[] = {
        "tage:h8-4",        // history lengths must strictly increase
        "tage:h0",          // zero-length history
        "tage:h8-e3",       // tagged entries must be a power of two
        "perceptron:n3",    // rows must be a power of two
        "perceptron:h99",   // history beyond the 62-bit cap
        "bimodal:c7",       // counters must be a power of two
        "gshare:x4",        // unknown parameter letter
        "not-taken:c16",    // static predictors take no parameters
    };
    for (const char* token : bad) {
        std::string error;
        EXPECT_EQ(registry.make(token, &error), nullptr) << token;
        EXPECT_FALSE(error.empty()) << token;
    }
}

// ---------------------------------------------------------------------------
// TAGE

/// Drive one branch site through `pattern` repeatedly and return the
/// misprediction count over the final `measured` outcomes.
std::uint64_t mispredictsOnPattern(BranchPredictor& predictor,
                                   const std::vector<bool>& pattern,
                                   std::size_t total, std::size_t measured) {
    constexpr std::uint32_t kPc = 0x1000;
    constexpr std::uint32_t kTarget = 0x2000;
    std::uint64_t mispredicts = 0;
    for (std::size_t i = 0; i < total; ++i) {
        const bool taken = pattern[i % pattern.size()];
        const Prediction prediction = predictor.predict(kPc);
        if (i + measured >= total && prediction.effectiveTaken() != taken)
            ++mispredicts;
        predictor.update(kPc, taken, kTarget);
    }
    return mispredicts;
}

TEST(TagePredictorTest, LearnsPatternBimodalCannot) {
    // Period-4 pattern TTNN: a 2-bit counter oscillates (~50% accuracy);
    // any history-based predictor locks on once its tables warm up.
    const std::vector<bool> pattern = {true, true, false, false};
    auto tage = makeTage();
    const std::uint64_t tageMisses =
        mispredictsOnPattern(*tage, pattern, 2000, 500);
    auto bimodal = driver::makePredictorByToken("bimodal");
    const std::uint64_t bimodalMisses =
        mispredictsOnPattern(*bimodal, pattern, 2000, 500);
    EXPECT_LE(tageMisses, 25u) << "tage failed to learn a period-4 pattern";
    EXPECT_GE(bimodalMisses, 200u)
        << "pattern unexpectedly easy for the bimodal baseline";
}

TEST(TagePredictorTest, AllocatesTaggedEntriesAndPublishesMetrics) {
    auto predictor = makeTage();
    auto* tage = dynamic_cast<TagePredictor*>(predictor.get());
    ASSERT_NE(tage, nullptr);
    mispredictsOnPattern(*tage, {true, true, false, false}, 2000, 1);

    MetricRegistry registry;
    tage->publishFamilyMetrics(registry);
    const Counter* allocations = registry.findCounter("bp.tage.allocations");
    const Counter* tagged = registry.findCounter("bp.tage.provider_tagged");
    const Counter* base = registry.findCounter("bp.tage.provider_base");
    ASSERT_NE(allocations, nullptr);
    ASSERT_NE(tagged, nullptr);
    ASSERT_NE(base, nullptr);
    EXPECT_GT(allocations->value(), 0u) << "no entries allocated on mispredicts";
    EXPECT_GT(tagged->value(), 0u) << "tagged tables never provided";
    EXPECT_GT(base->value(), 0u) << "base table never provided";

    std::uint64_t hits = 0;
    for (const std::uint64_t h : tage->tableHits()) hits += h;
    EXPECT_GT(hits, 0u);
}

TEST(TagePredictorTest, DecaySweepAgesUsefulness) {
    // A short decay period via the token grammar: sweep every 64 updates.
    auto predictor = PredictorRegistry::instance().make("tage:h2-4-d64");
    ASSERT_NE(predictor, nullptr);
    auto* tage = dynamic_cast<TagePredictor*>(predictor.get());
    ASSERT_NE(tage, nullptr);
    mispredictsOnPattern(*tage, {true, false}, 512, 1);

    MetricRegistry registry;
    tage->publishFamilyMetrics(registry);
    const Counter* decays = registry.findCounter("bp.tage.useful_decays");
    ASSERT_NE(decays, nullptr);
    EXPECT_GE(decays->value(), 512u / 64u)
        << "decay sweep did not run once per period";
}

TEST(TagePredictorTest, ResetRestoresColdState) {
    auto predictor = makeTage();
    auto* tage = dynamic_cast<TagePredictor*>(predictor.get());
    ASSERT_NE(tage, nullptr);
    const std::vector<bool> pattern = {true, true, false, false};
    const std::uint64_t cold = mispredictsOnPattern(*tage, pattern, 400, 400);
    tage->reset();
    const std::uint64_t again = mispredictsOnPattern(*tage, pattern, 400, 400);
    EXPECT_EQ(cold, again) << "reset() did not restore the cold state";
}

// ---------------------------------------------------------------------------
// Perceptron

TEST(PerceptronPredictorTest, ThresholdFollowsJimenezLinFormula) {
    // theta = floor(1.93 * h + 14)
    auto dflt = makePerceptron();
    EXPECT_EQ(dynamic_cast<PerceptronPredictor*>(dflt.get())->threshold(), 37);
    auto h8 = PredictorRegistry::instance().make("perceptron:n64-h8");
    ASSERT_NE(h8, nullptr);
    EXPECT_EQ(dynamic_cast<PerceptronPredictor*>(h8.get())->threshold(), 29);
}

TEST(PerceptronPredictorTest, TrainsOnMispredictAndLowConfidenceOnly) {
    auto predictor = makePerceptron();
    auto* perceptron = dynamic_cast<PerceptronPredictor*>(predictor.get());
    ASSERT_NE(perceptron, nullptr);

    // A monotone always-taken site: weights grow past theta, then training
    // stops — far fewer train events than updates.
    constexpr std::uint32_t kPc = 0x1000;
    for (int i = 0; i < 400; ++i) perceptron->update(kPc, true, 0x2000);
    EXPECT_GT(perceptron->trainEvents(), 0u);
    EXPECT_LT(perceptron->trainEvents(), 400u)
        << "training never saturated on a trivially-biased branch";
    EXPECT_EQ(perceptron->trainEvents(),
              perceptron->mispredictTrains() +
                  perceptron->lowConfidenceTrains());
    EXPECT_GT(perceptron->lowConfidenceTrains(), 0u);
}

TEST(PerceptronPredictorTest, LearnsAlternatingPattern) {
    auto predictor = makePerceptron();
    const std::uint64_t misses =
        mispredictsOnPattern(*predictor, {true, false}, 1000, 500);
    EXPECT_LE(misses, 10u) << "perceptron failed to learn alternation";
}

// ---------------------------------------------------------------------------
// Engine determinism: tage + perceptron across all six workloads

CliOptions tinyOptions() {
    CliOptions options;
    options.adpcmSamples = 1'000;
    options.g721Samples = 400;
    return options;
}

TEST(PredictorStackDeterminism, SixWorkloadsBytesIdenticalAcrossThreads) {
    const CliOptions options = tinyOptions();
    std::vector<SimJob> jobs;
    for (const BenchId id : kAllBenchesExtended) {
        for (const char* predictor : {"tage", "perceptron"}) {
            SimJob job;
            job.workload = id;
            job.seed = options.seed;
            job.samples = driver::samplesFor(options, id);
            job.predictor = predictor;
            job.figure = "test";
            job.asbr = true;
            jobs.push_back(job);
        }
    }
    // One predictor-aware point so the aware-selection artifact path is
    // exercised under both schedulers too.
    SimJob aware = jobs.front();
    aware.predictorAware = true;
    jobs.push_back(aware);

    auto serialize = [](const std::vector<JobResult>& results) {
        std::string text;
        for (const JobResult& r : results)
            text += simReportJson(r.report).dump(2);
        return text;
    };
    SimEngine serial({.threads = 1});
    SimEngine parallel({.threads = 8});
    const std::string s = serialize(serial.run(jobs));
    const std::string p = serialize(parallel.run(jobs));
    EXPECT_FALSE(s.empty());
    EXPECT_EQ(s, p) << "tage/perceptron runs diverged across thread counts";
}

TEST(PredictorStackDeterminism, ReportsCarryPredictorToken) {
    const CliOptions options = tinyOptions();
    SimJob job;
    job.workload = BenchId::kAdpcmEncode;
    job.seed = options.seed;
    job.samples = driver::samplesFor(options, BenchId::kAdpcmEncode);
    job.predictor = "tage:h4-8";
    job.figure = "test";
    SimEngine engine({.threads = 2});
    const std::vector<JobResult> results = engine.run({job});
    ASSERT_EQ(results.size(), 1u);
    const std::string json = simReportJson(results[0].report).dump(2);
    EXPECT_NE(json.find("\"predictor_token\": \"tage:h4-8\""),
              std::string::npos)
        << json.substr(0, 600);
}

// ---------------------------------------------------------------------------
// Predictor-aware selection

TEST(PredictorAwareSelectionTest, HardnessTaxonomyAndStrictSubset) {
    // Three branch flavours: hot loop branches (well-predicted by both), a
    // period-4 toggle (bimodal loses, history predictors win) and an
    // LFSR-driven branch (everybody loses).
    const cc::Compiled compiled = cc::compile(R"(
int hist[4];
int lfsr = 44257;
int next_bit() {
    int bit = ((lfsr >> 0) ^ (lfsr >> 2) ^ (lfsr >> 3) ^ (lfsr >> 5)) & 1;
    lfsr = (lfsr >> 1) | (bit << 15);
    return bit;
}
int main() {
    int toggles = 0;
    int chaos = 0;
    for (int i = 0; i < 4000; i++) {
        int t = (i & 3) >> 1;
        int b = next_bit();
        int pad = t + b;
        hist[(pad + i) & 3] += 1;
        if (t) toggles++;
        if (b) chaos++;
    }
    __putint(toggles);
    __putchar(44);
    __putint(chaos);
    return 0;
}
)");
    const Program& p = compiled.program;

    Memory profMem;
    profMem.loadProgram(p);
    const ProgramProfile profile = profileProgram(p, profMem);
    ASSERT_GT(profile.branches.size(), 2u);

    auto profileUnder = [&](const char* token) {
        Memory mem;
        mem.loadProgram(p);
        auto predictor = driver::makePredictorByToken(token);
        return profilePredictions(p, mem, *predictor);
    };
    const PredictionProfile baseline = profileUnder("bimodal");
    const PredictionProfile strong = profileUnder("tage");

    SelectionConfig config;
    config.bitCapacity = 8;
    config.minExecFraction = 0.0;
    const PredictorAwareSelection selection = selectBranchesPredictorAware(
        p, profile, strong, baseline.accuracyMap(), config);

    EXPECT_FALSE(selection.hardness.empty());
    EXPECT_GT(selection.countOf(BranchHardness::kHardToPredict), 0u)
        << "the LFSR branch should defeat tage";
    EXPECT_GT(selection.countOf(BranchHardness::kWellPredicted) +
                  selection.countOf(BranchHardness::kHistoryPredictable),
              0u)
        << "tage should win at least the loop or toggle branches";

    // The headline guarantees: the aware policy folds a strict subset of
    // what the bimodal-era policy folded, and every era slot it skips is
    // reported as reclaimed.
    EXPECT_FALSE(selection.folded.empty());
    EXPECT_TRUE(selection.foldsSubsetOfBaselineEra());
    EXPECT_LT(selection.folded.size(), selection.baselineEra.size());
    EXPECT_EQ(selection.reclaimedSlots, selection.reclaimedPcs.size());
    EXPECT_GT(selection.reclaimedSlots, 0u);
    EXPECT_EQ(selection.folded.size() + selection.reclaimedSlots,
              selection.baselineEra.size());

    // Every folded site is classified hard.
    for (const Candidate& candidate : selection.folded) {
        const auto it = selection.hardness.find(candidate.pc);
        ASSERT_NE(it, selection.hardness.end());
        EXPECT_EQ(it->second, BranchHardness::kHardToPredict);
    }

    PredictorAwareSelectionMetrics metrics;
    metrics.countSelection(selection);
    EXPECT_EQ(metrics.folded, selection.folded.size());
    EXPECT_EQ(metrics.hardSites,
              selection.countOf(BranchHardness::kHardToPredict));
    EXPECT_EQ(metrics.reclaimedSlots, selection.reclaimedSlots);
}

TEST(PredictorAwareSelectionTest, EngineRunReportsAwareCounters) {
    const CliOptions options = tinyOptions();
    SimJob job;
    job.workload = BenchId::kAdpcmEncode;
    job.seed = options.seed;
    job.samples = driver::samplesFor(options, BenchId::kAdpcmEncode);
    job.predictor = "tage";
    job.figure = "test";
    job.asbr = true;
    job.predictorAware = true;
    SimEngine engine({.threads = 2});
    const std::vector<JobResult> results = engine.run({job});
    ASSERT_EQ(results.size(), 1u);
    const JobResult& result = results[0];
    EXPECT_TRUE(result.predictorAware);
    EXPECT_GT(result.awareHardSites + result.awareKeptForPredictor, 0u);

    const std::string json = simReportJson(result.report).dump(2);
    EXPECT_NE(json.find("\"predictor_aware\": true"), std::string::npos);
    EXPECT_NE(json.find("selection.predictor_aware_folded"),
              std::string::npos);
}

}  // namespace
}  // namespace asbr

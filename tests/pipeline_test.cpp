// Timing and functional-equivalence tests for the 5-stage pipeline.
#include <gtest/gtest.h>

#include "asm/assembler.hpp"
#include "bp/predictor.hpp"
#include "bp/bimodal.hpp"
#include "bp/gshare.hpp"
#include "bp/static_predictors.hpp"
#include "mem/memory.hpp"
#include "sim/functional.hpp"
#include "sim/pipeline.hpp"

namespace asbr {
namespace {

/// Perfect-cache configuration for exact-cycle assertions.
PipelineConfig perfectCaches() {
    PipelineConfig cfg;
    cfg.icache.missPenalty = 0;
    cfg.dcache.missPenalty = 0;
    cfg.mulLatency = 1;
    cfg.divLatency = 1;
    cfg.redirectBubbles = 0;  // pure structural 2-cycle mispredict penalty
    return cfg;
}

PipelineResult runPipe(const std::string& src, BranchPredictor& bp,
                       const PipelineConfig& cfg = perfectCaches()) {
    const Program p = assemble(src);
    Memory mem;
    mem.loadProgram(p);
    PipelineSim sim(p, mem, bp, cfg);
    return sim.run();
}

constexpr const char* kExit = R"(
        li   v0, 1
        li   a0, 0
        sys
)";

TEST(PipelineTest, StraightLineCpiApproachesOne) {
    NotTakenPredictor bp;
    // 16 independent instructions + 3 exit instructions.
    std::string src = "main:\n";
    for (int i = 0; i < 16; ++i) src += "  addiu t0, t0, 1\n";
    src += kExit;
    const PipelineResult r = runPipe(src, bp);
    EXPECT_EQ(r.stats.committed, 19u);
    // N instructions through a 5-stage pipe: N + 4 cycles.
    EXPECT_EQ(r.stats.cycles, 19u + 4u);
}

TEST(PipelineTest, AluForwardingAvoidsStalls) {
    NotTakenPredictor bp;
    // Chain of dependent ALU ops: full forwarding means no stalls.
    const PipelineResult r = runPipe(std::string(R"(
main:   li   t0, 1
        addu t1, t0, t0
        addu t2, t1, t1
        addu t3, t2, t2
)") + kExit, bp);
    EXPECT_EQ(r.stats.cycles, 7u + 4u);
    EXPECT_EQ(r.stats.loadUseStalls, 0u);
}

TEST(PipelineTest, LoadUseStallsOneCycle) {
    NotTakenPredictor bp;
    const std::string dependent = std::string(R"(
main:   lw   t1, 0(gp)
        addu t2, t1, t1
)") + kExit;
    const std::string independent = std::string(R"(
main:   lw   t1, 0(gp)
        addu t2, t3, t3
)") + kExit;
    const PipelineResult dep = runPipe(dependent, bp);
    const PipelineResult ind = runPipe(independent, bp);
    EXPECT_EQ(dep.stats.loadUseStalls, 1u);
    EXPECT_EQ(ind.stats.loadUseStalls, 0u);
    EXPECT_EQ(dep.stats.cycles, ind.stats.cycles + 1);
}

TEST(PipelineTest, LoadUseWithOneInterveningInstructionNoStall) {
    NotTakenPredictor bp;
    const PipelineResult r = runPipe(std::string(R"(
main:   lw   t1, 0(gp)
        addiu t5, t5, 1
        addu t2, t1, t1
)") + kExit, bp);
    EXPECT_EQ(r.stats.loadUseStalls, 0u);
}

TEST(PipelineTest, TakenBranchMispredictCostsTwoCycles) {
    NotTakenPredictor bp;
    const PipelineResult taken = runPipe(std::string(R"(
main:   li   t0, 1
        bnez t0, target
        nop
target:
)") + kExit, bp);
    NotTakenPredictor bp2;
    const PipelineResult notTaken = runPipe(std::string(R"(
main:   li   t0, 0
        bnez t0, target
        nop
target:
)") + kExit, bp2);
    // Same committed count modulo the skipped nop.
    EXPECT_EQ(taken.stats.committed + 1, notTaken.stats.committed);
    EXPECT_EQ(taken.stats.mispredicts, 1u);
    EXPECT_EQ(notTaken.stats.mispredicts, 0u);
    // taken: one fewer commit (-1 cycle) but a 2-cycle flush.
    EXPECT_EQ(taken.stats.cycles, notTaken.stats.cycles + 1);
}

TEST(PipelineTest, DirectJumpsHaveNoPenalty) {
    NotTakenPredictor bp;
    const PipelineResult r = runPipe(std::string(R"(
main:   j    l1
l0:     j    l2
l1:     j    l0
l2:
)") + kExit, bp);
    EXPECT_EQ(r.stats.committed, 6u);
    EXPECT_EQ(r.stats.cycles, 6u + 4u);
    EXPECT_EQ(r.stats.mispredicts, 0u);
}

TEST(PipelineTest, IndirectJumpCostsTwoCycles) {
    NotTakenPredictor bp;
    const PipelineResult r = runPipe(std::string(R"(
main:   jal  callee
)") + kExit + R"(
callee: jr   ra
)", bp);
    // jal main->callee: no penalty.  jr callee->back: 2-cycle flush.
    EXPECT_EQ(r.stats.committed, 5u);
    EXPECT_EQ(r.stats.mispredicts, 1u);
    EXPECT_EQ(r.stats.cycles, 5u + 4u + 2u);
}

TEST(PipelineTest, BimodalLearnsLoopBranch) {
    auto bp = makeBimodal2048();
    const PipelineResult r = runPipe(std::string(R"(
main:   li   t0, 100
loop:   addiu t0, t0, -1
        bnez t0, loop
)") + kExit, *bp);
    // 100 branch executions: 99 taken, 1 exit.  After warmup the predictor
    // is right nearly always.
    EXPECT_EQ(r.stats.condBranches, 100u);
    EXPECT_GE(r.stats.predictedCorrect, 95u);
    const auto& site = r.stats.branchSites.begin()->second;
    EXPECT_EQ(site.execs, 100u);
    EXPECT_EQ(site.taken, 99u);
}

TEST(PipelineTest, MulDivOccupancy) {
    NotTakenPredictor bp;
    PipelineConfig cfg = perfectCaches();
    cfg.mulLatency = 4;
    const PipelineResult withMul = runPipe(std::string(R"(
main:   li   t0, 7
        mul  t1, t0, t0
        addu t2, t1, t1
)") + kExit, bp, cfg);
    cfg.mulLatency = 1;
    NotTakenPredictor bp2;
    const PipelineResult fastMul = runPipe(std::string(R"(
main:   li   t0, 7
        mul  t1, t0, t0
        addu t2, t1, t1
)") + kExit, bp2, cfg);
    EXPECT_EQ(withMul.stats.cycles, fastMul.stats.cycles + 3);
    EXPECT_EQ(withMul.stats.mulDivStallCycles, 3u);
}

TEST(PipelineTest, IcacheMissStallsFetch) {
    NotTakenPredictor bp;
    PipelineConfig cfg = perfectCaches();
    cfg.icache.missPenalty = 8;
    const PipelineResult r = runPipe("main:" + std::string(kExit), bp, cfg);
    // 3 instructions in one line: exactly one cold miss.
    EXPECT_EQ(r.stats.icache.misses, 1u);
    EXPECT_EQ(r.stats.icacheStallCycles, 8u);
    EXPECT_EQ(r.stats.cycles, 3u + 4u + 8u);
}

TEST(PipelineTest, DcacheMissStallsMemory) {
    NotTakenPredictor bp;
    PipelineConfig cfg = perfectCaches();
    cfg.dcache.missPenalty = 6;
    const PipelineResult r = runPipe(std::string(R"(
main:   lw   t0, 0(gp)
        lw   t1, 0(gp)
)") + kExit, bp, cfg);
    EXPECT_EQ(r.stats.dcache.misses, 1u);  // second access hits
    EXPECT_EQ(r.stats.dcacheStallCycles, 6u);
    EXPECT_EQ(r.stats.cycles, 5u + 4u + 6u);
}

TEST(PipelineTest, OutputAndExitCodeMatchFunctional) {
    const std::string src = R"(
main:   li   s0, 5
        li   s1, 0
loop:   addu s1, s1, s0
        addiu s0, s0, -1
        bnez s0, loop
        move a0, s1
        li   v0, 3
        sys               # print 15
        move a0, s1
        li   v0, 1
        sys
)";
    const Program p = assemble(src);
    Memory m1, m2;
    m1.loadProgram(p);
    m2.loadProgram(p);
    FunctionalSim fsim(p, m1);
    const FunctionalResult fr = fsim.run();
    auto bp = makeGshare2048();
    PipelineSim psim(p, m2, *bp);
    const PipelineResult pr = psim.run();
    EXPECT_EQ(pr.output, fr.output);
    EXPECT_EQ(pr.output, "15");
    EXPECT_EQ(pr.exitCode, fr.exitCode);
    EXPECT_EQ(pr.stats.committed, fr.instructions);
    for (int r = 0; r < kNumRegs; ++r)
        EXPECT_EQ(pr.finalState.regs[r], fsim.state().regs[r]) << "reg " << r;
}

// Differential test on a branchy memory-heavy program (GCD + store log).
TEST(PipelineTest, DifferentialGcdProgram) {
    const std::string src = R"(
        .data
log:    .space 256
        .text
main:   li   s0, 252
        li   s1, 105
        la   s2, log
gcd:    beqz s1, done
        rem  t0, s0, s1
        move s0, s1
        move s1, t0
        sw   s0, 0(s2)
        addiu s2, s2, 4
        j    gcd
done:   move a0, s0
        li   v0, 3
        sys
        li   v0, 1
        sys
)";
    const Program p = assemble(src);
    Memory m1, m2;
    m1.loadProgram(p);
    m2.loadProgram(p);
    FunctionalSim fsim(p, m1);
    const FunctionalResult fr = fsim.run();
    auto bp = makeBimodal2048();
    PipelineSim psim(p, m2, *bp, PipelineConfig{});
    const PipelineResult pr = psim.run();
    EXPECT_EQ(fr.output, "21");  // gcd(252, 105)
    EXPECT_EQ(pr.output, fr.output);
    EXPECT_EQ(pr.stats.committed, fr.instructions);
    // Memory side effects identical.
    const std::uint32_t logAddr = p.symbol("log");
    for (std::uint32_t off = 0; off < 256; off += 4)
        EXPECT_EQ(m2.readWord(logAddr + off), m1.readWord(logAddr + off));
}

TEST(PipelineTest, PredictorAccuracyStatsConsistent) {
    auto bp = makeBimodal2048();
    const PipelineResult r = runPipe(std::string(R"(
main:   li   t0, 50
loop:   addiu t0, t0, -1
        bnez t0, loop
)") + kExit, *bp);
    EXPECT_EQ(r.stats.predictedBranches, r.stats.condBranches);
    EXPECT_EQ(r.stats.predictedCorrect + r.stats.mispredicts,
              r.stats.predictedBranches);
    EXPECT_GT(r.stats.predictorAccuracy(), 0.9);
}

TEST(PipelineTest, RunawayProgramThrows) {
    NotTakenPredictor bp;
    const Program p = assemble("main: j main\n");
    Memory mem;
    mem.loadProgram(p);
    PipelineConfig cfg = perfectCaches();
    cfg.maxCycles = 10'000;
    PipelineSim sim(p, mem, bp, cfg);
    EXPECT_THROW(sim.run(), EnsureError);
}

TEST(PipelineTest, FetchOutsideTextThrows) {
    NotTakenPredictor bp;
    // Falls off the end of text (no exit syscall).
    const Program p = assemble("main: nop\n");
    Memory mem;
    mem.loadProgram(p);
    PipelineSim sim(p, mem, bp, perfectCaches());
    EXPECT_THROW(sim.run(), EnsureError);
}

}  // namespace
}  // namespace asbr
